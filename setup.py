"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` keeps working on environments whose setuptools/pip
combination cannot build PEP 660 editable wheels offline (no ``wheel``
package available).
"""

from setuptools import setup

setup()
