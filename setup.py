"""Packaging for the Hanoi reproduction.

Plain ``setup.py`` metadata (no ``pyproject.toml``) so that ``pip install -e .``
keeps working on offline environments whose setuptools/pip combination cannot
build PEP 517/660 editable wheels (no ``wheel`` package available).  The
package itself has no runtime dependencies beyond the standard library;
development tools live in ``requirements-dev.txt``.
"""

from setuptools import find_packages, setup

setup(
    name="hanoi-repro",
    version="1.0.0",
    description="Reproduction of 'Data-Driven Inference of Representation "
                "Invariants' (Miltner et al., PLDI 2020)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
