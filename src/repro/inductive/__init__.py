"""Conditional, visible, and full inductiveness checking (Figure 3)."""

from .relation import ConditionalInductivenessChecker

__all__ = ["ConditionalInductivenessChecker"]
