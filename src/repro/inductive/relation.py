"""Conditional inductiveness: the logical relation of Figure 3, operationally.

The paper defines ``v : tau |>_P^Q`` as a type-indexed relation; checking a
module value ``v_m : tau_m`` against it amounts to checking, for every
operation of the module, that whenever argument values of abstract type
satisfy ``P`` (and functional arguments respect the swapped relation), every
abstract value the operation produces satisfies ``Q``.  A failed check yields
a counterexample witness ``<S, V>`` where

* ``S`` collects the abstract values that were supplied to the module
  (operation arguments at abstract positions plus values returned by
  client-supplied functions across higher-order boundaries), and
* ``V`` collects the abstract values produced by the module that falsify
  ``Q`` (operation results at abstract positions plus values passed *into*
  client-supplied functions).

Both of the algorithm's checks are instances:

* *visible inductiveness* (``ClosedPositives``): ``P`` = membership in the
  known-constructible set V+, ``Q`` = the candidate invariant;
* *full inductiveness* (``NoNegatives``): ``P`` = ``Q`` = the candidate
  invariant.

Because the implementation verifies by bounded enumerative testing
(Section 4.3), the check enumerates argument tuples rather than deciding the
relation exactly; this mirrors the original tool's unsound verifier.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

from ..contracts.firstorder import collect_abstract
from ..contracts.higherorder import ContractLog, wrap_function
from ..core.config import Deadline, VerifierBounds
from ..core.module import ModuleInstance, Operation
from ..core.stats import InferenceStats
from ..enumeration.functions import FunctionEnumerator
from ..enumeration.ordering import diagonal_product
from ..enumeration.values import ValueEnumerator
from ..lang.errors import LangError
from ..lang.types import TAbstract, TArrow, Type, mentions_abstract
from ..lang.values import Value, value_size
from ..obs.events import NULL_EMITTER
from ..verify.evalcache import EvaluationCache, OperationRecord
from ..verify.result import VALID, CheckResult, InductivenessCounterexample

__all__ = ["ConditionalInductivenessChecker"]

PredicateFn = Callable[[Value], bool]


class ConditionalInductivenessChecker:
    """Checks ``v_m : tau_m |>_P^Q`` by bounded enumeration and produces
    counterexample witnesses on failure."""

    def __init__(self, instance: ModuleInstance,
                 enumerator: Optional[ValueEnumerator] = None,
                 function_enumerator: Optional[FunctionEnumerator] = None,
                 bounds: VerifierBounds = VerifierBounds(),
                 stats: Optional[InferenceStats] = None,
                 deadline: Optional[Deadline] = None,
                 eval_cache: Optional[EvaluationCache] = None,
                 emitter: object = NULL_EMITTER):
        self.instance = instance
        self.enumerator = enumerator or ValueEnumerator(instance.program.types)
        self.function_enumerator = function_enumerator or FunctionEnumerator(instance)
        self.bounds = bounds
        self.stats = stats or InferenceStats()
        self.deadline = deadline or Deadline(None)
        self.eval_cache = eval_cache
        self.emitter = emitter

    # -- public API -------------------------------------------------------------

    def check(self, p: PredicateFn, q: PredicateFn,
              p_pool: Optional[Iterable[Value]] = None,
              operations: Optional[Tuple[Operation, ...]] = None) -> CheckResult:
        """Check conditional inductiveness of the module with respect to
        properties ``P`` and ``Q``.

        ``p_pool`` optionally supplies the exact collection of abstract values
        assumed to satisfy ``P`` (the visible-inductiveness case passes V+);
        when omitted, the checker enumerates concrete values and filters them
        through ``p`` (the full-inductiveness case).

        ``operations`` optionally restricts the check to a subsequence of the
        module's operations, in their interface order; the verification
        ladder passes the operations its static tier could not discharge.
        """
        emitter = self.emitter
        if not emitter.enabled:
            with self.stats.verification():
                return self._check(p, q, p_pool, operations)
        hits_before = self.stats.eval_cache_hits
        misses_before = self.stats.eval_cache_misses
        try:
            with emitter.span("inductiveness-check",
                              {"mode": "visible" if p_pool is not None else "full"}):
                with self.stats.verification():
                    return self._check(p, q, p_pool, operations)
        finally:
            # Emitted even when the deadline fires mid-check, so the
            # analyzer's cross-check against run-end counters stays exact.
            if self.eval_cache is not None:
                emitter.emit("eval-cache",
                             {"hits": self.stats.eval_cache_hits - hits_before,
                              "misses": self.stats.eval_cache_misses - misses_before},
                             cat="cache")

    def _check(self, p: PredicateFn, q: PredicateFn,
               p_pool: Optional[Iterable[Value]],
               operations: Optional[Tuple[Operation, ...]] = None) -> CheckResult:
        pool = self._abstract_pool(p, p_pool)
        if operations is None:
            operations = self.instance.operations
        for operation in operations:
            result = self._check_operation(operation, pool, p, q)
            if not isinstance(result, type(VALID)):
                return result
        return VALID

    # -- pools ---------------------------------------------------------------------

    def _abstract_pool(self, p: PredicateFn, p_pool: Optional[Iterable[Value]]) -> List[Value]:
        if p_pool is not None:
            pool = sorted(p_pool, key=value_size)
            return pool[: self.bounds.max_abstract_values]
        pool = []
        # Inductiveness checks instantiate several argument positions at
        # once, so the pool uses the multi-quantifier bounds pair (the seed
        # mixed max_nodes_multi with max_structures_single).
        for value in self.enumerator.enumerate(
            self.instance.concrete_type,
            max_size=self.bounds.max_nodes_multi,
            max_count=self.bounds.max_structures_multi,
        ):
            if p(value):
                pool.append(value)
                if len(pool) >= self.bounds.max_abstract_values:
                    break
        return pool

    def _argument_pool(self, interface_type: Type, abstract_pool: List[Value]) -> Tuple[List[object], bool]:
        """The candidate values for one argument position.

        Returns the pool and a flag indicating whether the position is a
        higher-order position that mentions the abstract type (and therefore
        needs contract instrumentation).
        """
        if isinstance(interface_type, TAbstract):
            return list(abstract_pool), False
        if isinstance(interface_type, TArrow):
            functions = self.function_enumerator.functions(
                interface_type, self.bounds.max_function_values
            )
            return list(functions), mentions_abstract(interface_type)
        if mentions_abstract(interface_type):
            raise NotImplementedError(
                "argument positions mixing abstract and concrete components "
                f"are not supported: {interface_type}"
            )
        concrete = interface_type
        return list(
            self.enumerator.enumerate(
                concrete,
                max_size=self.bounds.max_nodes_multi,
                max_count=self.bounds.max_base_values,
            )
        ), False

    # -- per-operation check ----------------------------------------------------------

    def _check_operation(self, operation: Operation, abstract_pool: List[Value],
                         p: PredicateFn, q: PredicateFn) -> CheckResult:
        argument_types = operation.argument_types
        result_type = operation.result_type

        # Operations that cannot produce abstract values can never violate Q
        # (rule I-B / I-Fun with a base-type result); they are checked only
        # through the specification, not through inductiveness.
        if not operation.produces_abstract and not any(
            isinstance(t, TArrow) and mentions_abstract(t) for t in argument_types
        ):
            return VALID

        pools: List[List[object]] = []
        wrapped_positions: List[bool] = []
        for interface_type in argument_types:
            pool, needs_contract = self._argument_pool(interface_type, abstract_pool)
            if not pool:
                return VALID  # nothing to test (e.g. V+ is still empty)
            pools.append(pool)
            wrapped_positions.append(needs_contract)

        operation_value = self.instance.operation_value(operation)
        applications = 0

        if not argument_types:
            # A constant of abstract type, e.g. ``empty``.
            produced = collect_abstract(operation_value, result_type)
            violations = tuple(v for v in produced if not q(v))
            if violations:
                return InductivenessCounterexample(operation.name, (), violations)
            return VALID

        # Section 4.3 counts data structures processed; function positions
        # supply enumerated closures, not structures.
        structures_per_assignment = sum(
            1 for t in argument_types if not isinstance(t, TArrow))
        memo = self.eval_cache.operations if self.eval_cache is not None else None

        for assignment in diagonal_product(pools, self.bounds.max_applications_per_operation):
            applications += 1
            if applications % 128 == 0:
                self.deadline.check()

            record = memo.get(operation.name, assignment) if memo is not None else None
            if record is None:
                record = self._apply_operation(
                    operation_value, assignment, argument_types, wrapped_positions, result_type)
                self.stats.structures_tested += structures_per_assignment
                if memo is not None:
                    self.stats.eval_cache_misses += 1
                    memo.put(operation.name, assignment, record)
            else:
                self.stats.eval_cache_hits += 1

            if record.crashed:
                # A crashing application of an enumerated (possibly nonsensical)
                # functional argument is not evidence about the invariant.
                continue

            # Client-to-module crossings are assumed to satisfy P; runs where
            # the assumption fails are not counterexamples (the functional
            # argument fell outside the relation).
            if any(not p(v) for v in record.client_to_module):
                continue

            violations = tuple(v for v in record.produced if not q(v))
            if violations:
                witness_inputs = record.supplied + record.client_to_module
                return InductivenessCounterexample(operation.name, witness_inputs, violations)

        return VALID

    def _apply_operation(self, operation_value: Value, assignment: Tuple[object, ...],
                         argument_types: Tuple[Type, ...],
                         wrapped_positions: List[bool],
                         result_type: Type) -> OperationRecord:
        """Run one operation application and reduce it to its
        candidate-independent :class:`OperationRecord` (what was supplied,
        what was produced, the contract-log crossings, and whether the
        application crashed)."""
        log = ContractLog()
        call_args: List[Value] = []
        supplied: List[Value] = []
        for value, interface_type, needs_contract in zip(
            assignment, argument_types, wrapped_positions
        ):
            supplied.extend(collect_abstract(value, interface_type))
            if needs_contract:
                value = wrap_function(value, interface_type, self.instance.program, log)
            call_args.append(value)

        try:
            result = self.instance.program.apply(operation_value, *call_args)
        except LangError:
            return OperationRecord(tuple(supplied), (), tuple(log.client_to_module), True)

        produced = tuple(collect_abstract(result, result_type)) + tuple(log.module_to_client)
        return OperationRecord(
            tuple(supplied), produced, tuple(log.client_to_module), False)
