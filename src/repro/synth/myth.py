"""A Myth-like type-and-example-directed enumerative synthesizer.

The paper instantiates Hanoi's ``Synth`` component with Myth [Osera &
Zdancewic 2015], a type- and example-directed synthesizer able to produce
recursive functions over algebraic data types.  This module provides an
equivalent component built from scratch:

* candidates are recursive predicates ``inv : tau_c -> bool``;
* the search is *type-directed*: it proposes match skeletons over the
  argument (and, one level deep by default, over its components) whose branch
  bodies are well-typed boolean terms over the branch context;
* the search is *example-directed*: the loop's V+ / V- examples (made
  trace-complete, Section 4.3) are routed to the skeleton branches, branch
  bodies are enumerated bottom-up with observational-equivalence pruning, and
  only bodies consistent with the routed examples survive;
* recursive calls are interpreted against the example oracle during search
  (exactly Myth's treatment of recursive functions) and are restricted to
  structurally smaller arguments, so synthesized invariants always terminate;
* like the paper's modified Myth, a synthesis call returns a *set* of
  candidates (best first) so the results can be cached and replayed
  (Section 4.4).

Differences from Myth proper are intentional simplifications and are
documented in DESIGN.md: branch bodies are found either as single enumerated
terms or as bounded conjunctions of enumerated atoms, which covers the
invariant shapes exercised by the benchmark suite (no-duplicates, sortedness,
heap ordering, cached-size consistency, ...).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.reachability import split_components
from ..core.config import Deadline, SynthesisBounds
from ..core.module import ModuleInstance
from ..core.predicate import INVARIANT_NAME, Predicate
from ..core.stats import InferenceStats
from ..lang.ast import (
    Branch,
    ECtor,
    EMatch,
    EVar,
    Expr,
    PCtor,
    PTuple,
    PVar,
    app,
    expr_size,
    free_vars,
)
from ..lang.types import TArrow, TData, TProd, Type, arrow
from ..lang.values import FALSE, TRUE, Value, VCtor, VNative, VTuple, v_bool, value_size
from ..obs.events import NULL_EMITTER
from .base import SynthesisFailure
from .bottomup import TermPool, TypedComponent
from .examples import ExampleOracle
from .poolcache import SynthesisEvaluationCache

__all__ = ["MythSynthesizer"]

#: Maximum branch-body candidates kept per branch before combining branches.
_PER_BRANCH_CANDIDATES = 4
#: Maximum atoms considered by the exhaustive pair search for conjunctions.
_MAX_PAIR_ATOMS = 40

Example = Tuple[Dict[str, Value], bool]


class MythSynthesizer:
    """Type-and-example-directed synthesis of representation invariants."""

    def __init__(self, instance: ModuleInstance,
                 bounds: SynthesisBounds = SynthesisBounds(),
                 stats: Optional[InferenceStats] = None,
                 deadline: Optional[Deadline] = None,
                 extra_components: Optional[Dict[str, Tuple[Type, Value]]] = None,
                 pool_cache: Optional[SynthesisEvaluationCache] = None,
                 emitter: object = NULL_EMITTER):
        self.instance = instance
        self.program = instance.program
        self.concrete_type = instance.concrete_type
        self.bounds = bounds
        self.stats = stats
        self.deadline = deadline or Deadline(None)
        self.extra_components = dict(extra_components or {})
        self.pool_cache = pool_cache
        self.emitter = emitter
        #: Oracle-interpreting recursive-call functions, keyed by the oracle
        #: mapping they interpret.  Reusing the same function value for equal
        #: mappings lets the pool cache replay recursive-call pools across
        #: synthesize() calls whose examples did not change.
        self._oracle_fns: Dict[frozenset, Value] = {}
        #: Memoized reachability pruning: component-name set it was computed
        #: for, and the unusable names it found.
        self._unusable_for: Optional[frozenset] = None
        self._unusable: frozenset = frozenset()
        self.param = self._fresh_name("x")

    # -- public API ----------------------------------------------------------------

    def synthesize(self, positives: Iterable[Value],
                   negatives: Iterable[Value]) -> List[Predicate]:
        """Return candidate invariants separating the example sets, best first."""
        emitter = self.emitter
        if not emitter.enabled:
            return self._synthesize(positives, negatives)
        hits_before = misses_before = 0
        if self.stats is not None:
            hits_before = self.stats.pool_cache_hits
            misses_before = self.stats.pool_cache_misses
        try:
            data = {}
            try:
                data = {"positives": len(positives), "negatives": len(negatives)}
            except TypeError:
                pass
            with emitter.span("synthesis", data or None):
                return self._synthesize(positives, negatives)
        finally:
            if self.stats is not None and self.pool_cache is not None:
                emitter.emit("pool-cache",
                             {"hits": self.stats.pool_cache_hits - hits_before,
                              "misses": self.stats.pool_cache_misses - misses_before},
                             cat="cache")

    def _synthesize(self, positives: Iterable[Value],
                    negatives: Iterable[Value]) -> List[Predicate]:
        timer = self.stats.synthesis() if self.stats is not None else nullcontext()
        with timer:
            oracle = ExampleOracle.build(
                positives, negatives, self.concrete_type, self.program.types
            )
            bodies = self._candidate_bodies(oracle)
            predicates: List[Predicate] = []
            seen = set()
            for body in bodies:
                if body in seen:
                    continue
                seen.add(body)
                recursive = INVARIANT_NAME in free_vars(body)
                predicate = Predicate.from_body(
                    body, self.param, self.concrete_type, self.program,
                    recursive=recursive, name=INVARIANT_NAME,
                )
                # The oracle interprets recursive calls during the search; the
                # real (self-referential) semantics can differ, so candidates
                # are re-validated against the actual example sets.
                if predicate.consistent_with(oracle.positives, oracle.negatives):
                    predicates.append(predicate)
                if len(predicates) >= self.bounds.max_candidates:
                    break
            if not predicates:
                raise SynthesisFailure(
                    f"no invariant consistent with {len(oracle.positives)} positive and "
                    f"{len(oracle.negatives)} negative examples within the search bounds"
                )
            return predicates

    # -- candidate generation ---------------------------------------------------------

    def _candidate_bodies(self, oracle: ExampleOracle) -> List[Expr]:
        """All candidate invariant bodies, smallest first.

        The example oracle is stashed on the instance for the duration of the
        call so the recursive-call component can consult it.  The oracle-
        interpreting function value for the recursive call is one object per
        *oracle mapping*: shared by every branch pool of the call (so the
        evaluation cache can memoize its applications), reused across calls
        whose examples are identical (their pools replay wholesale), and
        fresh whenever the mapping changed (so no cache entry is ever
        answered by a stale oracle).
        """
        self.__oracle = oracle

        fingerprint = frozenset(oracle.mapping.items())
        recursive_fn = self._oracle_fns.get(fingerprint)
        if recursive_fn is None:

            def oracle_call(value: Value) -> Value:
                return v_bool(oracle.expected(value))

            recursive_fn = VNative(oracle_call, name=INVARIANT_NAME)
            if len(self._oracle_fns) < 256:
                self._oracle_fns[fingerprint] = recursive_fn
        self.__recursive_fn = recursive_fn
        try:
            examples: List[Example] = [
                ({self.param: value}, expected)
                for value, expected in sorted(
                    oracle.mapping.items(), key=lambda kv: value_size(kv[0])
                )
            ]
            context: Tuple[Tuple[str, Type], ...] = ((self.param, self.concrete_type),)

            bodies: List[Expr] = []
            # Match-free candidates (this is where ``fun _ -> true`` comes from).
            bodies.extend(self._leaf_bodies(context, examples, frozenset(), oracle))
            # Candidates that destructure the argument.
            bodies.extend(
                self._match_bodies(self.param, context, examples, frozenset(), oracle,
                                   depth=1, matched=frozenset())
            )
            bodies.sort(key=expr_size)
            return bodies
        finally:
            del self.__oracle
            del self.__recursive_fn

    # -- match skeletons -----------------------------------------------------------------

    def _match_bodies(self, scrutinee: str, context: Tuple[Tuple[str, Type], ...],
                      examples: Sequence[Example], decreasing: frozenset,
                      oracle: ExampleOracle, depth: int,
                      matched: frozenset) -> List[Expr]:
        """Candidates of the form ``match scrutinee with ...``.

        ``matched`` holds the names every enclosing match (and this one)
        already destructured; branch bodies skip them so no candidate
        re-matches a scrutinee inside its own match.
        """
        self.deadline.check()
        scrutinee_type = dict(context)[scrutinee]
        matched = matched | {scrutinee}

        if isinstance(scrutinee_type, TProd):
            return self._tuple_match_bodies(
                scrutinee, scrutinee_type, context, examples, decreasing, oracle,
                depth, matched
            )
        if not isinstance(scrutinee_type, TData):
            return []
        if scrutinee_type.name not in self.program.types.datatypes:
            return []
        if scrutinee_type.name == "bool":
            return []

        ctors = self.program.types.datatype_ctors(scrutinee_type.name)
        branch_options: List[List[Tuple[PCtor, Expr]]] = []
        for position, ctor in enumerate(ctors):
            pattern, bindings = self._ctor_pattern(ctor, scrutinee_type, depth)
            routed: List[Example] = []
            for env, expected in examples:
                value = env[scrutinee]
                if not isinstance(value, VCtor) or value.ctor != ctor.name:
                    continue
                branch_env = dict(env)
                branch_env.update(self._bind_pattern(bindings, value))
                routed.append((branch_env, expected))

            branch_context = context + tuple(bindings)
            branch_decreasing = decreasing | frozenset(
                name for name, ty in bindings if ty == self.concrete_type
            )
            bodies = self._branch_bodies(
                branch_context, routed, branch_decreasing, oracle, depth, matched
            )
            if not bodies:
                return []
            branch_options.append([(pattern, body) for body in bodies[:_PER_BRANCH_CANDIDATES]])

        combined: List[Expr] = []
        for combo in _bounded_product(branch_options, limit=self.bounds.max_candidates * 4):
            branches = tuple(Branch(pattern, body) for pattern, body in combo)
            combined.append(EMatch(EVar(scrutinee), branches))
        combined.sort(key=expr_size)
        return combined

    def _tuple_match_bodies(self, scrutinee: str, scrutinee_type: TProd,
                            context: Tuple[Tuple[str, Type], ...],
                            examples: Sequence[Example], decreasing: frozenset,
                            oracle: ExampleOracle, depth: int,
                            matched: frozenset) -> List[Expr]:
        """Destructure a product-typed value with a single tuple-pattern branch."""
        names = self._component_names(scrutinee_type.items, depth)
        bindings = tuple(zip(names, scrutinee_type.items))
        pattern = PTuple(tuple(PVar(name) for name in names))

        routed: List[Example] = []
        for env, expected in examples:
            value = env[scrutinee]
            if not isinstance(value, VTuple):
                continue
            branch_env = dict(env)
            branch_env.update({name: item for name, item in zip(names, value.items)})
            routed.append((branch_env, expected))

        branch_context = context + bindings
        bodies = self._branch_bodies(branch_context, routed, decreasing, oracle,
                                     depth, matched)
        return [
            EMatch(EVar(scrutinee), (Branch(pattern, body),))
            for body in bodies[:_PER_BRANCH_CANDIDATES]
        ]

    def _branch_bodies(self, context: Tuple[Tuple[str, Type], ...],
                       examples: Sequence[Example], decreasing: frozenset,
                       oracle: ExampleOracle, depth: int,
                       matched: frozenset) -> List[Expr]:
        """Bodies for one branch: leaf terms, plus nested matches if allowed.

        Names in ``matched`` were already destructured by an enclosing match
        (the synthesized argument itself included), so re-matching them could
        only duplicate work and emit redundant candidates.
        """
        bodies = list(self._leaf_bodies(context, examples, decreasing, oracle))
        if depth < self.bounds.max_match_depth:
            for name, ty in context:
                if name in matched:
                    continue
                if isinstance(ty, TData) and ty.name != "bool" and ty.name in self.program.types.datatypes:
                    bodies.extend(
                        self._match_bodies(name, context, examples, decreasing, oracle,
                                           depth + 1, matched)
                    )
                elif isinstance(ty, TProd):
                    bodies.extend(
                        self._match_bodies(name, context, examples, decreasing, oracle,
                                           depth + 1, matched)
                    )
        bodies.sort(key=expr_size)
        return bodies

    # -- leaf (match-free) bodies ------------------------------------------------------------

    def _leaf_bodies(self, context: Tuple[Tuple[str, Type], ...],
                     examples: Sequence[Example], decreasing: frozenset,
                     oracle: ExampleOracle) -> List[Expr]:
        if not examples:
            # No example reaches this branch; propose the weakest body.
            return [ECtor("True")]

        pool = TermPool(
            self.program,
            components=self._components(decreasing),
            context=context,
            environments=[env for env, _ in examples],
            max_size=self.bounds.max_term_size,
            max_applications=self.bounds.max_terms_per_branch,
            deadline=self.deadline,
            cache=self.pool_cache,
            stats=self.stats,
            emitter=self.emitter,
        )
        entries = pool.entries(TData("bool"))
        target = tuple(v_bool(expected) for _, expected in examples)

        exact = [entry.expr for entry in entries if entry.vector == target]
        conjunctions = self._conjunction_bodies(entries, examples)

        candidates: List[Expr] = []
        seen = set()
        for expr in exact + conjunctions:
            if expr not in seen:
                seen.add(expr)
                candidates.append(expr)
        candidates.sort(key=expr_size)
        return candidates[: _PER_BRANCH_CANDIDATES * 2]

    def _conjunction_bodies(self, entries, examples: Sequence[Example]) -> List[Expr]:
        """Bodies built as bounded conjunctions of atoms.

        Atoms must hold on every positive example routed to the branch; the
        conjunction must reject every routed negative example.  A greedy
        set-cover pass finds a small conjunction, and a bounded exhaustive
        pass over atom pairs adds alternatives for candidate diversity.
        """
        positive_idx = [i for i, (_, expected) in enumerate(examples) if expected]
        negative_idx = [i for i, (_, expected) in enumerate(examples) if not expected]
        if not negative_idx:
            return []

        atoms = [
            entry for entry in entries
            if all(entry.vector[i] == TRUE for i in positive_idx)
            and any(entry.vector[i] == FALSE for i in negative_idx)
        ]
        if not atoms:
            return []

        results: List[Expr] = []

        # Greedy cover.
        uncovered = set(negative_idx)
        chosen = []
        pool = list(atoms)
        while uncovered and len(chosen) < self.bounds.max_conjuncts:
            best = None
            best_covered = set()
            for entry in pool:
                covered = {i for i in uncovered if entry.vector[i] == FALSE}
                if len(covered) > len(best_covered) or (
                    best is not None
                    and len(covered) == len(best_covered)
                    and len(covered) > 0
                    and entry.size < best.size
                ):
                    if covered:
                        best = entry
                        best_covered = covered
            if best is None:
                break
            chosen.append(best)
            uncovered -= best_covered
            pool.remove(best)
        if chosen and not uncovered:
            results.append(_conjoin([entry.expr for entry in chosen]))

        # Bounded exhaustive pair search for alternative, possibly smaller, covers.
        small_atoms = sorted(atoms, key=lambda e: e.size)[:_MAX_PAIR_ATOMS]
        for i, first in enumerate(small_atoms):
            for second in small_atoms[i + 1:]:
                if all(
                    first.vector[k] == FALSE or second.vector[k] == FALSE
                    for k in negative_idx
                ):
                    results.append(_conjoin([first.expr, second.expr]))
                    if len(results) >= _PER_BRANCH_CANDIDATES * 2:
                        return results
        return results

    # -- components -------------------------------------------------------------------------

    def _components(self, decreasing: frozenset) -> List[TypedComponent]:
        components: List[TypedComponent] = []
        names = list(self.instance.definition.synthesis_components)
        names.extend(
            name for name in self.instance.definition.helper_functions if name not in names
        )
        for name in names:
            signature = self.program.global_type(name)
            if _is_first_order_function(signature):
                components.append(
                    TypedComponent(name, signature, self.program.global_value(name))
                )
        for name, (signature, fn) in self.extra_components.items():
            if _is_first_order_function(signature):
                components.append(TypedComponent(name, signature, fn))
        if self.bounds.component_pruning:
            unusable = self._unusable_component_names(components)
            if unusable:
                components = [c for c in components if c.name not in unusable]
        if decreasing:
            components.append(self._recursive_component(decreasing))
        return components

    def _unusable_component_names(self, components: List[TypedComponent]) -> frozenset:
        """Components that type-inhabitation reachability proves useless.

        Every branch context consists of the synthesized argument and pieces
        destructured out of it, so the downward closure of the concrete type
        over-approximates the variable types of every pool this synthesizer
        will ever build; pruning computed once against it is sound for all
        branches.  The recursive invariant component is never pruned (its
        ``tau_c -> bool`` signature is goal-reaching by construction)."""
        fixed = frozenset(c.name for c in components)
        if self._unusable_for != fixed:
            kept, dropped = split_components(
                components, [self.concrete_type], self.program.types,
                TData("bool"), destructure=True)
            self._unusable_for = fixed
            self._unusable = frozenset(c.name for c in dropped)
            if self.stats is not None:
                self.stats.components_pruned += len(self._unusable)
            if self._unusable and self.emitter.enabled:
                self.emitter.emit(
                    "components-pruned",
                    {"dropped": sorted(self._unusable),
                     "kept": sorted(c.name for c in kept)},
                    cat="analysis")
        return self._unusable

    def _recursive_component(self, decreasing: frozenset) -> TypedComponent:
        """The invariant's recursive self-call, interpreted by the example
        oracle and restricted to structurally smaller arguments."""
        return TypedComponent(
            INVARIANT_NAME,
            arrow(self.concrete_type, TData("bool")),
            self.__recursive_fn,
            argument_restrictions=(frozenset(decreasing),),
        )

    # The oracle used to interpret recursive calls; set for the duration of a
    # synthesize() invocation by ``_candidate_bodies``.
    @property
    def _current_oracle(self) -> ExampleOracle:
        return self.__oracle

    # -- naming -----------------------------------------------------------------------------

    def _fresh_name(self, base: str) -> str:
        name = base
        while self.program.has_global(name):
            name = name + "_"
        return name

    def _ctor_pattern(self, ctor, scrutinee_type: TData, depth: int):
        """A pattern for ``ctor`` plus the (name, type) bindings it introduces."""
        if ctor.payload is None:
            return PCtor(ctor.name), ()
        if isinstance(ctor.payload, TProd):
            names = self._component_names(ctor.payload.items, depth)
            pattern = PCtor(ctor.name, PTuple(tuple(PVar(n) for n in names)))
            return pattern, tuple(zip(names, ctor.payload.items))
        name = self._payload_name(ctor.payload, depth)
        return PCtor(ctor.name, PVar(name)), ((name, ctor.payload),)

    def _component_names(self, item_types: Tuple[Type, ...], depth: int) -> List[str]:
        suffix = "" if depth <= 1 else str(depth)
        if len(item_types) == 2 and item_types[1] == self.concrete_type:
            base = ["hd", "tl"]
        elif len(item_types) == 3 and item_types[0] == item_types[2]:
            base = ["lhs", "label", "rhs"]
        else:
            base = [f"m{i}" for i in range(len(item_types))]
        return [self._fresh_name(f"{name}{suffix}") for name in base]

    def _payload_name(self, payload: Type, depth: int) -> str:
        suffix = "" if depth <= 1 else str(depth)
        base = "sub" if payload == self.concrete_type else "y"
        return self._fresh_name(f"{base}{suffix}")

    @staticmethod
    def _bind_pattern(bindings, value: VCtor) -> Dict[str, Value]:
        if not bindings:
            return {}
        payload = value.payload
        if len(bindings) == 1:
            return {bindings[0][0]: payload}
        assert isinstance(payload, VTuple)
        return {name: item for (name, _), item in zip(bindings, payload.items)}


# -- helpers ---------------------------------------------------------------------------------


def _conjoin(exprs: List[Expr]) -> Expr:
    """Right-nested conjunction ``andb a (andb b c)``."""
    if len(exprs) == 1:
        return exprs[0]
    result = exprs[-1]
    for expr in reversed(exprs[:-1]):
        result = app(EVar("andb"), expr, result)
    return result


def _is_first_order_function(signature: Type) -> bool:
    """True when the signature is a (possibly nullary) first-order function."""
    ty = signature
    while isinstance(ty, TArrow):
        if isinstance(ty.arg, TArrow):
            return False
        ty = ty.result
    return not isinstance(ty, TArrow)


def _bounded_product(options: List[List], limit: int):
    """Cartesian product of per-branch options, truncated to ``limit`` combos,
    visiting small-index combinations first."""
    if not options:
        return
    counts = [len(o) for o in options]
    produced = 0
    # Enumerate by increasing total index sum so small (early) choices come first.
    max_sum = sum(c - 1 for c in counts)
    for total in range(0, max_sum + 1):
        for combo in _index_combos(counts, total):
            yield tuple(options[i][j] for i, j in enumerate(combo))
            produced += 1
            if produced >= limit:
                return


def _index_combos(counts: List[int], total: int):
    if len(counts) == 1:
        if total < counts[0]:
            yield (total,)
        return
    for first in range(0, min(counts[0] - 1, total) + 1):
        for rest in _index_combos(counts[1:], total - first):
            yield (first,) + rest
