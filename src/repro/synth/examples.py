"""Example sets and trace completeness.

The synthesizer receives input/output examples pairing concrete values with
booleans: every value of V+ maps to ``true`` and every value of V- to
``false``.  Myth additionally requires *trace completeness* (Section 4.3):
whenever an example is provided for a recursive data type value, examples
must also be provided for each of its sub-values of the same type.  Following
the paper, missing sub-values are mapped to ``false``; they stay internal to
the synthesizer (if such a value is actually constructible, a later visible
inductiveness check will surface it and move it into V+).

The example oracle doubles as the interpretation of the invariant's recursive
self-call while candidates are being evaluated against the examples, exactly
the way Myth evaluates recursive candidate programs against their
input/output examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..lang.typecheck import TypeEnvironment
from ..lang.types import TData, TProd, Type
from ..lang.values import Value, VCtor, VTuple, value_order, value_size
from .base import SynthesisFailure

__all__ = ["ExampleOracle", "subvalues_at_type"]


def subvalues_at_type(value: Value, value_type: Type, target: Type,
                      types: TypeEnvironment) -> List[Value]:
    """All sub-values of ``value`` (including itself) that have type ``target``.

    The walk is type-directed: constructor payloads are traversed at their
    declared payload types, tuple components at their component types.  This
    is how trace completeness discovers the recursive sub-structures (tails
    of lists, subtrees of trees) that need example entries.
    """
    found: List[Value] = []

    def walk(v: Value, ty: Type) -> None:
        if ty == target:
            found.append(v)
        if isinstance(ty, TData) and isinstance(v, VCtor) and ty.name in types.datatypes:
            info = types.ctors.get(v.ctor)
            if info is not None and info.payload is not None and v.payload is not None:
                walk(v.payload, info.payload)
        elif isinstance(ty, TProd) and isinstance(v, VTuple):
            for item, item_type in zip(v.items, ty.items):
                walk(item, item_type)

    walk(value, value_type)
    return found


@dataclass
class ExampleOracle:
    """A trace-complete map from concrete values to expected booleans."""

    concrete_type: Type
    types: TypeEnvironment
    mapping: Dict[Value, bool]
    positives: Tuple[Value, ...]
    negatives: Tuple[Value, ...]

    @classmethod
    def build(cls, positives: Iterable[Value], negatives: Iterable[Value],
              concrete_type: Type, types: TypeEnvironment) -> "ExampleOracle":
        """Build a trace-complete oracle from the loop's V+ and V- sets."""
        # value_order, not value_size: equal-size values would otherwise fall
        # back to the sets' hash-seed-dependent iteration order, and that
        # order reaches the example environments and the candidate stream.
        positives = tuple(sorted(set(positives), key=value_order))
        negatives = tuple(sorted(set(negatives), key=value_order))
        overlap = set(positives) & set(negatives)
        if overlap:
            raise SynthesisFailure(
                f"positive and negative examples overlap: {sorted(map(str, overlap))}"
            )

        mapping: Dict[Value, bool] = {}
        for value in positives:
            mapping[value] = True
        for value in negatives:
            mapping[value] = False

        # Trace completeness: close under sub-values of the concrete type,
        # defaulting missing entries to false (Section 4.3).
        for value in list(positives) + list(negatives):
            for sub in subvalues_at_type(value, concrete_type, concrete_type, types):
                if sub not in mapping:
                    mapping[sub] = False

        return cls(concrete_type, types, mapping, positives, negatives)

    # -- queries -------------------------------------------------------------

    def __contains__(self, value: Value) -> bool:
        return value in self.mapping

    def expected(self, value: Value) -> bool:
        return self.mapping[value]

    def lookup(self, value: Value) -> Optional[bool]:
        return self.mapping.get(value)

    @property
    def all_values(self) -> List[Value]:
        return sorted(self.mapping, key=value_size)

    def consistent(self, predicate) -> bool:
        """Is a predicate consistent with the original (non-padded) examples?"""
        return all(predicate(v) for v in self.positives) and all(
            not predicate(v) for v in self.negatives
        )
