"""Cross-iteration synthesis evaluation caching.

PR 3 extended Section 4.4's principle - never throw away work the loop will
redo - from synthesis bookkeeping into verification.  This module extends it
into *enumeration*: every ``MythSynthesizer.synthesize()`` call builds a
fresh :class:`~repro.synth.bottomup.TermPool` for every branch of every
match skeleton, and most of what those pools compute is identical to what
the pools of the previous CEGIS iteration computed, because V+ and V- only
grow between iterations.  Two stores exploit that:

* :class:`ApplicationMemo` memoizes ``program.apply(component.fn, *args)``
  per ``(component function, argument values)`` across **all** pools of a
  run - crash outcomes included, which the uncached path re-raises and
  re-catches on every iteration.  Keys hash the component's function value
  itself: first-order module globals are one stable object per run (so their
  applications replay across iterations), while the synthesizer's
  oracle-interpreted recursive call is a fresh ``VNative`` per synthesis
  call (so its applications replay only within one call, never against a
  stale oracle - the oracle's expected values change as examples grow).

* :class:`PoolMemo` reuses whole pool skeletons: when a later synthesis call
  reaches a branch whose ``(context, components, example environments,
  bounds)`` key matches a previously built pool, the stored term structure
  is replayed verbatim and no behaviour vector is evaluated at all.  The
  environments are part of the key on purpose: observational-equivalence
  dedup depends on the behaviour vectors, so a pool built over different
  environments can keep a different set of terms - replaying it would change
  the candidate stream.  Branches whose examples *did* change rebuild their
  structure, but every component application over previously seen argument
  values is answered by the :class:`ApplicationMemo`, so only the genuinely
  new example environments are evaluated.

Both stores hang off one per-run :class:`SynthesisEvaluationCache`, created
by :class:`~repro.core.hanoi.HanoiInference` (and the three baselines) when
``HanoiConfig.synthesis_evaluation_caching`` is enabled (the default) and
threaded into every :class:`~repro.synth.bottomup.TermPool` the synthesizer
builds.  The cache changes no candidate: pools replay exactly the entries
the uncached construction would produce, in the same order - see
``tests/synth/test_poolcache.py`` for the end-to-end equivalence suite.
Hit/miss counters live in :class:`~repro.core.stats.InferenceStats`
(``pool_cache_hits`` / ``pool_cache_misses``), incremented at the use sites
so the cache itself stays a pure store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..lang.values import Value, is_first_order, value_order

__all__ = ["SynthesisEvaluationCache", "ApplicationMemo", "PoolMemo",
           "PoolSnapshot", "CRASHED"]


class _Crashed:
    """Sentinel outcome of a component application that raised."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "CRASHED"

    def __reduce__(self):
        # Identity matters: use sites compare ``outcome is CRASHED``, so a
        # pickled copy must unpickle back to the module singleton.
        return (_restore_crashed, ())


#: The memoized outcome of an application that raised a language-level error
#: (the uncached enumeration catches the exception and drops the term).
CRASHED = _Crashed()


def _restore_crashed() -> "_Crashed":
    """Unpickle hook: resolve back to the :data:`CRASHED` singleton."""
    return CRASHED


class ApplicationMemo:
    """Memoizes component-application outcomes per ``(function, arguments)``.

    Keys pair the component's function value with the tuple of first-order
    argument values.  Function values hash by identity (module globals are
    one object per run; a fresh oracle ``VNative`` per synthesis call keys
    its own applications) and argument values hash structurally, exactly the
    discipline of the verification-side ``OperationMemo``.  ``max_entries``
    bounds memory: a full memo keeps answering lookups but stops storing new
    outcomes, which only costs speed, never correctness.
    """

    def __init__(self, max_entries: int = 500_000) -> None:
        self.max_entries = max_entries
        self._outcomes: Dict[Tuple[Value, Tuple[Value, ...]], object] = {}

    def __len__(self) -> int:
        return len(self._outcomes)

    def get(self, fn: Value, args: Tuple[Value, ...]) -> Optional[object]:
        """The stored outcome (a value or :data:`CRASHED`), or None if unseen."""
        return self._outcomes.get((fn, args))

    def put(self, fn: Value, args: Tuple[Value, ...], outcome: object) -> None:
        if len(self._outcomes) < self.max_entries:
            self._outcomes[(fn, args)] = outcome

    def export_outcomes(self, names: Dict[int, str]
                        ) -> List[Tuple[str, Tuple[Value, ...], object]]:
        """Picklable ``(global name, args, outcome)`` triples.

        ``names`` maps ``id(fn)`` to the module-global name bound to that
        function value, so identity-hashed keys can be re-bound to the fresh
        function objects of another process.  Entries keyed by anything else
        (the synthesizer's per-call oracle ``VNative``, enumerated function
        arguments) are skipped - their identities are meaningless outside
        this run.  Output order is hash-seed-independent.
        """
        exported = [
            (names[id(fn)], args, outcome)
            for (fn, args), outcome in self._outcomes.items()
            if id(fn) in names
            and all(is_first_order(v) for v in args)
            and (outcome is CRASHED or is_first_order(outcome))
        ]
        exported.sort(key=lambda item: (item[0],
                                        tuple(value_order(v) for v in item[1])))
        return exported

    def restore_outcomes(self, items: List[Tuple[str, Tuple[Value, ...], object]],
                         values: Dict[str, Value]) -> int:
        """Adopt :meth:`export_outcomes` output; returns the number adopted.

        ``values`` maps global names back to this process's function values;
        triples naming globals the module no longer defines are dropped.
        """
        adopted = 0
        for name, args, outcome in items:
            fn = values.get(name)
            if fn is None:
                continue
            if len(self._outcomes) >= self.max_entries:
                break
            key = (fn, args)
            if key not in self._outcomes:
                self._outcomes[key] = outcome
                adopted += 1
        return adopted


@dataclass(frozen=True)
class PoolSnapshot:
    """The replayable result of one pool construction.

    ``entries`` is every surviving :class:`~repro.synth.bottomup.TermEntry`
    paired with its result type, in insertion order (which reproduces the
    per-``(type, size)`` bucket order a fresh build would create);
    ``applications`` is the number of candidate combinations the build
    attempted, so a replay restores the pool's budget accounting; and
    ``evaluations`` is the number of per-environment component applications
    the build performed (one per ``_apply`` call), so a replay credits the
    hit counter in the same unit the memo's own hits and misses use.
    """

    entries: Tuple[Tuple[object, object], ...]
    applications: int
    evaluations: int


class PoolMemo:
    """Stores finished pool skeletons per construction key.

    The key (built by ``TermPool._pool_key``) captures everything the
    construction depends on: the typed context, the component identities
    (name, signature, restrictions, and the function value itself), the
    example environments projected onto the context, and the size/budget
    bounds.  An exact match therefore replays byte-identically; anything
    less than an exact match rebuilds (backed by the application memo).
    ``max_entries`` bounds memory the same way :class:`ApplicationMemo` does.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._pools: Dict[tuple, PoolSnapshot] = {}

    def __len__(self) -> int:
        return len(self._pools)

    def get(self, key: tuple) -> Optional[PoolSnapshot]:
        return self._pools.get(key)

    def put(self, key: tuple, snapshot: PoolSnapshot) -> None:
        if len(self._pools) < self.max_entries:
            self._pools[key] = snapshot


class SynthesisEvaluationCache:
    """Per-run store of synthesis enumeration work.

    One instance is shared by every :class:`~repro.synth.bottomup.TermPool`
    a run's synthesizer builds; ablation modes simply never create one.
    """

    def __init__(self, max_application_entries: int = 500_000,
                 max_pool_entries: int = 4096,
                 content_key: str = "") -> None:
        self.applications = ApplicationMemo(max_application_entries)
        self.pools = PoolMemo(max_pool_entries)
        #: Canonical content hash of the module the cached work belongs to
        #: (``repro.analysis.canon.canonical_hash``).  Alpha-equivalent
        #: modules share a key, so persisted or cross-run reuse is keyed by
        #: behaviour rather than source spelling.  Empty when unknown.
        self.content_key = content_key

    def snapshot(self) -> Dict[str, object]:
        """Deterministic occupancy counts, stamped on ``cache-snapshot`` trace
        events so ``repro trace`` can report cache growth per run."""
        snapshot: Dict[str, object] = {
            "application_entries": len(self.applications),
            "pool_entries": len(self.pools),
        }
        if self.content_key:
            snapshot["content_key"] = self.content_key
        return snapshot
