"""Synthesis of candidate representation invariants (the ``Synth`` component)."""

from .base import SynthesisFailure, Synthesizer
from .cache import SynthesisResultCache
from .examples import ExampleOracle, subvalues_at_type
from .folds import FoldSynthesizer
from .myth import MythSynthesizer
from .poolcache import SynthesisEvaluationCache

__all__ = [
    "Synthesizer",
    "SynthesisFailure",
    "MythSynthesizer",
    "FoldSynthesizer",
    "SynthesisResultCache",
    "SynthesisEvaluationCache",
    "ExampleOracle",
    "subvalues_at_type",
]
