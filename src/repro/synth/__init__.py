"""Synthesis of candidate representation invariants (the ``Synth`` component)."""

from .base import SynthesisFailure, Synthesizer
from .cache import SynthesisResultCache
from .examples import ExampleOracle, subvalues_at_type
from .folds import FoldSynthesizer
from .myth import MythSynthesizer

__all__ = [
    "Synthesizer",
    "SynthesisFailure",
    "MythSynthesizer",
    "FoldSynthesizer",
    "SynthesisResultCache",
    "ExampleOracle",
    "subvalues_at_type",
]
