"""Synthesis result caching (Section 4.4).

"When synthesizing, Myth often finds multiple possible solutions for a given
set of input/output examples.  Instead of throwing the unchosen solutions
away, we store them for future synthesis calls.  When given a set of
input/output examples, before making a call to Myth, we check if any of the
previously synthesized invariants satisfy the input/output example set.  If
one does, that invariant is used instead of a freshly synthesized one."

:class:`SynthesisResultCache` implements exactly that policy.  The Hanoi loop
consults it before every synthesis call; the Hanoi-SRC ablation simply never
installs a cache.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core.predicate import Predicate
from ..lang.values import Value

__all__ = ["SynthesisResultCache"]


class SynthesisResultCache:
    """Stores every candidate invariant ever produced by the synthesizer."""

    def __init__(self) -> None:
        self._candidates: List[Predicate] = []
        self._keys = set()

    def __len__(self) -> int:
        return len(self._candidates)

    @property
    def candidates(self) -> Sequence[Predicate]:
        return tuple(self._candidates)

    def store(self, predicates: Iterable[Predicate]) -> None:
        """Remember candidates (deduplicated by their definition)."""
        for predicate in predicates:
            key = predicate.decl
            if key not in self._keys:
                self._keys.add(key)
                self._candidates.append(predicate)

    def lookup(self, positives: Iterable[Value], negatives: Iterable[Value]) -> Optional[Predicate]:
        """The first cached candidate consistent with the example sets, if any."""
        positives = list(positives)
        negatives = list(negatives)
        for predicate in self._candidates:
            if predicate.consistent_with(positives, negatives):
                return predicate
        return None
