"""Synthesis result caching (Section 4.4).

"When synthesizing, Myth often finds multiple possible solutions for a given
set of input/output examples.  Instead of throwing the unchosen solutions
away, we store them for future synthesis calls.  When given a set of
input/output examples, before making a call to Myth, we check if any of the
previously synthesized invariants satisfy the input/output example set.  If
one does, that invariant is used instead of a freshly synthesized one."

:class:`SynthesisResultCache` implements exactly that policy.  The Hanoi loop
consults it before every synthesis call; the Hanoi-SRC ablation simply never
installs a cache.

Lookups are *incremental*: in the Hanoi loop V+ only ever grows and V- grows
within one strengthening phase, so instead of rescanning every example
against every stored candidate on every call, the cache keeps an append-only
log of the examples it has seen and, per candidate, how far into each log it
has already been checked.  A candidate that rejects a positive is marked dead
for as long as that positive remains (positives are monotone, so in practice
forever); only the examples added since the previous lookup are newly
evaluated.  When a queried example set turns out *not* to contain everything
seen so far (V- is reset on weakening; arbitrary callers may shrink either
set), the log restarts under a new generation and candidates are re-checked
from scratch - correctness never depends on the monotonicity, only the
speedup does.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..core.predicate import Predicate
from ..lang.values import Value, value_order

__all__ = ["SynthesisResultCache"]


class _Entry:
    """One stored candidate plus its progress through the example logs."""

    __slots__ = ("predicate", "pos_gen", "pos_index", "dead", "neg_gen", "neg_index")

    def __init__(self, predicate: Predicate) -> None:
        self.predicate = predicate
        self.pos_gen = -1
        self.pos_index = 0
        self.dead = False
        self.neg_gen = -1
        self.neg_index = 0


class _ExampleLog:
    """An append-only, generation-stamped view of one example set.

    ``sync`` brings the log in line with the set a lookup was given: new
    examples are appended; a query that dropped previously seen examples
    restarts the log under a fresh generation (entries then re-check from
    index 0, which is cheap because predicates memoize their evaluations).
    """

    __slots__ = ("values", "known", "generation")

    def __init__(self) -> None:
        self.values: List[Value] = []
        self.known: Set[Value] = set()
        self.generation = 0

    def sync(self, given: Iterable[Value]) -> None:
        given_set = set(given)
        if self.known <= given_set:
            fresh = given_set - self.known
            if fresh:
                # Deterministic extension order: ``fresh`` is a set, and set
                # iteration order varies with the interpreter's hash seed.
                self.values.extend(sorted(fresh, key=value_order))
                self.known |= fresh
        else:
            self.generation += 1
            self.values = sorted(given_set, key=value_order)
            self.known = given_set


class SynthesisResultCache:
    """Stores every candidate invariant ever produced by the synthesizer."""

    def __init__(self) -> None:
        self._entries: List[_Entry] = []
        self._keys = set()
        self._positives = _ExampleLog()
        self._negatives = _ExampleLog()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def candidates(self) -> Sequence[Predicate]:
        return tuple(entry.predicate for entry in self._entries)

    def store(self, predicates: Iterable[Predicate]) -> None:
        """Remember candidates (deduplicated by their definition)."""
        for predicate in predicates:
            key = predicate.decl
            if key not in self._keys:
                self._keys.add(key)
                self._entries.append(_Entry(predicate))

    def lookup(self, positives: Iterable[Value], negatives: Iterable[Value]) -> Optional[Predicate]:
        """The first cached candidate consistent with the example sets, if any."""
        self._positives.sync(positives)
        self._negatives.sync(negatives)
        for entry in self._entries:
            if self._accepts_positives(entry) and self._rejects_negatives(entry):
                return entry.predicate
        return None

    # -- per-entry incremental checks ---------------------------------------------

    def _accepts_positives(self, entry: _Entry) -> bool:
        log = self._positives
        if entry.pos_gen != log.generation:
            entry.pos_gen = log.generation
            entry.pos_index = 0
            entry.dead = False
        if entry.dead:
            return False
        while entry.pos_index < len(log.values):
            if not entry.predicate(log.values[entry.pos_index]):
                # Rejecting a positive is fatal for as long as that positive
                # remains in the queried set (i.e. until a generation bump).
                entry.dead = True
                return False
            entry.pos_index += 1
        return True

    def _rejects_negatives(self, entry: _Entry) -> bool:
        log = self._negatives
        if entry.neg_gen != log.generation:
            entry.neg_gen = log.generation
            entry.neg_index = 0
        while entry.neg_index < len(log.values):
            if entry.predicate(log.values[entry.neg_index]):
                # Leave the index on the offending negative: while it remains,
                # re-lookups fail in O(1); once V- resets, the generation
                # bumps and the scan restarts.
                return False
            entry.neg_index += 1
        return True

    # -- introspection (tests / debugging) ---------------------------------------

    def progress(self) -> List[Tuple[int, int, bool]]:
        """Per stored candidate: positives checked, negatives checked, dead flag."""
        return [(entry.pos_index, entry.neg_index, entry.dead) for entry in self._entries]
