"""Bottom-up term enumeration with observational-equivalence pruning.

The Myth-like synthesizer needs, for every branch of a candidate match
skeleton, the pool of well-typed terms over the branch's context together
with each term's behaviour on the branch's examples.  Building that pool
bottom-up and keeping only one term per distinct behaviour vector
(observational equivalence) is what keeps enumerative, example-directed
synthesis tractable; it is the standard technique behind enumerative
synthesizers in the Myth family.

A :class:`TermPool` holds, per result type, a list of :class:`TermEntry`
objects - the term, its size, and the tuple of values it produces on each
example environment.  Applications are evaluated *semantically* (component
function values applied to previously computed argument values) rather than
by re-interpreting whole expressions, so pool construction stays cheap.

Construction separates two concerns:

* *term-structure enumeration* - which applications are attempted at which
  size, driven by the surviving entries of smaller sizes (``_build_leaves``
  / ``_build_size`` / ``_build_applications``);
* *vector evaluation* - running one component application over one tuple of
  argument values (``_apply``), the only place object-language code runs.

The split is what the cross-iteration
:class:`~repro.synth.poolcache.SynthesisEvaluationCache` hooks into: with a
cache attached, ``_apply`` is answered by the application memo whenever the
``(function, arguments)`` pair was evaluated by any earlier pool of the run
(crash outcomes included), and a pool whose construction key matches a
previously built pool replays the stored term structure without evaluating
anything at all.  Cached or not, the entries produced - and their order -
are identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import Deadline
from ..core.stats import InferenceStats
from ..lang.ast import ECtor, EVar, Expr, app
from ..lang.errors import LangError
from ..lang.typecheck import TypeEnvironment
from ..lang.types import TData, Type, arrow_args, arrow_result
from ..lang.values import Value, VCtor
from ..lang.program import Program
from ..obs.events import NULL_EMITTER
from .poolcache import CRASHED, PoolSnapshot, SynthesisEvaluationCache

__all__ = ["TypedComponent", "TermEntry", "TermPool"]


@dataclass(frozen=True)
class TypedComponent:
    """A function available to synthesized terms, with its concrete signature.

    ``argument_restrictions`` limits argument positions to specific variable
    names; the synthesizer uses this to force the invariant's recursive call
    to take a structurally smaller argument.
    """

    name: str
    signature: Type
    fn: Value
    argument_restrictions: Tuple[Optional[frozenset], ...] = ()

    @property
    def argument_types(self) -> Tuple[Type, ...]:
        return tuple(arrow_args(self.signature))

    @property
    def result_type(self) -> Type:
        return arrow_result(self.signature)


@dataclass(frozen=True)
class TermEntry:
    """A candidate term together with its behaviour on the examples."""

    expr: Expr
    size: int
    vector: Tuple[Value, ...]
    variable: Optional[str] = None  # set when the term is a bare variable


class TermPool:
    """Size-stratified pools of terms, deduplicated by behaviour."""

    def __init__(self, program: Program,
                 components: Sequence[TypedComponent],
                 context: Sequence[Tuple[str, Type]],
                 environments: Sequence[Dict[str, Value]],
                 max_size: int,
                 constant_datatypes: Sequence[str] = ("nat",),
                 max_applications: int = 60_000,
                 deadline: Optional[Deadline] = None,
                 cache: Optional[SynthesisEvaluationCache] = None,
                 stats: Optional[InferenceStats] = None,
                 emitter: object = NULL_EMITTER):
        self.program = program
        self.types: TypeEnvironment = program.types
        self.components = tuple(components)
        self.context = tuple(context)
        self.environments = list(environments)
        self.max_size = max_size
        self.constant_datatypes = tuple(constant_datatypes)
        self.max_applications = max_applications
        self.deadline = deadline or Deadline(None)
        self.cache = cache
        self.stats = stats
        self.emitter = emitter

        #: entries grouped by (result type, size)
        self._by_type_size: Dict[Tuple[Type, int], List[TermEntry]] = {}
        self._seen: Dict[Tuple[Type, Tuple[Value, ...]], TermEntry] = {}
        #: every added entry with its result type, in insertion order (the
        #: replayable term structure of this pool)
        self._order: List[Tuple[Type, TermEntry]] = []
        self._applications = 0
        self._evaluations = 0
        self._build()

    # -- queries -----------------------------------------------------------------

    def entries(self, result_type: Type) -> List[TermEntry]:
        """All entries of the given type, smallest first."""
        found: List[TermEntry] = []
        for size in range(1, self.max_size + 1):
            found.extend(self._by_type_size.get((result_type, size), []))
        return found

    # -- construction ---------------------------------------------------------------

    def _add(self, result_type: Type, entry: TermEntry) -> bool:
        key = (result_type, entry.vector)
        if key in self._seen:
            return False
        self._seen[key] = entry
        self._by_type_size.setdefault((result_type, entry.size), []).append(entry)
        self._order.append((result_type, entry))
        return True

    def _build(self) -> None:
        if not self.environments:
            return
        key = self._pool_key() if self.cache is not None else None
        if key is not None:
            snapshot = self.cache.pools.get(key)
            if snapshot is not None:
                self._replay(snapshot)
                if self.emitter.enabled:
                    # One event per pool, never per entry: replays happen a
                    # handful of times per synthesis call, entries millions.
                    self.emitter.emit("pool-replay",
                                      {"entries": len(self._order),
                                       "evaluations": self._evaluations},
                                      cat="cache")
                return
        self._build_leaves()
        for size in range(2, self.max_size + 1):
            self._build_size(size)
            if self._applications >= self.max_applications:
                break
        if key is not None:
            self.cache.pools.put(
                key, PoolSnapshot(tuple(self._order), self._applications,
                                  self._evaluations))
        if self.emitter.enabled:
            self.emitter.emit("pool-built",
                              {"entries": len(self._order),
                               "applications": self._applications,
                               "evaluations": self._evaluations},
                              cat="cache")

    def _pool_key(self) -> tuple:
        """Everything the construction depends on, as one hashable key.

        Component function values hash by identity for closures/natives, so
        a component whose semantics change between synthesis calls (the
        oracle-interpreted recursive call is rebuilt per call) never matches
        a stale pool.  The environments are projected onto the context - the
        only names a pool reads.
        """
        component_key = tuple(
            (c.name, c.signature, c.argument_restrictions, c.fn) for c in self.components
        )
        environment_key = tuple(
            tuple(env[name] for name, _ in self.context) for env in self.environments
        )
        return (self.context, component_key, environment_key,
                self.max_size, self.constant_datatypes, self.max_applications)

    def _replay(self, snapshot: PoolSnapshot) -> None:
        """Reinstall a previously built pool's term structure verbatim."""
        for result_type, entry in snapshot.entries:
            self._by_type_size.setdefault((result_type, entry.size), []).append(entry)
        self._order = list(snapshot.entries)
        self._applications = snapshot.applications
        self._evaluations = snapshot.evaluations
        if self.stats is not None:
            # Credit every per-environment application the original build
            # performed: the replay serves all of them without evaluating
            # anything, in the same unit the memo's hits/misses use.
            self.stats.pool_cache_hits += snapshot.evaluations

    def _build_leaves(self) -> None:
        for name, ty in self.context:
            vector = tuple(env[name] for env in self.environments)
            self._add(ty, TermEntry(EVar(name), 1, vector, variable=name))
        for datatype in self._relevant_datatypes():
            for ctor in self.types.datatype_ctors(datatype):
                if ctor.payload is None:
                    value = VCtor(ctor.name)
                    vector = tuple(value for _ in self.environments)
                    self._add(TData(datatype), TermEntry(ECtor(ctor.name), 1, vector))
        # Nullary components (declared constants such as ``zero : nat``) are
        # size-1 leaves: they have no argument positions for ``_build_size``
        # to fill, so without this they could never appear in any term.
        for component in self.components:
            if component.argument_types:
                continue
            vector = tuple(component.fn for _ in self.environments)
            self._add(component.result_type,
                      TermEntry(EVar(component.name), 1, vector))

    def _relevant_datatypes(self) -> List[str]:
        names = {"bool"}
        for _, ty in self.context:
            if isinstance(ty, TData):
                names.add(ty.name)
        for component in self.components:
            for ty in component.argument_types:
                if isinstance(ty, TData):
                    names.add(ty.name)
            if isinstance(component.result_type, TData):
                names.add(component.result_type.name)
        return sorted(n for n in names if n in self.types.datatypes)

    def _build_size(self, size: int) -> None:
        # Constructor applications over "constant-like" datatypes (Peano
        # naturals by default) provide numeric constants such as 1, 2, 3 and
        # successor patterns without flooding the pool with container literals.
        for datatype in self.constant_datatypes:
            if datatype not in self.types.datatypes:
                continue
            goal = TData(datatype)
            for ctor in self.types.datatype_ctors(datatype):
                if ctor.payload is None:
                    continue
                for entry in self._by_type_size.get((ctor.payload, size - 1), []):
                    vector = tuple(VCtor(ctor.name, v) for v in entry.vector)
                    self._add(goal, TermEntry(ECtor(ctor.name, entry.expr), size, vector))

        for component in self.components:
            arg_types = component.argument_types
            if not arg_types:
                continue
            arity = len(arg_types)
            budget = size - arity - 1
            if budget < arity:
                continue
            for arg_sizes in _partitions(budget, arity):
                self._build_applications(component, arg_sizes, size)
                if self._applications >= self.max_applications:
                    return

    def _build_applications(self, component: TypedComponent,
                            arg_sizes: Tuple[int, ...], size: int) -> None:
        pools: List[List[TermEntry]] = []
        for index, (arg_type, arg_size) in enumerate(zip(component.argument_types, arg_sizes)):
            restriction = (
                component.argument_restrictions[index]
                if index < len(component.argument_restrictions)
                else None
            )
            pool = self._by_type_size.get((arg_type, arg_size), [])
            if restriction is not None:
                pool = [e for e in pool if e.variable is not None and e.variable in restriction]
            if not pool:
                return
            pools.append(pool)

        for combo in _product(pools):
            if self._applications >= self.max_applications:
                return
            self._applications += 1
            if self._applications % 512 == 0:
                self.deadline.check()
            vector = self._apply_vector(component, combo)
            if vector is None:
                continue
            expr = app(EVar(component.name), *[entry.expr for entry in combo])
            self._add(component.result_type, TermEntry(expr, size, vector))

    # -- vector evaluation ----------------------------------------------------------

    def _apply_vector(self, component: TypedComponent,
                      combo: Sequence[TermEntry]) -> Optional[Tuple[Value, ...]]:
        results: List[Value] = []
        for index in range(len(self.environments)):
            args = tuple(entry.vector[index] for entry in combo)
            outcome = self._apply(component, args)
            if outcome is CRASHED:
                return None
            results.append(outcome)
        return tuple(results)

    def _apply(self, component: TypedComponent, args: Tuple[Value, ...]) -> object:
        """One component application: a result value or :data:`CRASHED`."""
        self._evaluations += 1
        if self.cache is None:
            return self._evaluate(component, args)
        outcome = self.cache.applications.get(component.fn, args)
        if outcome is None:
            outcome = self._evaluate(component, args)
            self.cache.applications.put(component.fn, args, outcome)
            if self.stats is not None:
                self.stats.pool_cache_misses += 1
        elif self.stats is not None:
            self.stats.pool_cache_hits += 1
        return outcome

    def _evaluate(self, component: TypedComponent, args: Tuple[Value, ...]) -> object:
        try:
            return self.program.apply(component.fn, *args)
        except (LangError, KeyError, ValueError):
            return CRASHED


def _partitions(total: int, parts: int):
    if parts == 1:
        if total >= 1:
            yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in _partitions(total - first, parts - 1):
            yield (first,) + rest


def _product(pools: Sequence[List[TermEntry]]):
    if not pools:
        yield ()
        return
    head, rest = pools[0], pools[1:]
    for tail in _product(rest):
        for item in head:
            yield (item,) + tail
