"""Bottom-up term enumeration with observational-equivalence pruning.

The Myth-like synthesizer needs, for every branch of a candidate match
skeleton, the pool of well-typed terms over the branch's context together
with each term's behaviour on the branch's examples.  Building that pool
bottom-up and keeping only one term per distinct behaviour vector
(observational equivalence) is what keeps enumerative, example-directed
synthesis tractable; it is the standard technique behind enumerative
synthesizers in the Myth family.

A :class:`TermPool` holds, per result type, a list of :class:`TermEntry`
objects - the term, its size, and the tuple of values it produces on each
example environment.  Applications are evaluated *semantically* (component
function values applied to previously computed argument values) rather than
by re-interpreting whole expressions, so pool construction stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import Deadline
from ..lang.ast import ECtor, EVar, Expr, app
from ..lang.errors import LangError
from ..lang.typecheck import TypeEnvironment
from ..lang.types import TData, Type, arrow_args, arrow_result
from ..lang.values import Value, VCtor
from ..lang.program import Program

__all__ = ["TypedComponent", "TermEntry", "TermPool"]


@dataclass(frozen=True)
class TypedComponent:
    """A function available to synthesized terms, with its concrete signature.

    ``argument_restrictions`` limits argument positions to specific variable
    names; the synthesizer uses this to force the invariant's recursive call
    to take a structurally smaller argument.
    """

    name: str
    signature: Type
    fn: Value
    argument_restrictions: Tuple[Optional[frozenset], ...] = ()

    @property
    def argument_types(self) -> Tuple[Type, ...]:
        return tuple(arrow_args(self.signature))

    @property
    def result_type(self) -> Type:
        return arrow_result(self.signature)


@dataclass(frozen=True)
class TermEntry:
    """A candidate term together with its behaviour on the examples."""

    expr: Expr
    size: int
    vector: Tuple[Value, ...]
    variable: Optional[str] = None  # set when the term is a bare variable


class TermPool:
    """Size-stratified pools of terms, deduplicated by behaviour."""

    def __init__(self, program: Program,
                 components: Sequence[TypedComponent],
                 context: Sequence[Tuple[str, Type]],
                 environments: Sequence[Dict[str, Value]],
                 max_size: int,
                 constant_datatypes: Sequence[str] = ("nat",),
                 max_applications: int = 60_000,
                 deadline: Optional[Deadline] = None):
        self.program = program
        self.types: TypeEnvironment = program.types
        self.components = tuple(components)
        self.context = tuple(context)
        self.environments = list(environments)
        self.max_size = max_size
        self.constant_datatypes = tuple(constant_datatypes)
        self.max_applications = max_applications
        self.deadline = deadline or Deadline(None)

        #: entries grouped by (result type, size)
        self._by_type_size: Dict[Tuple[Type, int], List[TermEntry]] = {}
        self._seen: Dict[Tuple[Type, Tuple[Value, ...]], TermEntry] = {}
        self._applications = 0
        self._build()

    # -- queries -----------------------------------------------------------------

    def entries(self, result_type: Type) -> List[TermEntry]:
        """All entries of the given type, smallest first."""
        found: List[TermEntry] = []
        for size in range(1, self.max_size + 1):
            found.extend(self._by_type_size.get((result_type, size), []))
        return found

    # -- construction ---------------------------------------------------------------

    def _add(self, result_type: Type, entry: TermEntry) -> bool:
        key = (result_type, entry.vector)
        if key in self._seen:
            return False
        self._seen[key] = entry
        self._by_type_size.setdefault((result_type, entry.size), []).append(entry)
        return True

    def _build(self) -> None:
        if not self.environments:
            return
        self._build_leaves()
        for size in range(2, self.max_size + 1):
            self._build_size(size)
            if self._applications >= self.max_applications:
                break

    def _build_leaves(self) -> None:
        for name, ty in self.context:
            vector = tuple(env[name] for env in self.environments)
            self._add(ty, TermEntry(EVar(name), 1, vector, variable=name))
        for datatype in self._relevant_datatypes():
            for ctor in self.types.datatype_ctors(datatype):
                if ctor.payload is None:
                    value = VCtor(ctor.name)
                    vector = tuple(value for _ in self.environments)
                    self._add(TData(datatype), TermEntry(ECtor(ctor.name), 1, vector))

    def _relevant_datatypes(self) -> List[str]:
        names = {"bool"}
        for _, ty in self.context:
            if isinstance(ty, TData):
                names.add(ty.name)
        for component in self.components:
            for ty in component.argument_types:
                if isinstance(ty, TData):
                    names.add(ty.name)
            if isinstance(component.result_type, TData):
                names.add(component.result_type.name)
        return sorted(n for n in names if n in self.types.datatypes)

    def _build_size(self, size: int) -> None:
        # Constructor applications over "constant-like" datatypes (Peano
        # naturals by default) provide numeric constants such as 1, 2, 3 and
        # successor patterns without flooding the pool with container literals.
        for datatype in self.constant_datatypes:
            if datatype not in self.types.datatypes:
                continue
            goal = TData(datatype)
            for ctor in self.types.datatype_ctors(datatype):
                if ctor.payload is None:
                    continue
                for entry in self._by_type_size.get((ctor.payload, size - 1), []):
                    vector = tuple(VCtor(ctor.name, v) for v in entry.vector)
                    self._add(goal, TermEntry(ECtor(ctor.name, entry.expr), size, vector))

        for component in self.components:
            arg_types = component.argument_types
            if not arg_types:
                continue
            arity = len(arg_types)
            budget = size - arity - 1
            if budget < arity:
                continue
            for arg_sizes in _partitions(budget, arity):
                self._build_applications(component, arg_sizes, size)
                if self._applications >= self.max_applications:
                    return

    def _build_applications(self, component: TypedComponent,
                            arg_sizes: Tuple[int, ...], size: int) -> None:
        pools: List[List[TermEntry]] = []
        for index, (arg_type, arg_size) in enumerate(zip(component.argument_types, arg_sizes)):
            restriction = (
                component.argument_restrictions[index]
                if index < len(component.argument_restrictions)
                else None
            )
            pool = self._by_type_size.get((arg_type, arg_size), [])
            if restriction is not None:
                pool = [e for e in pool if e.variable is not None and e.variable in restriction]
            if not pool:
                return
            pools.append(pool)

        for combo in _product(pools):
            if self._applications >= self.max_applications:
                return
            self._applications += 1
            if self._applications % 512 == 0:
                self.deadline.check()
            vector = self._apply_vector(component, combo)
            if vector is None:
                continue
            expr = app(EVar(component.name), *[entry.expr for entry in combo])
            self._add(component.result_type, TermEntry(expr, size, vector))

    def _apply_vector(self, component: TypedComponent,
                      combo: Sequence[TermEntry]) -> Optional[Tuple[Value, ...]]:
        results: List[Value] = []
        for index in range(len(self.environments)):
            args = [entry.vector[index] for entry in combo]
            try:
                results.append(self.program.apply(component.fn, *args))
            except (LangError, KeyError, ValueError):
                return None
        return tuple(results)


def _partitions(total: int, parts: int):
    if parts == 1:
        if total >= 1:
            yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in _partitions(total - first, parts - 1):
            yield (first,) + rest


def _product(pools: Sequence[List[TermEntry]]):
    if not pools:
        yield ()
        return
    head, rest = pools[0], pools[1:]
    for tail in _product(rest):
        for item in head:
            yield (item,) + tail
