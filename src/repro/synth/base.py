"""Synthesizer interface.

The Hanoi algorithm is parameterized by a synthesizer ``Synth`` that, given a
set V+ of positive examples and a set V- of negative examples over the
concrete type, returns a predicate separating them (Section 3.3).  The
paper's implementation uses Myth; ours provides

* :class:`~repro.synth.myth.MythSynthesizer` - a type-and-example-directed
  enumerative synthesizer in the spirit of Myth,
* :class:`~repro.synth.folds.FoldSynthesizer` - the prototype extension of
  Section 5.4 that can use derived accumulator functions,

both implementing the :class:`Synthesizer` protocol below.
"""

from __future__ import annotations

from typing import Iterable, List, Protocol

from ..core.predicate import Predicate
from ..lang.values import Value

__all__ = ["Synthesizer", "SynthesisFailure"]


class SynthesisFailure(Exception):
    """Raised when no predicate consistent with the examples can be found.

    The Hanoi loop turns this into the "No predicate found" failure of
    Figure 4 (it also fires when V+ and V- overlap, which signals an actual
    specification violation or an inconsistency introduced by the unsound
    verifier).
    """


class Synthesizer(Protocol):
    """The ``Synth`` black box of the paper."""

    def synthesize(self, positives: Iterable[Value],
                   negatives: Iterable[Value]) -> List[Predicate]:
        """Return one or more predicates that are ``true`` on every positive
        example and ``false`` on every negative example, best candidate first.

        Raises :class:`SynthesisFailure` when no such predicate is found
        within the synthesizer's bounds.
        """
        ...
