"""The fold-capable prototype synthesizer (Section 5.4).

The paper reports a prototype synthesizer that, unlike Myth, "can synthesize
folds, letting our synthesizer generate functions that require accumulators",
which allows it to find the binary-heap invariant for ``/vfa/tree-::-priqueue``
without the ``true_maximum`` helper the starred benchmarks otherwise need.

Our reproduction follows the same idea with an explicit construction: for
every recursive data type reachable from the concrete type, the synthesizer
derives catamorphism-style aggregate functions (the maximum, minimum, and
count of the natural-number labels stored in a value) and exposes them to the
term search as additional components.  The derived functions are installed
into the module program under reserved ``fold_*`` names so that synthesized
invariants that mention them remain executable and printable.  DESIGN.md
documents this as a behaviour-preserving substitution: both the original
prototype and this one extend the hypothesis space with accumulator-computed
aggregates of the data structure.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.config import Deadline, SynthesisBounds
from ..core.module import ModuleInstance
from ..core.stats import InferenceStats
from ..lang.types import TData, TProd, Type, arrow
from ..lang.values import Value, VCtor, VNative, VTuple, int_of_nat, nat_of_int
from .myth import MythSynthesizer

__all__ = ["FoldSynthesizer"]


def _nat_leaves(value: Value, ty: Type, types) -> Tuple[int, ...]:
    """All natural-number leaves of ``value`` (walked along its type)."""
    if isinstance(ty, TData) and ty.name == "nat":
        return (int_of_nat(value),)
    leaves: Tuple[int, ...] = ()
    if isinstance(ty, TData) and isinstance(value, VCtor) and ty.name in types.datatypes:
        info = types.ctors.get(value.ctor)
        if info is not None and info.payload is not None and value.payload is not None:
            leaves += _nat_leaves(value.payload, info.payload, types)
    elif isinstance(ty, TProd) and isinstance(value, VTuple):
        for item, item_type in zip(value.items, ty.items):
            leaves += _nat_leaves(item, item_type, types)
    return leaves


class FoldSynthesizer(MythSynthesizer):
    """A :class:`MythSynthesizer` extended with derived fold components."""

    def __init__(self, instance: ModuleInstance,
                 bounds: SynthesisBounds = SynthesisBounds(),
                 stats: Optional[InferenceStats] = None,
                 deadline: Optional[Deadline] = None,
                 extra_components: Optional[Dict[str, Tuple[Type, Value]]] = None,
                 pool_cache=None):
        extras = dict(extra_components or {})
        extras.update(self._derived_folds(instance))
        super().__init__(instance, bounds=bounds, stats=stats, deadline=deadline,
                         extra_components=extras, pool_cache=pool_cache)

    @staticmethod
    def _derived_folds(instance: ModuleInstance) -> Dict[str, Tuple[Type, Value]]:
        """Build ``fold_max`` / ``fold_min`` / ``fold_count`` over the concrete type."""
        concrete = instance.concrete_type
        types = instance.program.types
        nat = TData("nat")

        def aggregate(reducer, default: int):
            def run(value: Value) -> Value:
                leaves = _nat_leaves(value, concrete, types)
                return nat_of_int(reducer(leaves) if leaves else default)
            return run

        derived = {
            "fold_max": (arrow(concrete, nat), VNative(aggregate(max, 0), name="fold_max")),
            "fold_min": (arrow(concrete, nat), VNative(aggregate(min, 0), name="fold_min")),
            "fold_count": (arrow(concrete, nat), VNative(aggregate(len, 0), name="fold_count")),
        }
        # Install into the program so synthesized invariants mentioning the
        # derived functions can be evaluated and rendered later.
        for name, (_, fn) in derived.items():
            instance.program.evaluator.globals.setdefault(name, fn)
        return derived
