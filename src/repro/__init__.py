"""repro: data-driven inference of representation invariants.

A from-scratch Python reproduction of "Data-Driven Inference of
Representation Invariants" (Miltner, Padhi, Millstein, Walker - PLDI 2020):
the Hanoi CEGIS algorithm built on visible inductiveness, the object language
its modules are written in, an enumerative verifier and a Myth-like
synthesizer, the prior-work baselines, the 28-benchmark suite, and the
harnesses that regenerate the paper's tables and figures.

Quick start::

    from repro import infer_invariant, get_benchmark, HanoiConfig

    result = infer_invariant(get_benchmark("/coq/unique-list-::-set"),
                             HanoiConfig(timeout_seconds=60))
    print(result.status)
    print(result.render_invariant())
"""

from .baselines import (
    ConjunctiveStrengtheningInference,
    LinearArbitraryInference,
    OneShotInference,
)
from .core import (
    HanoiConfig,
    HanoiInference,
    InferenceResult,
    InferenceStats,
    ModuleDefinition,
    ModuleInstance,
    Operation,
    Predicate,
    Status,
    SynthesisBounds,
    VerifierBounds,
    infer_invariant,
)
from .spec import (
    SpecFileError,
    load_module_file,
    load_module_text,
    load_pack,
    register_pack,
    render_module,
)
from .suite import (
    BENCHMARKS,
    FAST_BENCHMARKS,
    GROUPS,
    PAPER_RESULTS,
    all_benchmark_names,
    benchmarks_in_group,
    fast_benchmarks,
    get_benchmark,
)
from .synth import FoldSynthesizer, MythSynthesizer, SynthesisFailure

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "HanoiInference",
    "infer_invariant",
    "HanoiConfig",
    "VerifierBounds",
    "SynthesisBounds",
    "ModuleDefinition",
    "ModuleInstance",
    "Operation",
    "Predicate",
    "InferenceResult",
    "InferenceStats",
    "Status",
    # synthesis
    "MythSynthesizer",
    "FoldSynthesizer",
    "SynthesisFailure",
    # baselines
    "ConjunctiveStrengtheningInference",
    "LinearArbitraryInference",
    "OneShotInference",
    # benchmark definition files (.hanoi)
    "SpecFileError",
    "load_module_file",
    "load_module_text",
    "render_module",
    "load_pack",
    "register_pack",
    # suite
    "BENCHMARKS",
    "FAST_BENCHMARKS",
    "GROUPS",
    "PAPER_RESULTS",
    "get_benchmark",
    "all_benchmark_names",
    "benchmarks_in_group",
    "fast_benchmarks",
]
