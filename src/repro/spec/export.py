"""Rendering module definitions back to the ``.hanoi`` text format.

This is the inverse of :mod:`repro.spec.loader`: any
:class:`~repro.core.module.ModuleDefinition` - a built-in benchmark or a
hand-built one - renders to a definition file that loads back into a
behaviourally identical definition (same interface, same specification, same
operation semantics; the golden round-trip test exercises this for all 28
built-in benchmarks).

The exported layout is: a header comment, the metadata directives, the
interface directives, the module source verbatim, and the oracle-invariant
block (when the definition ships one).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.module import ModuleDefinition
from ..lang.prelude import DEFAULT_SYNTHESIS_COMPONENTS
from ..lang.program import Program
from .common import module_filename, render_signature

__all__ = [
    "render_module",
    "export_benchmark",
    "export_all",
    "module_filename",
]

#: Alias candidates for spelling the abstract type in exported directives;
#: the first one that collides with nothing in the module is used.
_ALIAS_CANDIDATES = ("t", "abs_t", "alpha", "t0", "t1", "t2")


def _escape(text: str) -> str:
    return (text.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n").replace("\r", "\\r").replace("\t", "\\t"))


def _comment_safe(text: str) -> str:
    """Collapse whitespace and defuse comment delimiters for the header.

    The header comment is purely cosmetic; a benchmark name or description
    containing ``*)`` (or an unbalanced ``(*``) must not be able to terminate
    - or open - the OCaml-style comment it is quoted inside.
    """
    text = " ".join(text.split())
    return text.replace("(*", "( *").replace("*)", "* )")


def _pick_alias(definition: ModuleDefinition) -> str:
    """An abstract-type alias that shadows no type or global of the module."""
    program = Program.from_source(definition.source)
    taken = set(program.types.datatypes) | set(program.types.globals)
    for candidate in _ALIAS_CANDIDATES:
        if candidate not in taken:
            return candidate
    index = 3
    while f"t{index}" in taken:  # pragma: no cover - needs a pathological module
        index += 1
    return f"t{index}"


def render_module(definition: ModuleDefinition,
                  abstract_alias: Optional[str] = None) -> str:
    """Render a module definition as ``.hanoi`` text."""
    alias = abstract_alias or _pick_alias(definition)
    lines: List[str] = []
    header = _comment_safe(definition.name)
    if definition.description:
        header += ": " + _comment_safe(definition.description)
    lines.append(f"(* {header} *)")
    lines.append("")
    lines.append(f'benchmark "{_escape(definition.name)}"')
    group = definition.group
    if not (group.isidentifier() and group[0].islower()):
        group = f'"{_escape(group)}"'
    lines.append(f"group {group}")
    if definition.description:
        lines.append(f'description "{_escape(definition.description)}"')
    lines.append("")
    lines.append(f"abstract type {alias} = "
                 f"{render_signature(definition.concrete_type, alias)}")
    lines.append("")
    for operation in definition.operations:
        lines.append(f"operation {operation.name} : "
                     f"{render_signature(operation.signature, alias)}")
    spec_sig = " -> ".join(
        [render_signature(arg, alias) for arg in definition.spec_signature]
        + ["bool"])
    lines.append(f"spec {definition.spec_name} : {spec_sig}")

    helpers = tuple(definition.helper_functions)
    extras = [name for name in definition.synthesis_components
              if name not in DEFAULT_SYNTHESIS_COMPONENTS
              and name not in helpers]
    if extras:
        lines.append("components " + ", ".join(extras))
    if helpers:
        lines.append("helpers " + ", ".join(helpers))
    lines.append("")
    lines.append(definition.source.strip("\n"))
    if definition.expected_invariant:
        lines.append("")
        lines.append("expected invariant")
        lines.append(definition.expected_invariant.strip("\n"))
    return "\n".join(lines) + "\n"


def export_benchmark(name: str) -> str:
    """Render one registered benchmark as ``.hanoi`` text."""
    from ..suite.registry import get_benchmark

    return render_module(get_benchmark(name))


def export_all(out_dir: str,
               names: Optional[Iterable[str]] = None) -> List[Tuple[str, str]]:
    """Export registered benchmarks (all by default) as one file each.

    Returns ``(benchmark name, file path)`` pairs in export order.  Files
    whose sanitized names would collide raise ``ValueError`` rather than
    silently overwriting each other.
    """
    from ..suite.registry import all_benchmark_names, get_benchmark

    selected = list(names if names is not None else all_benchmark_names())
    filenames: Dict[str, str] = {}
    for name in selected:
        filename = module_filename(name)
        if filename in filenames:
            raise ValueError(
                f"benchmarks {filenames[filename]!r} and {name!r} both export "
                f"to {filename!r}")
        filenames[filename] = name

    os.makedirs(out_dir, exist_ok=True)
    written: List[Tuple[str, str]] = []
    for filename, name in filenames.items():
        path = os.path.join(out_dir, filename)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(render_module(get_benchmark(name)))
        written.append((name, path))
    return written
