"""Shared vocabulary of the ``.hanoi`` benchmark definition format.

The format interleaves two layers in one file:

* *object-language declarations* (``type`` / ``let``), parsed by the ordinary
  :mod:`repro.lang` parser - these form the module implementation, the
  specification function, and (optionally) an oracle invariant;
* *directives*, lines beginning with one of :data:`DIRECTIVE_KEYWORDS`, which
  declare the benchmark metadata a
  :class:`~repro.core.module.ModuleDefinition` needs: the abstract type, the
  interface signatures, the specification name, and synthesis hints.

Interface signatures in directives are written over a user-chosen *alias* for
the abstract type (``abstract type t = list`` declares alias ``t`` with
concrete representation ``list``); this module provides the two substitutions
between the alias spelling and the internal :class:`~repro.lang.types.TAbstract`
representation, plus the filename sanitizer used when exporting benchmarks.
"""

from __future__ import annotations

from ..lang.pretty import pretty_type
from ..lang.types import TAbstract, TArrow, TData, TProd, Type

__all__ = [
    "DIRECTIVE_KEYWORDS",
    "DEFAULT_GROUP",
    "SPEC_FILE_SUFFIX",
    "alias_to_abstract",
    "abstract_to_alias",
    "render_signature",
    "signature_mentions_alias",
    "data_type_names",
    "module_filename",
]

#: Lowercase identifiers that open a directive at the top level of a
#: ``.hanoi`` file.  Object-language declarations always start with the
#: keywords ``let`` or ``type``, so the two layers never collide.
DIRECTIVE_KEYWORDS = frozenset(
    ["benchmark", "group", "description", "abstract", "operation", "spec",
     "components", "helpers", "expected"]
)

#: Group recorded for benchmarks whose file carries no ``group`` directive.
DEFAULT_GROUP = "custom"

#: Extension of benchmark definition files.
SPEC_FILE_SUFFIX = ".hanoi"


def alias_to_abstract(ty: Type, alias: str) -> Type:
    """Replace every ``TData(alias)`` occurrence with the abstract type."""
    if isinstance(ty, TData):
        return TAbstract() if ty.name == alias else ty
    if isinstance(ty, TAbstract):
        return ty
    if isinstance(ty, TProd):
        return TProd(tuple(alias_to_abstract(t, alias) for t in ty.items))
    if isinstance(ty, TArrow):
        return TArrow(alias_to_abstract(ty.arg, alias),
                      alias_to_abstract(ty.result, alias))
    raise TypeError(f"unknown type node: {ty!r}")


def abstract_to_alias(ty: Type, alias: str) -> Type:
    """Replace every abstract-type occurrence with ``TData(alias)``."""
    if isinstance(ty, TAbstract):
        return TData(alias)
    if isinstance(ty, TData):
        return ty
    if isinstance(ty, TProd):
        return TProd(tuple(abstract_to_alias(t, alias) for t in ty.items))
    if isinstance(ty, TArrow):
        return TArrow(abstract_to_alias(ty.arg, alias),
                      abstract_to_alias(ty.result, alias))
    raise TypeError(f"unknown type node: {ty!r}")


def render_signature(ty: Type, alias: str) -> str:
    """Render an interface signature with the abstract type spelled ``alias``."""
    return pretty_type(abstract_to_alias(ty, alias))


def signature_mentions_alias(ty: Type, alias: str) -> bool:
    """True when the directive-spelled signature mentions the alias."""
    if isinstance(ty, TData):
        return ty.name == alias
    if isinstance(ty, TAbstract):
        return True
    if isinstance(ty, TProd):
        return any(signature_mentions_alias(t, alias) for t in ty.items)
    if isinstance(ty, TArrow):
        return (signature_mentions_alias(ty.arg, alias)
                or signature_mentions_alias(ty.result, alias))
    return False


def data_type_names(ty: Type):
    """Yield the names of every ``TData`` node in a type."""
    if isinstance(ty, TData):
        yield ty.name
    elif isinstance(ty, TProd):
        for item in ty.items:
            yield from data_type_names(item)
    elif isinstance(ty, TArrow):
        yield from data_type_names(ty.arg)
        yield from data_type_names(ty.result)


def module_filename(benchmark_name: str) -> str:
    """A filesystem-safe ``.hanoi`` filename for a benchmark name.

    Benchmark names follow the paper's path-like scheme
    (``/coq/unique-list-::-set*``); slashes become double underscores, the
    ``*`` marker becomes ``+star``, and the ``::`` marker becomes ``..`` (a
    colon is not a legal filename character on Windows), so the stem stays
    unambiguous and portable.
    """
    stem = (benchmark_name.strip("/").replace("/", "__")
            .replace("*", "+star").replace("::", ".."))
    safe = "".join(ch if (ch.isalnum() or ch in "+-_.=") else "_" for ch in stem)
    return (safe or "module") + SPEC_FILE_SUFFIX
