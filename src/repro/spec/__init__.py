"""The benchmark definition-file subsystem: the ``.hanoi`` text format.

This package turns the reproduction from a fixed 28-benchmark suite into an
open tool: a data structure plus a specification, written in one text file,
becomes a :class:`~repro.core.module.ModuleDefinition` the whole inference
stack accepts.

* :mod:`repro.spec.loader` parses and validates ``.hanoi`` files;
* :mod:`repro.spec.export` renders any definition back to the format;
* :mod:`repro.spec.pack` loads directories of files as registered benchmark
  packs;
* :mod:`repro.spec.errors` defines the line-anchored
  :class:`~repro.spec.errors.SpecFileError` diagnostics.

The CLI front ends are ``repro infer <file.hanoi>``, ``repro export`` and the
``--pack DIR`` option of ``repro run`` / ``repro list``.
"""

from .common import SPEC_FILE_SUFFIX, module_filename
from .errors import SpecFileError
from .export import export_all, export_benchmark, render_module
from .loader import load_module_file, load_module_text
from .pack import Pack, ensure_pack_registered, load_pack, register_pack, unregister_pack

__all__ = [
    "SPEC_FILE_SUFFIX",
    "SpecFileError",
    "load_module_file",
    "load_module_text",
    "render_module",
    "export_benchmark",
    "export_all",
    "module_filename",
    "Pack",
    "load_pack",
    "register_pack",
    "ensure_pack_registered",
    "unregister_pack",
]
