"""Diagnostics for the ``.hanoi`` benchmark definition format.

Every failure the loader can produce - lexical, syntactic, structural, or a
type error surfaced from the object-language checker - is reported as a
:class:`SpecFileError` carrying the file path and the 1-based line of the
offending construct, so tools (and the ``repro infer`` CLI) can print
``file.hanoi:12: message`` diagnostics instead of tracebacks.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["SpecFileError"]


class SpecFileError(Exception):
    """A malformed ``.hanoi`` benchmark definition file.

    Attributes
    ----------
    path:
        The file the error was found in (``<string>`` for in-memory sources).
    line:
        1-based line number of the offending directive or declaration, or
        ``None`` when the error concerns the file as a whole (for example an
        empty file or a missing required directive).
    reason:
        The bare message, without the location prefix.
    """

    def __init__(self, reason: str, path: str = "<string>",
                 line: Optional[int] = None):
        location = f"{path}:{line}" if line is not None else path
        super().__init__(f"{location}: {reason}")
        self.path = path
        self.line = line
        self.reason = reason
