"""Benchmark packs: directories of ``.hanoi`` files usable as a suite.

A *pack* is any directory containing benchmark definition files.  Loading a
pack parses every ``*.hanoi`` file in it (sorted, so ordering is stable) and
registering it installs each definition in
:mod:`repro.suite.registry`, after which the whole experiment stack -
``expand_tasks``, the serial runner, the :class:`ParallelRunner`, and the
result store - works on pack benchmarks exactly as on the built-in 28.

Registration is idempotent per resolved directory path and remembered in
:data:`_REGISTERED`; :func:`ensure_pack_registered` is what
``execute_task`` calls inside pool workers, so packs resolve even under a
``spawn`` multiprocessing context where workers do not inherit the parent's
registry mutations.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List

from ..core.module import ModuleDefinition
from ..suite.registry import register_benchmark, unregister_benchmark
from .common import SPEC_FILE_SUFFIX
from .errors import SpecFileError
from .loader import load_module_file

__all__ = ["Pack", "load_pack", "register_pack", "ensure_pack_registered",
           "unregister_pack"]


@dataclass(frozen=True)
class Pack:
    """A loaded benchmark pack: its name, directory, and definitions."""

    name: str
    path: str
    definitions: Dict[str, ModuleDefinition]

    @property
    def benchmark_names(self) -> List[str]:
        return list(self.definitions)


def _resolve(directory: str) -> str:
    return os.path.realpath(os.fspath(directory))


def load_pack(directory: str) -> Pack:
    """Parse every ``*.hanoi`` file of a directory into a :class:`Pack`.

    The pack's name is the directory's basename; two files declaring the same
    benchmark name are rejected.
    """
    path = _resolve(directory)
    if not os.path.isdir(path):
        raise SpecFileError("not a directory", str(directory))
    files = sorted(entry for entry in os.listdir(path)
                   if entry.endswith(SPEC_FILE_SUFFIX))
    if not files:
        raise SpecFileError(f"no {SPEC_FILE_SUFFIX} files found", str(directory))
    definitions: Dict[str, ModuleDefinition] = {}
    origins: Dict[str, str] = {}
    for filename in files:
        definition = load_module_file(os.path.join(path, filename))
        if definition.name in definitions:
            raise SpecFileError(
                f"benchmark {definition.name!r} is defined both in "
                f"{origins[definition.name]} and {filename}",
                os.path.join(path, filename))
        definitions[definition.name] = definition
        origins[definition.name] = filename
    return Pack(name=os.path.basename(path), path=path, definitions=definitions)


#: Packs already registered this process, keyed by resolved directory path.
_REGISTERED: Dict[str, Pack] = {}


def register_pack(directory: str) -> Pack:
    """Load a pack and install its benchmarks in the global registry.

    Pack benchmarks register as *fast* (they run under every profile's
    default selection) and under each file's declared group.  Registering the
    same directory twice returns the already-loaded pack.
    """
    path = _resolve(directory)
    if path in _REGISTERED:
        return _REGISTERED[path]
    pack = load_pack(path)
    registered: List[str] = []
    try:
        for name, definition in pack.definitions.items():
            register_benchmark(
                name,
                _factory(definition),
                group=definition.group,
                fast=True,
            )
            registered.append(name)
    except ValueError:
        for name in registered:
            unregister_benchmark(name)
        raise
    _REGISTERED[path] = pack
    return pack


def _factory(definition: ModuleDefinition):
    """A registry factory for an already-loaded (immutable) definition."""
    return lambda: definition


def ensure_pack_registered(directory: str) -> Pack:
    """Idempotently register a pack; the worker-process entry point."""
    return register_pack(directory)


def unregister_pack(directory: str) -> None:
    """Remove a previously registered pack's benchmarks from the registry."""
    path = _resolve(directory)
    pack = _REGISTERED.pop(path, None)
    if pack is None:
        return
    for name in pack.definitions:
        unregister_benchmark(name)
