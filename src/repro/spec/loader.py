"""Loading ``.hanoi`` benchmark definition files into module definitions.

A ``.hanoi`` file mixes object-language declarations (parsed with the
ordinary :mod:`repro.lang` lexer and parser) with benchmark *directives*::

    benchmark "/examples/bounded-stack"   (* optional; defaults to the stem *)
    group examples                        (* optional; defaults to "custom" *)
    description "..."                     (* optional *)

    abstract type t = list                (* required: alias = concrete type *)
    operation empty : t                   (* one per interface operation *)
    operation push : t -> nat -> t
    spec spec : t -> nat -> bool          (* required: name and signature *)
    components size, nat_leq              (* optional synthesis components *)
    helpers size                          (* optional enabling helpers *)

    type list = Nil | Cons of nat * list  (* the module implementation ... *)
    let empty : list = Nil                (* ... ordinary object language *)
    ...

    expected invariant                    (* optional oracle; extends to EOF *)
    let expected (l : list) : bool = ...

Everything the loader rejects - lexical and parse errors, unknown directives,
operations or specifications the source does not define, signatures that never
mention the abstract type, and type errors surfaced from
:mod:`repro.lang.typecheck` - is reported as a
:class:`~repro.spec.errors.SpecFileError` anchored to the offending line.

The module source recorded in the resulting
:class:`~repro.core.module.ModuleDefinition` is the original file text with
directive lines blanked out, so line numbers in later evaluation errors still
match the file the user wrote.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.module import ModuleDefinition, Operation
from ..lang.errors import LangError, LexError, ParseError
from ..lang.lexer import tokenize
from ..lang.parser import Parser
from ..lang.prelude import DEFAULT_SYNTHESIS_COMPONENTS, PRELUDE_SOURCE
from ..lang.program import Program
from ..lang.types import (
    TData,
    Type,
    arrow,
    arrow_args,
    arrow_result,
    mentions_abstract,
    substitute_abstract,
)
from .common import (
    DEFAULT_GROUP,
    DIRECTIVE_KEYWORDS,
    SPEC_FILE_SUFFIX,
    alias_to_abstract,
    data_type_names,
    render_signature,
    signature_mentions_alias,
)
from .errors import SpecFileError

__all__ = ["load_module_file", "load_module_text", "SPEC_FILE_SUFFIX"]


@dataclass
class _Directive:
    """One parsed directive with the line span it occupies in the file."""

    kind: str
    line: int
    end_line: int
    name: Optional[str] = None
    type: Optional[Type] = None
    names: Tuple[str, ...] = ()
    text: Optional[str] = None


@dataclass
class _SpannedDecl:
    """One object-language declaration with its line span."""

    decl: object
    line: int
    end_line: int

    @property
    def name(self) -> str:
        return getattr(self.decl, "name", "<decl>")


class _SpecParser(Parser):
    """The directive-aware parser: object-language declarations are delegated
    to the base :class:`~repro.lang.parser.Parser`, directives are handled
    here."""

    def __init__(self, tokens, path: str):
        super().__init__(tokens)
        self.path = path
        self.directives: List[_Directive] = []
        self.module_decls: List[_SpannedDecl] = []
        self.expected_decls: List[_SpannedDecl] = []
        self.expected_directive: Optional[_Directive] = None

    def _error(self, reason: str, line: int) -> SpecFileError:
        return SpecFileError(reason, self.path, line)

    def _starts_atom(self) -> bool:
        # Application is juxtaposition in the object language, so without this
        # guard a directive line following a ``let`` body would be swallowed
        # as extra application arguments.  Rule: a directive keyword at the
        # start of a line always opens a directive, never an expression atom
        # (parenthesize the rare call to a function named like a directive).
        token = self._peek()
        if (token.kind == "LIDENT" and token.column == 1
                and token.text in DIRECTIVE_KEYWORDS):
            return False
        return super()._starts_atom()

    def _last_line(self) -> int:
        return self._tokens[max(self._pos - 1, 0)].line

    # -- top level ----------------------------------------------------------

    def parse_spec_file(self) -> None:
        while not self._check("EOF"):
            token = self._peek()
            if token.kind == "KEYWORD" and token.text in ("let", "type"):
                decl = self.parse_decl()
                spanned = _SpannedDecl(decl, token.line, self._last_line())
                if self.expected_directive is not None:
                    self.expected_decls.append(spanned)
                else:
                    self.module_decls.append(spanned)
            elif token.kind == "LIDENT" and token.text in DIRECTIVE_KEYWORDS:
                if self.expected_directive is not None:
                    raise self._error(
                        "directives must appear before the 'expected invariant' "
                        "block (which extends to the end of the file)",
                        token.line)
                self._parse_directive()
            elif token.kind == "LIDENT":
                raise self._error(
                    f"unknown directive {token.text!r}; known directives: "
                    + ", ".join(sorted(DIRECTIVE_KEYWORDS)),
                    token.line)
            else:
                raise self._error(
                    f"expected a directive or declaration but found {token.text!r}",
                    token.line)

    # -- directives ---------------------------------------------------------

    def _parse_directive(self) -> None:
        token = self._advance()
        kind = token.text
        if kind == "benchmark":
            value = self._expect_string("benchmark")
            self._record(kind, token.line, text=value)
        elif kind == "group":
            if self._check("STRING"):
                name = self._advance().text
            else:
                name = self._expect("LIDENT").text
            self._record(kind, token.line, name=name)
        elif kind == "description":
            value = self._expect_string("description")
            self._record(kind, token.line, text=value)
        elif kind == "abstract":
            self._expect("KEYWORD", "type")
            alias = self._expect("LIDENT").text
            self._expect("EQUAL")
            concrete = self.parse_type()
            self._record(kind, token.line, name=alias, type=concrete)
        elif kind == "operation":
            name = self._expect("LIDENT").text
            self._expect("COLON")
            signature = self.parse_type()
            self._record(kind, token.line, name=name, type=signature)
        elif kind == "spec":
            name = self._expect("LIDENT").text
            self._expect("COLON")
            signature = self.parse_type()
            self._record(kind, token.line, name=name, type=signature)
        elif kind in ("components", "helpers"):
            names = [self._expect("LIDENT").text]
            while self._match("COMMA"):
                names.append(self._expect("LIDENT").text)
            self._record(kind, token.line, names=tuple(names))
        elif kind == "expected":
            tail = self._expect("LIDENT")
            if tail.text != "invariant":
                raise self._error(
                    f"expected 'expected invariant' but found "
                    f"'expected {tail.text}'", token.line)
            self.expected_directive = self._record(kind, token.line)
        else:  # pragma: no cover - DIRECTIVE_KEYWORDS is exhaustive above
            raise self._error(f"unknown directive {kind!r}", token.line)

    def _expect_string(self, directive: str) -> str:
        token = self._peek()
        if token.kind != "STRING":
            raise self._error(
                f"the '{directive}' directive takes a double-quoted string, "
                f"found {token.text!r}", token.line)
        return self._advance().text

    def _record(self, kind: str, line: int, **fields) -> _Directive:
        directive = _Directive(kind=kind, line=line, end_line=self._last_line(),
                               **fields)
        self.directives.append(directive)
        return directive


def load_module_file(path: str, name: Optional[str] = None) -> ModuleDefinition:
    """Load one ``.hanoi`` benchmark definition file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise SpecFileError(f"cannot read file: {exc.strerror or exc}", str(path))
    stem = os.path.splitext(os.path.basename(path))[0]
    return load_module_text(text, path=str(path), name=name or stem)


def load_module_text(text: str, path: str = "<string>",
                     name: Optional[str] = None) -> ModuleDefinition:
    """Load a benchmark definition from an in-memory string.

    ``name`` is the fallback benchmark name used when the file carries no
    ``benchmark`` directive.
    """
    try:
        parser = _SpecParser(tokenize(text), path)
        parser.parse_spec_file()
    except (LexError, ParseError) as exc:
        raise SpecFileError(str(exc), path, exc.line or None) from exc
    return _build_definition(parser, text, path, name)


# -- assembling and validating the definition -----------------------------------


def _single(parser: _SpecParser, kind: str) -> Optional[_Directive]:
    """The unique directive of a kind, or None; duplicates are an error."""
    found = [d for d in parser.directives if d.kind == kind]
    if len(found) > 1:
        raise SpecFileError(f"duplicate '{kind}' directive "
                            f"(first on line {found[0].line})",
                            parser.path, found[1].line)
    return found[0] if found else None


def _blanked_module_source(text: str, parser: _SpecParser) -> str:
    """The file text with directive lines (and the expected block) blanked.

    Lines are split on ``"\\n"`` only, matching how the lexer counts them -
    ``str.splitlines`` also breaks on carriage returns and would desync the
    blanking from the directive spans for files with ``\\r`` inside strings.

    Everything before the first module declaration is blanked too: only
    directives, comments, and blank lines can appear there, and keeping the
    file-header comment in the module source would make every
    export -> load -> export cycle stack another copy of it on top.
    """
    lines = text.split("\n")
    blank = set()
    for directive in parser.directives:
        blank.update(range(directive.line, directive.end_line + 1))
    if parser.expected_directive is not None:
        blank.update(range(parser.expected_directive.line, len(lines) + 1))
    if parser.module_decls:
        blank.update(range(1, min(d.line for d in parser.module_decls)))
    for spanned in parser.module_decls:
        overlap = blank.intersection(range(spanned.line, spanned.end_line + 1))
        if overlap:
            raise SpecFileError(
                f"directive and declaration {spanned.name!r} share line "
                f"{min(overlap)}; put directives on their own lines",
                parser.path, min(overlap))
    kept = ["" if i + 1 in blank else line for i, line in enumerate(lines)]
    return "\n".join(kept) + "\n"


def _expected_invariant_source(text: str, parser: _SpecParser) -> Optional[str]:
    """The oracle-invariant block: every line from its first declaration on."""
    if parser.expected_directive is None:
        return None
    if not parser.expected_decls:
        raise SpecFileError(
            "'expected invariant' block contains no declarations",
            parser.path, parser.expected_directive.line)
    first = parser.expected_decls[0]
    if first.line <= parser.expected_directive.end_line:
        raise SpecFileError(
            "the expected invariant block must start on its own line",
            parser.path, first.line)
    lines = text.splitlines()
    return "\n".join(lines[first.line - 1:]) + "\n"


def _extend_checked(program: Program, parser: _SpecParser,
                    decls: List[_SpannedDecl]) -> None:
    """Type-check declarations one at a time, anchoring failures.

    A :class:`TypeError_` that already carries a line (the checker anchors
    errors to the enclosing declaration) wins over the span recorded here;
    its ``bare_message`` is used so the position is not rendered twice.
    """
    for spanned in decls:
        try:
            program.extend_declarations([spanned.decl])
        except LangError as exc:
            message = getattr(exc, "bare_message", None) or str(exc)
            line = getattr(exc, "line", None) or spanned.line
            raise SpecFileError(
                f"in declaration {spanned.name!r}: {message}",
                parser.path, line) from exc


def _check_program(parser: _SpecParser) -> Program:
    """The prelude plus the *module* declarations only.

    The expected-invariant block is checked separately, after the interface
    validation: operations, the specification, and synthesis components must
    be defined by the module source itself, not smuggled in via the oracle
    block (which is never loaded into the runnable module).
    """
    program = Program()
    program.extend(PRELUDE_SOURCE)
    _extend_checked(program, parser, parser.module_decls)
    return program


def _validate_known_types(ty: Type, program: Program, parser: _SpecParser,
                          line: int, context: str) -> None:
    for type_name in data_type_names(ty):
        if type_name not in program.types.datatypes:
            raise SpecFileError(
                f"unknown type {type_name!r} in {context}",
                parser.path, line)


def _build_definition(parser: _SpecParser, text: str, path: str,
                      fallback_name: Optional[str]) -> ModuleDefinition:
    program = _check_program(parser)

    abstract = _single(parser, "abstract")
    if abstract is None:
        raise SpecFileError(
            "missing 'abstract type <alias> = <type>' directive", path)
    alias = abstract.name
    concrete_type = abstract.type
    if alias in program.types.datatypes:
        raise SpecFileError(
            f"abstract type alias {alias!r} collides with the data type of "
            f"the same name; pick a name the module does not declare",
            path, abstract.line)
    _validate_known_types(concrete_type, program, parser, abstract.line,
                          "the concrete representation type")

    operations = _build_operations(parser, program, alias, concrete_type)
    spec_name, spec_signature = _build_spec(parser, program, alias, concrete_type)

    components: List[str] = []
    for directive in parser.directives:
        if directive.kind in ("components", "helpers"):
            for component in directive.names:
                if not program.has_global(component):
                    raise SpecFileError(
                        f"unknown synthesis component {component!r}: neither "
                        f"the module source nor the prelude defines it",
                        path, directive.line)
            components.extend(directive.names)
    helpers = tuple(name for directive in parser.directives
                    if directive.kind == "helpers" for name in directive.names)
    synthesis_components = tuple(dict.fromkeys(
        list(DEFAULT_SYNTHESIS_COMPONENTS) + components))

    # Only now, with the interface fully validated against the module alone,
    # type-check the oracle block (it may call module functions).
    _extend_checked(program, parser, parser.expected_decls)

    name_directive = _single(parser, "benchmark")
    group_directive = _single(parser, "group")
    description_directive = _single(parser, "description")

    return ModuleDefinition(
        name=(name_directive.text if name_directive is not None
              else (fallback_name or "<anonymous>")),
        group=group_directive.name if group_directive is not None else DEFAULT_GROUP,
        source=_blanked_module_source(text, parser),
        concrete_type=concrete_type,
        operations=operations,
        spec_name=spec_name,
        spec_signature=spec_signature,
        synthesis_components=synthesis_components,
        helper_functions=helpers,
        expected_invariant=_expected_invariant_source(text, parser),
        description=(description_directive.text
                     if description_directive is not None else ""),
    )


def _build_operations(parser: _SpecParser, program: Program, alias: str,
                      concrete_type: Type) -> Tuple[Operation, ...]:
    directives = [d for d in parser.directives if d.kind == "operation"]
    if not directives:
        raise SpecFileError("no 'operation' directives: a module interface "
                            "needs at least one operation", parser.path)
    seen: Dict[str, int] = {}
    operations: List[Operation] = []
    for directive in directives:
        op_name = directive.name
        if op_name in seen:
            raise SpecFileError(
                f"duplicate operation {op_name!r} "
                f"(first declared on line {seen[op_name]})",
                parser.path, directive.line)
        seen[op_name] = directive.line
        if not signature_mentions_alias(directive.type, alias):
            raise SpecFileError(
                f"signature of operation {op_name!r} does not mention the "
                f"abstract type {alias!r}",
                parser.path, directive.line)
        signature = alias_to_abstract(directive.type, alias)
        _validate_known_types(
            substitute_abstract(signature, concrete_type), program, parser,
            directive.line, f"the signature of operation {op_name!r}")
        if not program.has_global(op_name):
            raise SpecFileError(
                f"unknown operation {op_name!r}: the module source does not "
                f"define it", parser.path, directive.line)
        declared = substitute_abstract(signature, concrete_type)
        actual = program.global_type(op_name)
        if declared != actual:
            raise SpecFileError(
                f"operation {op_name!r} is declared as "
                f"'{render_signature(signature, alias)}' (concretely "
                f"'{declared}') but its definition has type '{actual}'",
                parser.path, directive.line)
        operations.append(Operation(op_name, signature))
    return tuple(operations)


def _build_spec(parser: _SpecParser, program: Program, alias: str,
                concrete_type: Type) -> Tuple[str, Tuple[Type, ...]]:
    directive = _single(parser, "spec")
    if directive is None:
        raise SpecFileError(
            "missing 'spec <name> : <signature>' directive", parser.path)
    spec_name = directive.name
    signature = alias_to_abstract(directive.type, alias)
    args = tuple(arrow_args(signature))
    result = arrow_result(signature)
    if result != TData("bool"):
        raise SpecFileError(
            f"specification {spec_name!r} must return bool, not '{result}'",
            parser.path, directive.line)
    if not args:
        raise SpecFileError(
            f"specification {spec_name!r} takes no arguments; it must "
            f"quantify over at least the abstract type",
            parser.path, directive.line)
    if not any(mentions_abstract(arg) for arg in args):
        raise SpecFileError(
            f"specification {spec_name!r} never takes the abstract type "
            f"{alias!r} as an argument", parser.path, directive.line)
    _validate_known_types(
        substitute_abstract(signature, concrete_type), program, parser,
        directive.line, f"the signature of specification {spec_name!r}")
    if not program.has_global(spec_name):
        raise SpecFileError(
            f"specification {spec_name!r} not found in the module source",
            parser.path, directive.line)
    declared = arrow(*[substitute_abstract(arg, concrete_type) for arg in args],
                     TData("bool"))
    actual = program.global_type(spec_name)
    if declared != actual:
        raise SpecFileError(
            f"specification {spec_name!r} is declared as "
            f"'{render_signature(signature, alias)}' (concretely "
            f"'{declared}') but its definition has type '{actual}'",
            parser.path, directive.line)
    return spec_name, args
