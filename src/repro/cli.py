"""The ``python -m repro`` command-line interface.

Twelve subcommands drive the reproduction:

``run``
    Execute a benchmark sweep - by default the fast subset under the Hanoi
    mode - over a multiprocessing pool, persisting every result to JSONL as it
    completes.  ``--resume`` skips ``(benchmark, mode)`` pairs already present
    in the output file, so an interrupted sweep picks up where it left off.
    ``--pack DIR`` registers a directory of ``.hanoi`` benchmark definition
    files first and tags the stored results with the pack name.

``list``
    Enumerate the registered benchmarks (with group and the paper's reported
    invariant size) and the available inference modes; ``--group`` / ``--fast``
    filter the benchmark table, ``--pack DIR`` includes a benchmark pack.

``infer``
    Load one ``.hanoi`` benchmark definition file and run invariant inference
    on it, printing the inferred invariant.

``export``
    Render registered benchmarks (all 28 by default) as ``.hanoi`` files, one
    per benchmark, so they can be edited and re-run as user scenarios.

``report``
    Re-render the Figure-7-style tables (and optionally CSV) from a stored
    JSONL file, without re-running anything.

``figure8``
    The full mode-comparison sweep of Figure 8: all six modes over the chosen
    benchmarks, parallelised, followed by the per-mode summary table and the
    cumulative completion series.

``fuzz``
    Generate a seed-deterministic corpus of random modules with
    known-by-construction invariants, run each through several inference
    modes under every cache configuration via the parallel runner, and
    cross-check that per-mode outcomes are identical across cache
    configurations and that inferred invariants imply the ground truth.
    Mismatching modules are shrunk to minimal ``.hanoi`` reproducers (see
    docs/fuzzing.md).  ``--check-verifier`` additionally cross-checks the
    abstract proof tier against the bounded tester on every module
    (docs/verification.md); ``--check-persistence`` additionally re-runs
    every module against cold, warm, and corrupted persistent disk-cache
    stores and requires identical outcomes (docs/service.md).

The ``run``, ``infer``, ``figure8``, and ``fuzz`` subcommands accept
``--verifier {enumerative,abstract,ladder}`` to select the verification
backend of the Hanoi loop (docs/verification.md).  ``run`` and ``infer``
also accept ``--cache-dir DIR``: a persistent content-addressed disk cache
that replays unchanged declarations' verification and synthesis work across
processes (docs/service.md).

``serve``
    Run the inference service daemon: a stdlib-only HTTP/JSON API over a job
    queue and worker pool, with the persistent disk-cache tier enabled by
    default, so edited modules re-infer incrementally (docs/service.md).

``submit``
    Submit ``.hanoi`` module files to a running daemon and (by default) wait
    for and print their results.

``jobs``
    List a daemon's jobs, or inspect one job's record, result row, or
    buffered trace events.

``lint``
    Run the static analyzer over ``.hanoi`` module files (or registered
    benchmarks): match exhaustiveness, unreachable branches, unused
    definitions, unprovable termination, unusable synthesis components, and
    statically disproven invariants, each with a stable ``HAN0xx`` code and
    a source-line anchor (see docs/analysis.md).  ``--format json`` emits
    one JSON object per finding.  Exit codes: 0 = clean (warnings without
    ``--werror`` included), 1 = warnings promoted by ``--werror``,
    2 = errors.

``trace``
    Analyze a JSONL trace written with ``--trace``: per-phase time breakdown,
    cache hit-rate tables cross-checked against the stats counters, the
    slowest spans, and an optional Chrome trace-event export (see
    docs/observability.md).

The ``run``, ``infer``, ``figure8``, and ``fuzz`` subcommands all accept
``--trace PATH`` (record every inference event/span to a crash-safe JSONL
file) and ``--live`` (print compact progress lines from the event stream;
with ``--jobs`` > 1, workers stream their events to the parent process).

Examples::

    python -m repro run --jobs 4 --profile quick --output results.jsonl
    python -m repro run --pack my-modules/ --output pack-results.jsonl
    python -m repro run --trace trace.jsonl --live
    python -m repro infer examples/modules/bounded-stack.hanoi
    python -m repro run --verifier ladder --profile quick
    python -m repro lint examples/modules/ --format json --werror
    python -m repro export --out exported/
    python -m repro report results.jsonl --csv results.csv
    python -m repro list --group coq --fast
    python -m repro figure8 --modes hanoi conj-str oneshot --jobs 8
    python -m repro fuzz --seed 0 --count 25 --out fuzz-out/
    python -m repro fuzz --lint --count 50 --out fuzz-out/
    python -m repro fuzz --check-persistence --count 10 --out fuzz-out/
    python -m repro infer examples/modules/bounded-stack.hanoi --cache-dir .hanoi-cache
    python -m repro serve --port 8764 --state-dir serve-state
    python -m repro submit examples/modules/bounded-stack.hanoi --url http://127.0.0.1:8764
    python -m repro jobs --url http://127.0.0.1:8764
    python -m repro lint examples/modules/ --hash
    python -m repro lint --all-builtins
    python -m repro trace trace.jsonl --chrome chrome.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence

from .core.result import InferenceResult
from .obs import analyze as trace_analyze
from .experiments.figure8 import completion_series
from .experiments.parallel import ParallelRunner
from .experiments.report import (
    FIGURE7_HEADERS,
    MODE_SUMMARY_HEADERS,
    figure7_rows,
    format_table,
    group_by_mode,
    mode_summary_rows,
    render_results,
    rows_to_csv,
)
from .experiments.runner import (
    FIGURE8_MODES,
    MODE_DESCRIPTIONS,
    MODES,
    PROFILES,
    execute_tasks,
    expand_tasks,
)
from .experiments.store import ResultStore
from .gen.diff import DEFAULT_FUZZ_MODES
from .spec.errors import SpecFileError
from .suite.registry import (
    BENCHMARKS,
    FAST_BENCHMARKS,
    GROUPS,
    PAPER_RESULTS,
    all_benchmark_names,
)
from .verify.backend import BACKEND_NAMES

__all__ = ["main", "build_parser"]


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every inference-running subcommand."""
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record every inference event/span to a JSONL "
                             "trace file (analyze with `python -m repro trace`)")
    parser.add_argument("--live", action="store_true",
                        help="print compact live progress lines from the "
                             "event stream (workers stream to the parent)")
    # Marks commands that *run* inference: the `trace` subcommand also has an
    # `args.trace` (the file it analyzes) and must not get a sink installed.
    parser.set_defaults(_traced=True)


@contextmanager
def _tracing(args: argparse.Namespace) -> Iterator[None]:
    """Install the sinks a command's ``--trace`` / ``--live`` flags ask for,
    for the duration of the command; close the trace file afterwards.

    Installed process-globally (:func:`~repro.obs.sinks.install_sink`), so
    every inference run the command constructs - in-process or, via the
    parallel runner's event queue, in worker processes - feeds them.
    """
    from .obs.sinks import JsonlTraceSink, LiveRenderer, install_sink, uninstall_sink

    sinks = []
    if not getattr(args, "_traced", False):
        yield
        return
    if getattr(args, "trace", None):
        sinks.append(install_sink(JsonlTraceSink(args.trace)))
    if getattr(args, "live", False):
        sinks.append(install_sink(LiveRenderer()))
    try:
        yield
    finally:
        for sink in sinks:
            uninstall_sink(sink)
            if hasattr(sink, "close"):
                sink.close()


def _add_sweep_arguments(parser: argparse.ArgumentParser, default_output: str) -> None:
    """Flags shared by the sweep-running subcommands (``run`` and ``figure8``)."""
    parser.add_argument("--benchmarks", nargs="*", default=None, metavar="NAME",
                        help="explicit benchmark names (see `python -m repro list`)")
    parser.add_argument("--group", default=None, metavar="GROUP",
                        help="run one benchmark group (vfa, vfa-extended, coq, "
                             "other, or a pack's group)")
    parser.add_argument("--all", action="store_true",
                        help="run all registered benchmarks instead of the fast subset")
    parser.add_argument("--pack", default=None, metavar="DIR",
                        help="register a directory of .hanoi benchmark definition "
                             "files; without other selectors, runs that pack")
    parser.add_argument("--profile", choices=sorted(PROFILES), default="quick",
                        help="verifier bounds / timeout profile (default: quick)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="per-task timeout in seconds (overrides the profile's)")
    parser.add_argument("--no-eval-cache", action="store_true",
                        help="disable cross-iteration verification evaluation "
                             "caching (the ablation; outcomes are identical, "
                             "Hanoi-mode runs are slower)")
    parser.add_argument("--no-pool-cache", action="store_true",
                        help="disable cross-iteration synthesis term-pool "
                             "caching (the ablation; candidate streams are "
                             "identical, synthesis-heavy runs are slower)")
    parser.add_argument("--verifier", choices=BACKEND_NAMES,
                        default="enumerative",
                        help="verification backend for Hanoi-loop modes: the "
                             "paper's bounded enumerative tester (default), "
                             "the static abstract-interpretation tier alone "
                             "(unsound diagnostic mode), or the ladder "
                             "(abstract proofs first, enumeration for the "
                             "rest; see docs/verification.md)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent content-addressed disk cache: "
                             "snapshot the evaluation and pool caches per "
                             "declaration so unchanged operations replay "
                             "across processes (docs/service.md)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: all CPUs; 1 = serial in-process)")
    parser.add_argument("--output", default=default_output, metavar="PATH",
                        help=f"JSONL file results are appended to (default: {default_output})")
    parser.add_argument("--resume", action="store_true",
                        help="skip (benchmark, mode) pairs already present in --output")
    parser.add_argument("--retry-failed", action="store_true",
                        help="with --resume, re-run pairs whose stored status is not "
                             "success (e.g. after raising --timeout)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction harness for 'Data-Driven Inference of "
                    "Representation Invariants' (Miltner et al., PLDI 2020).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", help="run a benchmark sweep in parallel, persisting results to JSONL")
    _add_sweep_arguments(run, default_output="results.jsonl")
    _add_trace_arguments(run)
    run.add_argument("--modes", nargs="*", default=["hanoi"], metavar="MODE",
                     help=f"modes to run (default: hanoi; known: {' '.join(sorted(MODES))})")
    run.set_defaults(func=_cmd_run)

    lst = subparsers.add_parser(
        "list", help="list registered benchmarks and inference modes")
    lst.add_argument("--benchmarks", action="store_true", help="list only benchmarks")
    lst.add_argument("--modes", action="store_true", help="list only modes")
    lst.add_argument("--group", default=None, metavar="GROUP",
                     help="only benchmarks of one group")
    lst.add_argument("--fast", action="store_true",
                     help="only benchmarks of the fast (CI) subset")
    lst.add_argument("--pack", default=None, metavar="DIR",
                     help="also list a .hanoi benchmark pack's entries")
    lst.set_defaults(func=_cmd_list)

    infer = subparsers.add_parser(
        "infer", help="run invariant inference on one .hanoi definition file")
    infer.add_argument("file", metavar="FILE.hanoi",
                       help="benchmark definition file (see docs/format.md)")
    infer.add_argument("--mode", choices=sorted(MODES), default="hanoi",
                       help="inference mode (default: hanoi)")
    infer.add_argument("--profile", choices=sorted(PROFILES), default="quick",
                       help="verifier bounds / timeout profile (default: quick)")
    infer.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="timeout in seconds (overrides the profile's)")
    infer.add_argument("--no-eval-cache", action="store_true",
                       help="disable cross-iteration verification evaluation caching")
    infer.add_argument("--no-pool-cache", action="store_true",
                       help="disable cross-iteration synthesis term-pool caching")
    infer.add_argument("--verifier", choices=BACKEND_NAMES,
                       default="enumerative",
                       help="verification backend (default: enumerative; "
                            "see docs/verification.md)")
    infer.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent content-addressed disk cache: a "
                            "second run (or a run after an edit) replays "
                            "unchanged declarations' work from disk "
                            "(docs/service.md)")
    _add_trace_arguments(infer)
    infer.set_defaults(func=_cmd_infer)

    export = subparsers.add_parser(
        "export", help="render registered benchmarks as .hanoi definition files")
    export.add_argument("--benchmark", default=None, metavar="NAME",
                        help="export one benchmark (default: all)")
    export.add_argument("--out", default=None, metavar="DIR",
                        help="directory to write one file per benchmark; "
                             "without it, a single --benchmark prints to stdout")
    export.set_defaults(func=_cmd_export)

    report = subparsers.add_parser(
        "report", help="render Figure-7-style tables from a stored JSONL file")
    report.add_argument("results", metavar="RESULTS.jsonl",
                        help="JSONL file written by `run` / `figure8`")
    report.add_argument("--csv", default=None, metavar="PATH",
                        help="also write the per-benchmark rows as CSV")
    report.set_defaults(func=_cmd_report)

    figure8 = subparsers.add_parser(
        "figure8", help="the six-mode comparison sweep of the paper's Figure 8")
    _add_sweep_arguments(figure8, default_output="figure8.jsonl")
    _add_trace_arguments(figure8)
    figure8.add_argument("--modes", nargs="*", default=None, metavar="MODE",
                         help=f"modes to compare (default: {' '.join(FIGURE8_MODES)})")
    figure8.set_defaults(func=_cmd_figure8)

    fuzz = subparsers.add_parser(
        "fuzz", help="differential-fuzz generated modules across modes and "
                     "cache configurations")
    fuzz.add_argument("--seed", type=int, default=0, metavar="N",
                      help="base corpus seed (default: 0); the same seed and "
                           "count always produce the same corpus")
    fuzz.add_argument("--count", type=int, default=25, metavar="N",
                      help="number of modules to generate (default: 25)")
    fuzz.add_argument("--modes", nargs="*", default=None, metavar="MODE",
                      help="modes to cross-check (default: "
                           f"{' '.join(DEFAULT_FUZZ_MODES)})")
    fuzz.add_argument("--out", default="fuzz-out", metavar="DIR",
                      help="output directory: corpus/ (the generated .hanoi "
                           "files), results.jsonl, reproducers/ (default: "
                           "fuzz-out)")
    fuzz.add_argument("--shrink", dest="shrink", action="store_true",
                      default=True,
                      help="shrink mismatching modules to minimal .hanoi "
                           "reproducers (default)")
    fuzz.add_argument("--no-shrink", dest="shrink", action="store_false",
                      help="report mismatches without shrinking them")
    fuzz.add_argument("--no-oracle", action="store_true",
                      help="skip the ground-truth invariant checks (only "
                           "compare cache configurations)")
    fuzz.add_argument("--lint", action="store_true",
                      help="lint the generated corpus instead of running the "
                           "differential sweep: generated modules must be "
                           "lint-clean; dirty ones are shrunk to minimal "
                           ".hanoi reproducers")
    fuzz.add_argument("--verifier", choices=BACKEND_NAMES,
                      default="enumerative",
                      help="verification backend for the sweep's Hanoi-loop "
                           "modes (default: enumerative)")
    fuzz.add_argument("--check-verifier", action="store_true",
                      help="additionally cross-check the abstract proof tier "
                           "on every module: ladder outcomes must equal "
                           "enumerative ones, and no statically proven "
                           "obligation may admit an enumerated "
                           "counterexample (docs/verification.md)")
    fuzz.add_argument("--check-persistence", action="store_true",
                      help="additionally re-run every module's Hanoi modes "
                           "against cold, warm, and corrupted persistent "
                           "disk-cache stores; all outcomes must equal the "
                           "persistence-free run (docs/service.md)")
    fuzz.add_argument("--profile", choices=sorted(PROFILES), default="quick",
                      help="verifier bounds / timeout profile (default: quick)")
    fuzz.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                      help="per-task timeout in seconds (overrides the profile's)")
    fuzz.add_argument("--jobs", type=int, default=None, metavar="N",
                      help="worker processes (default: all CPUs; 1 = serial "
                           "in-process)")
    fuzz.add_argument("--resume", action="store_true",
                      help="skip (benchmark, mode, variant) cells already in "
                           "the output store")
    _add_trace_arguments(fuzz)
    fuzz.set_defaults(func=_cmd_fuzz)

    serve = subparsers.add_parser(
        "serve", help="run the inference service daemon: HTTP/JSON job queue "
                      "with a persistent disk-cache tier (docs/service.md)")
    serve.add_argument("--host", default="127.0.0.1", metavar="HOST",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8764, metavar="PORT",
                       help="bind port (default: 8764; 0 = ephemeral)")
    serve.add_argument("--state-dir", default="serve-state", metavar="DIR",
                       help="service state: results.jsonl, modules/, cache/ "
                            "(default: serve-state)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent disk-cache location (default: "
                            "STATE_DIR/cache)")
    serve.add_argument("--no-persistence", action="store_true",
                       help="disable the persistent disk-cache tier")
    serve.add_argument("--jobs", type=int, default=2, metavar="N",
                       help="concurrent worker processes (default: 2)")
    serve.add_argument("--max-retries", type=int, default=1, metavar="N",
                       help="re-queue a job whose worker crashed up to N "
                            "times (default: 1)")
    serve.add_argument("--profile", choices=sorted(PROFILES), default="quick",
                       help="verifier bounds / timeout profile (default: quick)")
    serve.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="per-job timeout in seconds (overrides the profile's)")
    serve.add_argument("--verifier", choices=BACKEND_NAMES,
                       default="enumerative",
                       help="verification backend (default: enumerative)")
    serve.set_defaults(func=_cmd_serve)

    submit = subparsers.add_parser(
        "submit", help="submit .hanoi modules to a running daemon and wait "
                       "for results")
    submit.add_argument("files", nargs="+", metavar="FILE.hanoi",
                        help=".hanoi module definition files")
    submit.add_argument("--url", default="http://127.0.0.1:8764", metavar="URL",
                        help="daemon base URL (default: http://127.0.0.1:8764)")
    submit.add_argument("--mode", choices=sorted(MODES), default="hanoi",
                        help="inference mode (default: hanoi)")
    submit.add_argument("--force", action="store_true",
                        help="re-run even when the store already has a result "
                             "for this exact module content")
    submit.add_argument("--no-wait", dest="wait", action="store_false",
                        default=True,
                        help="enqueue and print job ids without waiting")
    submit.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="max seconds to wait per job (default: forever)")
    submit.set_defaults(func=_cmd_submit)

    jobs = subparsers.add_parser(
        "jobs", help="list a daemon's jobs, or inspect one job")
    jobs.add_argument("job_id", nargs="?", default=None, metavar="JOB",
                      help="job id; omitted = list all jobs")
    jobs.add_argument("--url", default="http://127.0.0.1:8764", metavar="URL",
                      help="daemon base URL (default: http://127.0.0.1:8764)")
    jobs.add_argument("--result", action="store_true",
                      help="print the job's stored result row (JSON)")
    jobs.add_argument("--events", action="store_true",
                      help="print the job's buffered trace events (JSONL)")
    jobs.add_argument("--health", action="store_true",
                      help="print the daemon's health record instead")
    jobs.set_defaults(func=_cmd_jobs)

    lint = subparsers.add_parser(
        "lint", help="run the static analyzer over .hanoi files or "
                     "registered benchmarks (docs/analysis.md)")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help=".hanoi files, or directories scanned for *.hanoi")
    lint.add_argument("--benchmark", action="append", default=None,
                      metavar="NAME",
                      help="lint one registered benchmark (repeatable)")
    lint.add_argument("--all-builtins", action="store_true",
                      help="lint every registered benchmark")
    lint.add_argument("--hash", action="store_true",
                      help="also print each module's canonical content hash "
                           "(the evaluation/pool cache content key)")
    lint.add_argument("--format", choices=("human", "json"), default="human",
                      help="output format: the human path:line renderer "
                           "(default) or one JSON object per finding "
                           "(path, line, code, severity, decl, message)")
    lint.add_argument("--werror", action="store_true",
                      help="exit 1 when any module has warning-severity "
                           "findings (errors always exit 2)")
    _add_trace_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    trace = subparsers.add_parser(
        "trace", help="analyze a JSONL trace written with --trace "
                      "(phase breakdown, cache hit rates, Chrome export)")
    trace_analyze.add_arguments(trace)
    trace.set_defaults(func=_cmd_trace)

    return parser


# -- shared sweep machinery ------------------------------------------------------


def _register_pack(directory: str):
    """Load and register a ``--pack`` directory, exiting with a diagnostic
    (not a traceback) when a file in it is malformed."""
    from .spec.pack import register_pack

    try:
        return register_pack(directory)
    except SpecFileError as exc:
        raise SystemExit(f"error loading pack: {exc}")
    except ValueError as exc:
        # e.g. a pack of exported built-ins clashing with the registry.
        raise SystemExit(f"error registering pack: {exc}; give the files "
                         f"their own names with a `benchmark \"...\"` directive")


def _validate_group(group: str) -> None:
    if group not in GROUPS:
        raise SystemExit(f"unknown group {group!r}; known: {', '.join(sorted(GROUPS))}")


def _select_benchmarks(args: argparse.Namespace, pack=None) -> List[str]:
    if args.benchmarks:
        unknown = [name for name in args.benchmarks if name not in BENCHMARKS]
        if unknown:
            raise SystemExit(f"unknown benchmark(s): {', '.join(unknown)} "
                             f"(see `python -m repro list --benchmarks`)")
        return list(args.benchmarks)
    if args.group:
        _validate_group(args.group)
        return list(GROUPS[args.group])
    if args.all:
        # Includes the pack's benchmarks: they are registered by now.
        return all_benchmark_names()
    if pack is not None:
        # A pack with no other selector means: run exactly that pack
        # (--profile only sets bounds/timeouts; it is not a selector).
        return pack.benchmark_names
    if args.profile == "paper":
        return all_benchmark_names()
    return list(FAST_BENCHMARKS)


def _run_sweep(args: argparse.Namespace, modes: Sequence[str]) -> List[InferenceResult]:
    """Expand, filter (resume), execute, and persist one sweep; return the
    result set recorded in the output store for this sweep's pairs."""
    pack = _register_pack(args.pack) if args.pack else None
    names = _select_benchmarks(args, pack=pack)
    profile = PROFILES[args.profile]
    # Only override the profile's timeout when one was given explicitly;
    # profile() keeps the default (quick: 60 s, paper: 1800 s).
    config = profile() if args.timeout is None else profile(args.timeout)
    if args.no_eval_cache:
        config = config.without_evaluation_caching()
    if args.no_pool_cache:
        config = config.without_synthesis_evaluation_caching()
    config = config.with_verifier_backend(args.verifier)
    if args.cache_dir:
        config = config.with_cache_dir(args.cache_dir)
    tasks = expand_tasks(names, modes=list(modes), config=config,
                         pack=pack.path if pack is not None else None,
                         pack_benchmarks=pack.benchmark_names if pack is not None else None,
                         pack_name=pack.name if pack is not None else None)
    sweep_keys = {task.resume_key for task in tasks}

    store = ResultStore(
        args.output,
        pack=pack.name if pack is not None else None,
        pack_benchmarks=pack.benchmark_names if pack is not None else None)
    if args.resume:
        if args.retry_failed:
            completed = {(r.benchmark, r.mode, r.pack, r.variant)
                         for r in store.load() if r.succeeded}
        else:
            completed = store.completed_keys()
        remaining = [task for task in tasks if task.resume_key not in completed]
        skipped = len(tasks) - len(remaining)
        if skipped:
            print(f"resume: skipping {skipped} completed pair(s) found in {args.output}")
        tasks = remaining

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    print(f"running {len(tasks)} task(s) "
          f"({len(names)} benchmark(s) x {len(modes)} mode(s)) "
          f"with profile {args.profile!r}, {jobs} worker(s); "
          f"results -> {args.output}")

    def progress(result: InferenceResult) -> None:
        size = result.invariant_size if result.invariant_size is not None else "-"
        print(f"  [{result.mode:17s}] {result.benchmark:45s} {result.status:18s} "
              f"size={size} time={result.stats.total_time:.1f}s", flush=True)

    if tasks:
        if jobs == 1:
            execute_tasks(tasks, progress=progress, store=store)
        else:
            ParallelRunner(jobs=jobs).run(tasks, progress=progress, store=store)

    # Report only this sweep's pairs: the store may also hold rows from
    # earlier sweeps with different benchmarks/modes (or a same-named pack
    # benchmark) written to the same file.
    return [result for result in store.load()
            if (result.benchmark, result.mode, result.pack, result.variant)
            in sweep_keys]


# -- subcommands -----------------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    if not args.modes:
        raise SystemExit("--modes needs at least one mode (see `python -m repro list --modes`)")
    for mode in args.modes:
        if mode not in MODES:
            raise SystemExit(f"unknown mode {mode!r} (see `python -m repro list --modes`)")
    results = _run_sweep(args, modes=args.modes)
    print()
    print(render_results(results))
    solved = sum(1 for r in results if r.succeeded)
    print(f"solved {solved} / {len(results)}; results persisted to {args.output}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    pack = _register_pack(args.pack) if args.pack else None
    show_benchmarks = args.benchmarks or not args.modes
    # Benchmark filters imply a benchmark-focused listing; --modes still
    # forces the mode table.
    show_modes = args.modes or (not args.benchmarks
                                and not (args.group or args.fast))

    if show_benchmarks:
        if args.group:
            _validate_group(args.group)
        pack_names = set(pack.benchmark_names) if pack is not None else set()
        rows = []
        for group, names in GROUPS.items():
            if args.group and group != args.group:
                continue
            for name in names:
                if args.fast and name not in FAST_BENCHMARKS:
                    continue
                # None means the paper timed out; absence (pack benchmarks)
                # means the paper never ran it at all.
                paper = PAPER_RESULTS.get(name, "")
                fast = "yes" if name in FAST_BENCHMARKS else ""
                row = [name, group, paper, fast]
                if pack is not None:
                    row.append(pack.name if name in pack_names else "")
                rows.append(row)
        headers = ["Name", "Group", "Paper", "Fast subset"]
        if pack is not None:
            headers.append("Pack")
        print(f"{len(rows)} of {len(BENCHMARKS)} registered benchmarks; "
              "'Paper' is Figure 7's invariant size, t/o = 30-minute timeout:")
        print(format_table(headers, rows))
    if show_benchmarks and show_modes:
        print()
    if show_modes:
        print(f"{len(MODES)} modes:")
        print(format_table(
            ["Mode", "Figure 8", "Description"],
            [[mode, "yes" if mode in FIGURE8_MODES else "", MODE_DESCRIPTIONS.get(mode, "")]
             for mode in MODES]))
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    from .experiments.runner import run_module
    from .spec.loader import load_module_file

    try:
        definition = load_module_file(args.file)
    except SpecFileError as exc:
        raise SystemExit(f"error: {exc}")

    profile = PROFILES[args.profile]
    config = profile() if args.timeout is None else profile(args.timeout)
    if args.no_eval_cache:
        config = config.without_evaluation_caching()
    if args.no_pool_cache:
        config = config.without_synthesis_evaluation_caching()
    config = config.with_verifier_backend(args.verifier)
    if args.cache_dir:
        config = config.with_cache_dir(args.cache_dir)
    operations = ", ".join(op.name for op in definition.operations)
    print(f"loaded {definition.name} ({definition.group}): "
          f"{len(definition.operations)} operation(s): {operations}")
    print(f"running mode {args.mode!r} with profile {args.profile!r} ...")

    result = run_module(definition, mode=args.mode, config=config)
    size = result.invariant_size if result.invariant_size is not None else "-"
    print(f"status={result.status} size={size} "
          f"iterations={result.iterations} time={result.stats.total_time:.1f}s")
    if args.cache_dir:
        print(f"persistent cache: {result.stats.disk_cache_hits} hit(s), "
              f"{result.stats.disk_cache_misses} miss(es) in {args.cache_dir}")
    if result.invariant is not None:
        print()
        print(result.render_invariant())
    elif result.message:
        print(result.message)
    return 0 if result.succeeded else 1


def _cmd_export(args: argparse.Namespace) -> int:
    from .spec.export import export_all, export_benchmark

    if args.benchmark is not None and args.benchmark not in BENCHMARKS:
        raise SystemExit(f"unknown benchmark {args.benchmark!r} "
                         f"(see `python -m repro list --benchmarks`)")
    if args.out is None:
        if args.benchmark is None:
            raise SystemExit("exporting every benchmark needs --out DIR "
                             "(or pick one with --benchmark NAME)")
        print(export_benchmark(args.benchmark), end="")
        return 0
    names = [args.benchmark] if args.benchmark is not None else None
    written = export_all(args.out, names=names)
    for name, path in written:
        print(f"wrote {path}  ({name})")
    print(f"exported {len(written)} benchmark(s) to {args.out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.results)
    if not store.exists():
        raise SystemExit(f"no such results file: {args.results}")
    results = store.load()
    if not results:
        raise SystemExit(f"{args.results} contains no results")
    print(render_results(results))
    solved = sum(1 for r in results if r.succeeded)
    print(f"solved {solved} / {len(results)} (from {args.results})")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(rows_to_csv(FIGURE7_HEADERS + ["Mode"],
                                     [row + [result.mode] for row, result
                                      in zip(figure7_rows(results), results)]))
        print(f"wrote {args.csv}")
    return 0


def _cmd_figure8(args: argparse.Namespace) -> int:
    modes = args.modes if args.modes else list(FIGURE8_MODES)
    for mode in modes:
        if mode not in MODES:
            raise SystemExit(f"unknown mode {mode!r} (see `python -m repro list --modes`)")
    results = _run_sweep(args, modes=modes)
    grouped = group_by_mode(results)
    grouped = {mode: grouped.get(mode, []) for mode in modes}

    print("\nPer-mode summary (Figure 8):")
    print(format_table(MODE_SUMMARY_HEADERS, mode_summary_rows(grouped)))

    print("\nCumulative completion series (seconds at which each solve lands):")
    for mode, times in completion_series(grouped).items():
        rendered = ", ".join(f"{t:.1f}" for t in times) or "(none)"
        print(f"  {mode:18s}: {rendered}")
    print(f"\nresults persisted to {args.output}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    return trace_analyze.run(args)


def _lint_paths(arg_paths: Sequence[str]) -> List[str]:
    """Expand the ``lint`` positional arguments: directories become their
    sorted ``*.hanoi`` entries, files are taken as given."""
    import glob as _glob

    paths: List[str] = []
    for path in arg_paths:
        if os.path.isdir(path):
            entries = sorted(_glob.glob(os.path.join(path, "*.hanoi")))
            if not entries:
                raise SystemExit(f"no .hanoi files in directory {path!r}")
            paths.extend(entries)
        elif os.path.exists(path):
            paths.append(path)
        else:
            raise SystemExit(f"no such file or directory: {path!r}")
    return paths


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.lint import analyze_definition, analyze_file
    from .obs.sinks import emitter_for_run
    from .suite.registry import get_benchmark

    paths = _lint_paths(args.paths)
    names = list(args.benchmark or [])
    if args.all_builtins:
        names.extend(n for n in all_benchmark_names() if n not in names)
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        raise SystemExit(f"unknown benchmark(s): {', '.join(unknown)} "
                         f"(see `python -m repro list --benchmarks`)")
    if not paths and not names:
        raise SystemExit("nothing to lint: give PATHs, --benchmark NAME, "
                         "or --all-builtins")

    counts = {"clean": 0, "warned": 0, "errored": 0}
    for path in paths:
        try:
            report = analyze_file(path, emitter=emitter_for_run(f"lint/{path}"))
        except SpecFileError as exc:
            if args.format == "json":
                print(json.dumps({"path": exc.path, "line": exc.line or 1,
                                  "code": "HAN000", "severity": "error",
                                  "decl": None, "message": exc.reason},
                                 sort_keys=True))
            else:
                print(f"{exc.path}:{exc.line or 1}: HAN000 error: {exc.reason}")
            counts["errored"] += 1
            continue
        _print_lint_report(report, args, counts)
    for name in names:
        report = analyze_definition(get_benchmark(name), path=name,
                                    emitter=emitter_for_run(f"lint/{name}"))
        _print_lint_report(report, args, counts)

    total = sum(counts.values())
    if args.format != "json":
        print(f"linted {total} module(s): {counts['clean']} clean, "
              f"{counts['warned']} with warnings, "
              f"{counts['errored']} with errors")
    # The exit-code contract (docs/analysis.md): 0 = clean (or warnings
    # without --werror), 1 = warnings promoted by --werror, 2 = errors.
    if counts["errored"]:
        return 2
    if counts["warned"] and args.werror:
        return 1
    return 0


def _print_lint_report(report, args: argparse.Namespace, counts) -> None:
    for diagnostic in report.diagnostics:
        if args.format == "json":
            print(json.dumps({"path": diagnostic.path, "line": diagnostic.line,
                              "code": diagnostic.code,
                              "severity": diagnostic.severity,
                              "decl": diagnostic.decl,
                              "message": diagnostic.message}, sort_keys=True))
        else:
            print(diagnostic.render())
    worst = report.worst
    if worst == "error":
        counts["errored"] += 1
    elif worst == "warning":
        counts["warned"] += 1
    else:
        if args.format != "json":
            suffix = f"  [{report.content_hash[:12]}]" if args.hash else ""
            print(f"{report.path}: ok{suffix}")
        counts["clean"] += 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .experiments.runner import ExperimentTask
    from .gen.diff import VARIANT_NAMES, compare_stored, fuzz_module, variant_config
    from .gen.modgen import generate_corpus, write_corpus
    from .gen.shrink import shrink_module, write_reproducer

    modes = args.modes if args.modes else list(DEFAULT_FUZZ_MODES)
    for mode in modes:
        if mode not in MODES:
            raise SystemExit(f"unknown mode {mode!r} (see `python -m repro list --modes`)")
    if args.count < 1:
        raise SystemExit("--count must be at least 1")

    corpus = generate_corpus(args.seed, args.count)
    corpus_dir = os.path.join(args.out, "corpus")
    write_corpus(corpus, corpus_dir)
    print(f"generated {len(corpus)} module(s) (seed {args.seed}) -> {corpus_dir}")
    if args.lint:
        return _fuzz_lint(corpus, args)
    pack = _register_pack(corpus_dir)
    definitions = {module.name: module.definition for module in corpus}

    profile = PROFILES[args.profile]
    config = profile() if args.timeout is None else profile(args.timeout)
    config = config.with_verifier_backend(args.verifier)
    tasks = [ExperimentTask(benchmark=name, mode=mode,
                            config=variant_config(config, variant),
                            pack=pack.path, pack_name=pack.name, variant=variant)
             for mode in modes for name in pack.benchmark_names
             for variant in VARIANT_NAMES]
    sweep_keys = {task.resume_key for task in tasks}

    output = os.path.join(args.out, "results.jsonl")
    store = ResultStore(output, pack=pack.name,
                        pack_benchmarks=pack.benchmark_names)
    if args.resume:
        completed = store.completed_keys()
        remaining = [task for task in tasks if task.resume_key not in completed]
        skipped = len(tasks) - len(remaining)
        if skipped:
            print(f"resume: skipping {skipped} completed cell(s) found in {output}")
        tasks = remaining

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    print(f"running {len(tasks)} task(s) ({len(corpus)} module(s) x "
          f"{len(modes)} mode(s) x {len(VARIANT_NAMES)} cache variant(s)) "
          f"with profile {args.profile!r}, {jobs} worker(s); results -> {output}")

    def progress(result: InferenceResult) -> None:
        print(f"  [{result.mode:17s}] {result.benchmark:30s} "
              f"{result.variant or '-':9s} {result.status:18s} "
              f"time={result.stats.total_time:.1f}s", flush=True)

    if tasks:
        if jobs == 1:
            execute_tasks(tasks, progress=progress, store=store)
        else:
            ParallelRunner(jobs=jobs).run(tasks, progress=progress, store=store)

    results = [result for result in store.load()
               if (result.benchmark, result.mode, result.pack, result.variant)
               in sweep_keys]
    report = compare_stored(results, definitions, modes=modes,
                            check_oracle=not args.no_oracle, config=config)
    if args.check_verifier:
        from .gen.diff import (verifier_backend_mismatches,
                               verifier_soundness_mismatches)

        print("cross-checking the abstract proof tier "
              f"({len(definitions)} module(s)) ...")
        for definition in definitions.values():
            backend = verifier_backend_mismatches(definition, modes=modes,
                                                  config=config)
            report.mismatches.extend(backend)
            report.runs += 2 * sum(1 for m in modes if m.startswith("hanoi"))
            report.mismatches.extend(
                verifier_soundness_mismatches(definition, config=config))
    if args.check_persistence:
        from .gen.diff import persistent_cache_mismatches

        print("cross-checking the persistent disk-cache tier "
              f"({len(definitions)} module(s)) ...")
        for definition in definitions.values():
            report.mismatches.extend(
                persistent_cache_mismatches(definition, modes=modes,
                                            config=config))
            report.runs += 4 * sum(1 for m in modes if m.startswith("hanoi"))
    print()
    print(report.summary())
    for failure in report.oracle_failures:
        print(f"  oracle: {failure.benchmark} [{failure.mode}/{failure.variant}]: "
              f"{failure.reason}")
    for mismatch in report.mismatches:
        print()
        print(mismatch.describe())

    if report.mismatches and args.shrink:
        reproducer_dir = os.path.join(args.out, "reproducers")
        shrunk = set()
        for mismatch in report.mismatches:
            if mismatch.benchmark in shrunk:
                continue
            shrunk.add(mismatch.benchmark)
            definition = definitions[mismatch.benchmark]

            def still_fails(candidate, _mode=mismatch.mode):
                rerun = fuzz_module(candidate, modes=(_mode,), config=config,
                                    require_success=(), check_oracle=False)
                return bool(rerun.mismatches)

            try:
                minimal = shrink_module(definition, still_fails)
            except ValueError as exc:
                # A store-only mismatch that does not reproduce in-process
                # (e.g. a flaky timeout); report it, keep the full module.
                print(f"  shrink: {mismatch.benchmark}: {exc}")
                minimal = definition
            path = write_reproducer(minimal, reproducer_dir)
            print(f"  reproducer: {path} "
                  f"({len(minimal.operations)} operation(s), "
                  f"{len(minimal.source.strip().splitlines())} source line(s))")

    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve.api import make_server
    from .serve.jobs import JobScheduler

    profile = PROFILES[args.profile]
    config = profile() if args.timeout is None else profile(args.timeout)
    config = config.with_verifier_backend(args.verifier)
    # None -> the scheduler's default (STATE_DIR/cache); "" -> disabled.
    cache_dir = "" if args.no_persistence else args.cache_dir
    scheduler = JobScheduler(args.state_dir, config=config, jobs=args.jobs,
                             max_retries=args.max_retries, cache_dir=cache_dir)
    server = make_server(args.host, args.port, scheduler)
    host, port = server.server_address[:2]
    persistence = scheduler.config.cache_dir or "disabled"
    print(f"serving on http://{host}:{port} "
          f"(state: {scheduler.state_dir}; persistent cache: {persistence})",
          flush=True)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:  # pragma: no cover - interactive interrupt
        print("\nshutting down ...", file=sys.stderr)
    finally:
        server.server_close()
        scheduler.close()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .serve.api import (ServiceError, fetch_result, submit_module,
                            wait_for_job)

    exit_code = 0
    submitted = []
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise SystemExit(f"error reading {path}: {exc}")
        try:
            job = submit_module(args.url, text, mode=args.mode,
                                force=args.force)
        except ServiceError as exc:
            print(f"{path}: rejected: {exc}")
            exit_code = 1
            continue
        except OSError as exc:
            raise SystemExit(f"error contacting {args.url}: {exc} "
                             f"(is `python -m repro serve` running?)")
        dedup = " [deduplicated]" if job.get("deduplicated") else ""
        print(f"{path}: job {job['id']} "
              f"({job['benchmark']}, mode {job['mode']}){dedup}")
        submitted.append((path, job))
    if not args.wait:
        return exit_code

    for path, job in submitted:
        try:
            if job["state"] not in ("done", "failed"):
                job = wait_for_job(args.url, job["id"], timeout=args.timeout)
            if job["state"] == "failed":
                print(f"{path}: failed: {job.get('message') or '(no message)'}")
                exit_code = 1
                continue
            row = fetch_result(args.url, job["id"])
        except ServiceError as exc:
            print(f"{path}: {exc}")
            exit_code = 1
            continue
        stats = row.get("stats") or {}
        invariant = row.get("invariant") or {}
        size = invariant.get("size")
        print(f"{path}: {row.get('status')} "
              f"size={size if size is not None else '-'} "
              f"iterations={row.get('iterations')} "
              f"disk-cache hits={stats.get('disk_cache_hits', 0)} "
              f"misses={stats.get('disk_cache_misses', 0)}")
        if invariant.get("rendered"):
            print(invariant["rendered"])
        elif row.get("message"):
            print(f"  {row['message']}")
        if row.get("status") != "success":
            exit_code = 1
    return exit_code


def _cmd_jobs(args: argparse.Namespace) -> int:
    from .experiments.report import format_table
    from .serve.api import (ServiceError, fetch_events, fetch_health,
                            fetch_job, fetch_jobs, fetch_result)

    try:
        if args.health:
            print(json.dumps(fetch_health(args.url), indent=2, sort_keys=True))
            return 0
        if args.job_id is None:
            rows = fetch_jobs(args.url)
            if not rows:
                print("no jobs")
                return 0
            print(format_table(
                ["Job", "Benchmark", "Mode", "State", "Status", "Dedup"],
                [[job["id"], job["benchmark"], job["mode"], job["state"],
                  job.get("status") or "-",
                  "yes" if job.get("deduplicated") else ""]
                 for job in rows]))
            return 0
        if args.result:
            print(json.dumps(fetch_result(args.url, args.job_id),
                             indent=2, sort_keys=True))
            return 0
        if args.events:
            payload = fetch_events(args.url, args.job_id)
            for record in payload["records"]:
                print(json.dumps(record, sort_keys=True))
            return 0
        print(json.dumps(fetch_job(args.url, args.job_id),
                         indent=2, sort_keys=True))
        return 0
    except ServiceError as exc:
        raise SystemExit(f"error: {exc}")
    except OSError as exc:
        raise SystemExit(f"error contacting {args.url}: {exc} "
                         f"(is `python -m repro serve` running?)")


def _fuzz_lint(corpus, args: argparse.Namespace) -> int:
    """The ``fuzz --lint`` stage: every generated module must be lint-clean.

    Generated modules carry known-by-construction invariants, so an analyzer
    warning on one is an analyzer bug (or a generator bug); the offending
    module is shrunk to a minimal ``.hanoi`` reproducer that still triggers
    one of the same diagnostic codes."""
    from .analysis.lint import analyze_definition
    from .gen.shrink import shrink_module, write_reproducer

    dirty = []
    for module in corpus:
        report = analyze_definition(module.definition, path=module.name)
        if report.ok:
            continue
        dirty.append((module, report))
        for diagnostic in report.diagnostics:
            print(diagnostic.render())
    print(f"linted {len(corpus)} generated module(s): "
          f"{len(corpus) - len(dirty)} clean, {len(dirty)} with warnings")
    if not dirty:
        return 0

    if args.shrink:
        reproducer_dir = os.path.join(args.out, "reproducers")
        for module, report in dirty:
            codes = {d.code for d in report.diagnostics if d.rank >= 1}

            def still_warns(candidate, _codes=codes):
                rerun = analyze_definition(candidate)
                return any(d.code in _codes and d.rank >= 1
                           for d in rerun.diagnostics)

            try:
                minimal = shrink_module(module.definition, still_warns)
            except ValueError as exc:
                print(f"  shrink: {module.name}: {exc}")
                minimal = module.definition
            path = write_reproducer(minimal, reproducer_dir)
            print(f"  reproducer: {path} (codes: {', '.join(sorted(codes))})")
    return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        with _tracing(args):
            return args.func(args)
    except KeyboardInterrupt:  # pragma: no cover - interactive interrupt
        print("\ninterrupted; completed results are persisted and resumable "
              "with --resume", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`); redirect the
        # remaining output to devnull so the interpreter's shutdown flush
        # does not raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
