"""The benchmark registry: all 28 verification problems of Section 5.1.

Benchmarks are registered by the exact names used in the paper's Figure 7.
Each registry entry is a zero-argument factory returning a fresh
:class:`~repro.core.module.ModuleDefinition`, so callers can freely mutate or
instantiate without sharing state.

Group sizes match the paper: VFA (5), VFAExt (3), Coq (14), Other (6).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..core.module import ModuleDefinition
from . import heaps, listsets, other, tables, trees

__all__ = [
    "BENCHMARKS",
    "GROUPS",
    "FAST_BENCHMARKS",
    "PAPER_RESULTS",
    "all_benchmark_names",
    "get_benchmark",
    "benchmarks_in_group",
    "fast_benchmarks",
    "register_benchmark",
    "unregister_benchmark",
    "benchmark_group",
]

BenchmarkFactory = Callable[[], ModuleDefinition]

#: name -> factory, in the order of the paper's Figure 7 (alphabetical by path).
BENCHMARKS: Dict[str, BenchmarkFactory] = {
    "/coq/bst-::-set*": trees.bst_set,
    "/coq/bst-::-set+binfuncs": trees.bst_set_binfuncs,
    "/coq/bst-::-set+hofs*": trees.bst_set_hofs,
    "/coq/rbtree-::-set*": trees.rbtree_set,
    "/coq/rbtree-::-set+binfuncs": trees.rbtree_set_binfuncs,
    "/coq/rbtree-::-set+hofs*": trees.rbtree_set_hofs,
    "/coq/maxfirst-list-::-heap": heaps.maxfirst_list_heap,
    "/coq/maxfirst-list-::-heap+binfuncs": heaps.maxfirst_list_heap_binfuncs,
    "/coq/sorted-list-::-set": listsets.sorted_list_set,
    "/coq/sorted-list-::-set+binfuncs": listsets.sorted_list_set_binfuncs,
    "/coq/sorted-list-::-set+hofs": listsets.sorted_list_set_hofs,
    "/coq/unique-list-::-set": listsets.unique_list_set,
    "/coq/unique-list-::-set+binfuncs": listsets.unique_list_set_binfuncs,
    "/coq/unique-list-::-set+hofs": listsets.unique_list_set_hofs,
    "/other/cache": other.cache,
    "/other/listlike-tree": other.listlike_tree,
    "/other/nat-nat-option-::-range": other.nat_nat_option_range,
    "/other/rational": other.rational,
    "/other/sized-list": other.sized_list,
    "/other/stutter-list": other.stutter_list,
    "/vfa-extended/assoc-list-::-table": tables.assoc_list_table_extended,
    "/vfa-extended/bst-::-table": tables.bst_table_extended,
    "/vfa-extended/trie-::-table": tables.trie_table_extended,
    "/vfa/assoc-list-::-table": tables.assoc_list_table,
    "/vfa/bst-::-table": tables.bst_table,
    "/vfa/tree-::-priqueue*": heaps.tree_priqueue,
    "/vfa/tree-::-priqueue+binfuncs*": heaps.tree_priqueue_binfuncs,
    "/vfa/trie-::-table": tables.trie_table,
}

#: Benchmark groups of Section 5.1.
GROUPS: Dict[str, List[str]] = {
    "vfa": [name for name in BENCHMARKS if name.startswith("/vfa/")],
    "vfa-extended": [name for name in BENCHMARKS if name.startswith("/vfa-extended/")],
    "coq": [name for name in BENCHMARKS if name.startswith("/coq/")],
    "other": [name for name in BENCHMARKS if name.startswith("/other/")],
}

#: Benchmarks that complete within a few seconds under the FAST verifier
#: bounds; the test suite and the quick benchmark harness restrict themselves
#: to these so CI stays fast.
FAST_BENCHMARKS: List[str] = [
    "/coq/unique-list-::-set",
    "/coq/sorted-list-::-set",
    "/coq/maxfirst-list-::-heap",
    "/other/cache",
    "/other/listlike-tree",
    "/other/nat-nat-option-::-range",
    "/other/rational",
    "/other/sized-list",
    "/other/stutter-list",
    "/vfa/assoc-list-::-table",
    "/vfa/bst-::-table",
    "/vfa/trie-::-table",
    "/vfa-extended/assoc-list-::-table",
    "/vfa-extended/trie-::-table",
]

#: The paper's Figure 7 headline results, used by EXPERIMENTS.md and by the
#: comparison report: whether Hanoi solved the benchmark within 30 minutes,
#: and the reported invariant size (None = timeout).
PAPER_RESULTS: Dict[str, Optional[int]] = {
    "/coq/bst-::-set*": None,
    "/coq/bst-::-set+binfuncs": 15,
    "/coq/bst-::-set+hofs*": None,
    "/coq/rbtree-::-set*": None,
    "/coq/rbtree-::-set+binfuncs": None,
    "/coq/rbtree-::-set+hofs*": None,
    "/coq/maxfirst-list-::-heap": 35,
    "/coq/maxfirst-list-::-heap+binfuncs": 35,
    "/coq/sorted-list-::-set": 49,
    "/coq/sorted-list-::-set+binfuncs": 49,
    "/coq/sorted-list-::-set+hofs": 49,
    "/coq/unique-list-::-set": 35,
    "/coq/unique-list-::-set+binfuncs": 15,
    "/coq/unique-list-::-set+hofs": 17,
    "/other/cache": 29,
    "/other/listlike-tree": 53,
    "/other/nat-nat-option-::-range": 23,
    "/other/rational": 28,
    "/other/sized-list": 45,
    "/other/stutter-list": 49,
    "/vfa-extended/assoc-list-::-table": 4,
    "/vfa-extended/bst-::-table": None,
    "/vfa-extended/trie-::-table": 4,
    "/vfa/assoc-list-::-table": 4,
    "/vfa/bst-::-table": 4,
    "/vfa/tree-::-priqueue*": 47,
    "/vfa/tree-::-priqueue+binfuncs*": 47,
    "/vfa/trie-::-table": 4,
}


def register_benchmark(name: str, factory: BenchmarkFactory, group: str,
                       fast: bool = False, replace: bool = False) -> None:
    """Register an external benchmark alongside the built-in suite.

    Registered benchmarks flow through the same machinery as the paper's 28:
    ``expand_tasks`` / ``run_benchmark`` resolve them by name, ``GROUPS``
    gains the benchmark under its group, and ``fast=True`` opts it into the
    quick subset.  Registering a name that already exists raises ``ValueError``
    unless ``replace`` is set (which keeps the existing group placement).
    """
    if name in BENCHMARKS:
        if not replace:
            raise ValueError(f"benchmark {name!r} is already registered")
    else:
        # Group placement happens only on first registration; a replacement
        # keeps the existing placement (see docstring).
        GROUPS.setdefault(group, []).append(name)
    BENCHMARKS[name] = factory
    if fast and name not in FAST_BENCHMARKS:
        FAST_BENCHMARKS.append(name)


def unregister_benchmark(name: str) -> None:
    """Remove an externally registered benchmark (no-op when unknown).

    Built-in group lists shrink too, and a group emptied by the removal is
    dropped entirely, so registering and unregistering a pack restores the
    registry to its prior state.
    """
    BENCHMARKS.pop(name, None)
    for group in list(GROUPS):
        if name in GROUPS[group]:
            GROUPS[group].remove(name)
            if not GROUPS[group]:
                del GROUPS[group]
    if name in FAST_BENCHMARKS:
        FAST_BENCHMARKS.remove(name)


def benchmark_group(name: str) -> Optional[str]:
    """The group a benchmark is registered under, or None when unknown."""
    for group, names in GROUPS.items():
        if name in names:
            return group
    return None


def all_benchmark_names() -> List[str]:
    """Every registered benchmark name, in Figure-7 order (externally
    registered benchmarks follow, in registration order)."""
    return list(BENCHMARKS)


def get_benchmark(name: str) -> ModuleDefinition:
    """A fresh :class:`ModuleDefinition` for the named benchmark."""
    try:
        factory = BENCHMARKS[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}") from None
    return factory()


def benchmarks_in_group(group: str) -> List[ModuleDefinition]:
    """All benchmarks of one of the Section 5.1 groups."""
    try:
        names = GROUPS[group]
    except KeyError:
        raise KeyError(f"unknown group {group!r}; known: {sorted(GROUPS)}") from None
    return [get_benchmark(name) for name in names]


def fast_benchmarks() -> List[ModuleDefinition]:
    """The quick-running subset used by tests and the quick harness."""
    return [get_benchmark(name) for name in FAST_BENCHMARKS]
