"""Priority-queue benchmarks.

* ``/coq/maxfirst-list-::-heap`` (and ``+binfuncs``) - a priority queue
  represented as a list whose *maximum element is first* (in fact kept in
  descending order so that removing the maximum preserves the invariant).
* ``/vfa/tree-::-priqueue*`` (and ``+binfuncs*``) - a priority queue
  represented as a binary tree with the *heap* invariant ("the elements of
  each node's subtrees are smaller than that node's label").  As in the
  paper, the starred variants provide the ``true_maximum`` helper function
  that Myth needs to express the invariant.
"""

from __future__ import annotations

from ..core.module import ModuleDefinition
from ..lang.types import TData, arrow
from .common import ABSTRACT, BOOL, NAT, make_definition

__all__ = [
    "maxfirst_list_heap",
    "maxfirst_list_heap_binfuncs",
    "tree_priqueue",
    "tree_priqueue_binfuncs",
]

LIST = TData("list")
TREE = TData("tree")

# ---------------------------------------------------------------------------
# Max-first list heap
# ---------------------------------------------------------------------------

_MAXFIRST_BASE = """
type list = Nil | Cons of nat * list

let empty : list = Nil

let rec lookup (l : list) (x : nat) : bool =
  match l with
  | Nil -> False
  | Cons (hd, tl) -> orb (nat_eq hd x) (lookup tl x)

let rec insert (l : list) (x : nat) : list =
  match l with
  | Nil -> Cons (x, Nil)
  | Cons (hd, tl) ->
      (if nat_leq hd x then Cons (x, Cons (hd, tl)) else Cons (hd, insert tl x))

let get_max (l : list) : nat =
  match l with
  | Nil -> O
  | Cons (hd, tl) -> hd

let delete_max (l : list) : list =
  match l with
  | Nil -> Nil
  | Cons (hd, tl) -> tl
"""

_MAXFIRST_SPEC = """
let spec (s : list) (i : nat) : bool =
  andb (notb (lookup empty i))
    (andb (lookup (insert s i) i)
      (andb (nat_leq i (get_max (insert s i)))
            (implb (lookup s i) (nat_leq i (get_max s)))))
"""

_MAXFIRST_BINFUNCS = """
let rec merge (a : list) (b : list) : list =
  match a with
  | Nil -> b
  | Cons (hd, tl) -> insert (merge tl b) hd

let spec (s1 : list) (s2 : list) (i : nat) : bool =
  andb (notb (lookup empty i))
    (andb (lookup (insert s1 i) i)
      (andb (nat_leq i (get_max (insert s1 i)))
        (andb (implb (lookup s1 i) (nat_leq i (get_max s1)))
              (implb (lookup s1 i) (nat_leq i (get_max (merge s1 s2)))))))
"""

_MAXFIRST_EXPECTED = """
let rec expected (l : list) : bool =
  match l with
  | Nil -> True
  | Cons (hd, tl) ->
      (match tl with
       | Nil -> True
       | Cons (hd2, tl2) -> andb (nat_leq hd2 hd) (expected tl))
"""


def maxfirst_list_heap() -> ModuleDefinition:
    """List-based priority queue with the max-element-first invariant."""
    return make_definition(
        name="/coq/maxfirst-list-::-heap",
        group="coq",
        source=_MAXFIRST_BASE + _MAXFIRST_SPEC,
        concrete_type=LIST,
        operations=[
            ("empty", ABSTRACT),
            ("insert", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("delete_max", arrow(ABSTRACT, ABSTRACT)),
            ("get_max", arrow(ABSTRACT, NAT)),
            ("lookup", arrow(ABSTRACT, NAT, BOOL)),
        ],
        spec_signature=[ABSTRACT, NAT],
        components=["lookup", "get_max"],
        expected_invariant=_MAXFIRST_EXPECTED,
        description="List-based priority queue kept in descending order.",
    )


def maxfirst_list_heap_binfuncs() -> ModuleDefinition:
    """The max-first list heap extended with a binary ``merge``."""
    return make_definition(
        name="/coq/maxfirst-list-::-heap+binfuncs",
        group="coq",
        source=_MAXFIRST_BASE + _MAXFIRST_BINFUNCS,
        concrete_type=LIST,
        operations=[
            ("empty", ABSTRACT),
            ("insert", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("delete_max", arrow(ABSTRACT, ABSTRACT)),
            ("get_max", arrow(ABSTRACT, NAT)),
            ("lookup", arrow(ABSTRACT, NAT, BOOL)),
            ("merge", arrow(ABSTRACT, ABSTRACT, ABSTRACT)),
        ],
        spec_signature=[ABSTRACT, ABSTRACT, NAT],
        components=["lookup", "get_max"],
        expected_invariant=_MAXFIRST_EXPECTED,
        description="Max-first list heap with a binary merge operation.",
    )


# ---------------------------------------------------------------------------
# Tree priority queue (binary heap)
# ---------------------------------------------------------------------------

_PRIQUEUE_BASE = """
type tree = Leaf | Node of tree * nat * tree

let empty : tree = Leaf

let rec member (t : tree) (x : nat) : bool =
  match t with
  | Leaf -> False
  | Node (lhs, label, rhs) ->
      orb (nat_eq label x) (orb (member lhs x) (member rhs x))

let rec true_maximum (t : tree) : nat =
  match t with
  | Leaf -> O
  | Node (lhs, label, rhs) -> nat_max label (nat_max (true_maximum lhs) (true_maximum rhs))

let rec insert (t : tree) (x : nat) : tree =
  match t with
  | Leaf -> Node (Leaf, x, Leaf)
  | Node (lhs, label, rhs) ->
      (if nat_leq x label then Node (insert rhs x, label, lhs)
       else Node (insert rhs label, x, lhs))

let get_max (t : tree) : nat =
  match t with
  | Leaf -> O
  | Node (lhs, label, rhs) -> label

let rec merge (a : tree) (b : tree) : tree =
  match a with
  | Leaf -> b
  | Node (al, av, ar) ->
      (match b with
       | Leaf -> a
       | Node (bl, bv, br) ->
           (if nat_leq bv av then Node (merge ar b, av, al)
            else Node (merge br a, bv, bl)))

let delete_max (t : tree) : tree =
  match t with
  | Leaf -> Leaf
  | Node (lhs, label, rhs) -> merge lhs rhs
"""

_PRIQUEUE_SPEC = """
let spec (s : tree) (i : nat) : bool =
  andb (notb (member empty i))
    (andb (member (insert s i) i)
      (andb (nat_leq i (get_max (insert s i)))
        (andb (implb (member s i) (nat_leq i (get_max s)))
              (implb (member s i) (nat_leq (get_max (delete_max s)) (get_max s))))))
"""

_PRIQUEUE_BIN_SPEC = """
let spec (s1 : tree) (s2 : tree) (i : nat) : bool =
  andb (notb (member empty i))
    (andb (member (insert s1 i) i)
      (andb (nat_leq i (get_max (insert s1 i)))
        (andb (implb (member s1 i) (nat_leq i (get_max s1)))
              (implb (member s1 i) (nat_leq i (get_max (merge s1 s2)))))))
"""

_PRIQUEUE_EXPECTED = """
let rec expected (t : tree) : bool =
  match t with
  | Leaf -> True
  | Node (lhs, label, rhs) ->
      andb (andb (nat_leq (true_maximum lhs) label) (nat_leq (true_maximum rhs) label))
           (andb (expected lhs) (expected rhs))
"""


def tree_priqueue() -> ModuleDefinition:
    """Binary-tree priority queue with the heap invariant (starred: needs
    the ``true_maximum`` helper, as in the paper)."""
    return make_definition(
        name="/vfa/tree-::-priqueue*",
        group="vfa",
        source=_PRIQUEUE_BASE + _PRIQUEUE_SPEC,
        concrete_type=TREE,
        operations=[
            ("empty", ABSTRACT),
            ("insert", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("delete_max", arrow(ABSTRACT, ABSTRACT)),
            ("get_max", arrow(ABSTRACT, NAT)),
            ("member", arrow(ABSTRACT, NAT, BOOL)),
        ],
        spec_signature=[ABSTRACT, NAT],
        components=["member", "get_max"],
        helpers=["true_maximum"],
        expected_invariant=_PRIQUEUE_EXPECTED,
        description="Binary-tree priority queue; heap-order representation invariant.",
    )


def tree_priqueue_binfuncs() -> ModuleDefinition:
    """The tree priority queue with ``merge`` exposed as a binary operation."""
    return make_definition(
        name="/vfa/tree-::-priqueue+binfuncs*",
        group="vfa",
        source=_PRIQUEUE_BASE + _PRIQUEUE_BIN_SPEC,
        concrete_type=TREE,
        operations=[
            ("empty", ABSTRACT),
            ("insert", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("delete_max", arrow(ABSTRACT, ABSTRACT)),
            ("get_max", arrow(ABSTRACT, NAT)),
            ("member", arrow(ABSTRACT, NAT, BOOL)),
            ("merge", arrow(ABSTRACT, ABSTRACT, ABSTRACT)),
        ],
        spec_signature=[ABSTRACT, ABSTRACT, NAT],
        components=["member", "get_max"],
        helpers=["true_maximum"],
        expected_invariant=_PRIQUEUE_EXPECTED,
        description="Binary-tree priority queue with a binary merge operation.",
    )
