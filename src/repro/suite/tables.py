"""Lookup-table benchmarks from Verified Functional Algorithms (VFA).

The VFA group contains three table implementations (association list, binary
search tree, binary trie) with the standard total-map specification:

* ``get empty k = default``
* ``get (set t k v) k = v``
* ``k <> k'  ==>  get (set t k v) k' = get t k'``

For these three modules the specification holds of *arbitrary* representation
values (lookup and update follow the same search path), so the sufficient
representation invariant Hanoi finds is the trivial one - matching the size-4
invariants of Figure 7.

The VFA-extended group (``/vfa-extended/...``) adds a ``remove`` operation
and a corresponding specification clause taken from the Coq standard
library's finite-map interface.  For the association list and the trie the
trivial invariant still suffices; for the BST table it does not (removal by
joining subtrees is only correct on search trees), which is why that
benchmark times out in the paper.
"""

from __future__ import annotations

from ..core.module import ModuleDefinition
from ..lang.types import TData, arrow
from .common import ABSTRACT, NAT, make_definition

__all__ = [
    "assoc_list_table",
    "assoc_list_table_extended",
    "bst_table",
    "bst_table_extended",
    "trie_table",
    "trie_table_extended",
]

ALIST = TData("alist")
TREE = TData("tree")
TRIE = TData("trie")
POS = TData("pos")

_TRIVIAL_EXPECTED = """
let expected (t : alist) : bool = True
"""

# ---------------------------------------------------------------------------
# Association-list table
# ---------------------------------------------------------------------------

_ALIST_BASE = """
type alist = ANil | ACons of nat * nat * alist

let empty : alist = ANil

let rec get (t : alist) (k : nat) : nat =
  match t with
  | ANil -> O
  | ACons (key, value, rest) -> (if nat_eq key k then value else get rest k)

let set (t : alist) (k : nat) (v : nat) : alist =
  ACons (k, v, t)
"""

_ALIST_SPEC = """
let spec (t : alist) (k : nat) (v : nat) (k2 : nat) : bool =
  andb (nat_eq (get empty k) O)
    (andb (nat_eq (get (set t k v) k) v)
          (implb (notb (nat_eq k k2)) (nat_eq (get (set t k v) k2) (get t k2))))
"""

_ALIST_EXTENDED = """
let rec remove (t : alist) (k : nat) : alist =
  match t with
  | ANil -> ANil
  | ACons (key, value, rest) ->
      (if nat_eq key k then remove rest k else ACons (key, value, remove rest k))

let spec (t : alist) (k : nat) (v : nat) (k2 : nat) : bool =
  andb (nat_eq (get empty k) O)
    (andb (nat_eq (get (set t k v) k) v)
      (andb (implb (notb (nat_eq k k2)) (nat_eq (get (set t k v) k2) (get t k2)))
        (andb (nat_eq (get (remove t k) k) O)
              (implb (notb (nat_eq k k2)) (nat_eq (get (remove t k) k2) (get t k2))))))
"""


def assoc_list_table() -> ModuleDefinition:
    """Total map as an association list (VFA ``SearchTree`` chapter's baseline)."""
    return make_definition(
        name="/vfa/assoc-list-::-table",
        group="vfa",
        source=_ALIST_BASE + _ALIST_SPEC,
        concrete_type=ALIST,
        operations=[
            ("empty", ABSTRACT),
            ("get", arrow(ABSTRACT, NAT, NAT)),
            ("set", arrow(ABSTRACT, NAT, NAT, ABSTRACT)),
        ],
        spec_signature=[ABSTRACT, NAT, NAT, NAT],
        components=["get"],
        expected_invariant=_TRIVIAL_EXPECTED,
        description="Total map as an association list; trivial invariant suffices.",
    )


def assoc_list_table_extended() -> ModuleDefinition:
    """The association-list table extended with ``remove``."""
    return make_definition(
        name="/vfa-extended/assoc-list-::-table",
        group="vfa-extended",
        source=_ALIST_BASE + _ALIST_EXTENDED,
        concrete_type=ALIST,
        operations=[
            ("empty", ABSTRACT),
            ("get", arrow(ABSTRACT, NAT, NAT)),
            ("set", arrow(ABSTRACT, NAT, NAT, ABSTRACT)),
            ("remove", arrow(ABSTRACT, NAT, ABSTRACT)),
        ],
        spec_signature=[ABSTRACT, NAT, NAT, NAT],
        components=["get"],
        expected_invariant=_TRIVIAL_EXPECTED,
        description="Association-list table with removal; trivial invariant suffices.",
    )


# ---------------------------------------------------------------------------
# BST table
# ---------------------------------------------------------------------------

_BST_TABLE_BASE = """
type tree = Leaf | Node of tree * nat * nat * tree

let empty : tree = Leaf

let rec get (t : tree) (k : nat) : nat =
  match t with
  | Leaf -> O
  | Node (lhs, key, value, rhs) ->
      (if nat_lt k key then get lhs k
       else (if nat_lt key k then get rhs k else value))

let rec set (t : tree) (k : nat) (v : nat) : tree =
  match t with
  | Leaf -> Node (Leaf, k, v, Leaf)
  | Node (lhs, key, value, rhs) ->
      (if nat_lt k key then Node (set lhs k v, key, value, rhs)
       else (if nat_lt key k then Node (lhs, key, value, set rhs k v)
             else Node (lhs, key, v, rhs)))
"""

_BST_TABLE_SPEC = """
let spec (t : tree) (k : nat) (v : nat) (k2 : nat) : bool =
  andb (nat_eq (get empty k) O)
    (andb (nat_eq (get (set t k v) k) v)
          (implb (notb (nat_eq k k2)) (nat_eq (get (set t k v) k2) (get t k2))))
"""

_BST_TABLE_EXTENDED = """
let rec key_max (t : tree) : nat =
  match t with
  | Leaf -> O
  | Node (lhs, key, value, rhs) ->
      (match rhs with
       | Leaf -> key
       | Node (a, b, c, d) -> key_max rhs)

let rec val_of_max (t : tree) : nat =
  match t with
  | Leaf -> O
  | Node (lhs, key, value, rhs) ->
      (match rhs with
       | Leaf -> value
       | Node (a, b, c, d) -> val_of_max rhs)

let rec delete_rightmost (t : tree) : tree =
  match t with
  | Leaf -> Leaf
  | Node (lhs, key, value, rhs) ->
      (match rhs with
       | Leaf -> lhs
       | Node (a, b, c, d) -> Node (lhs, key, value, delete_rightmost rhs))

let rec remove (t : tree) (k : nat) : tree =
  match t with
  | Leaf -> Leaf
  | Node (lhs, key, value, rhs) ->
      (if nat_lt k key then Node (remove lhs k, key, value, rhs)
       else (if nat_lt key k then Node (lhs, key, value, remove rhs k)
             else (match lhs with
                   | Leaf -> rhs
                   | Node (a, b, c, d) ->
                       Node (delete_rightmost lhs, key_max lhs, val_of_max lhs, rhs))))

let rec all_keys_lt (t : tree) (k : nat) : bool =
  match t with
  | Leaf -> True
  | Node (lhs, key, value, rhs) ->
      andb (nat_lt key k) (andb (all_keys_lt lhs k) (all_keys_lt rhs k))

let rec all_keys_gt (t : tree) (k : nat) : bool =
  match t with
  | Leaf -> True
  | Node (lhs, key, value, rhs) ->
      andb (nat_lt k key) (andb (all_keys_gt lhs k) (all_keys_gt rhs k))

let spec (t : tree) (k : nat) (v : nat) (k2 : nat) : bool =
  andb (nat_eq (get empty k) O)
    (andb (nat_eq (get (set t k v) k) v)
      (andb (implb (notb (nat_eq k k2)) (nat_eq (get (set t k v) k2) (get t k2)))
        (andb (nat_eq (get (remove t k) k) O)
              (implb (notb (nat_eq k k2)) (nat_eq (get (remove t k) k2) (get t k2))))))
"""

_BST_TABLE_EXPECTED = """
let rec expected (t : tree) : bool =
  match t with
  | Leaf -> True
  | Node (lhs, key, value, rhs) ->
      andb (andb (all_keys_lt lhs key) (all_keys_gt rhs key))
           (andb (expected lhs) (expected rhs))
"""

_BST_TABLE_TRIVIAL = """
let expected (t : tree) : bool = True
"""


def bst_table() -> ModuleDefinition:
    """Total map as a binary search tree keyed by naturals."""
    return make_definition(
        name="/vfa/bst-::-table",
        group="vfa",
        source=_BST_TABLE_BASE + _BST_TABLE_SPEC,
        concrete_type=TREE,
        operations=[
            ("empty", ABSTRACT),
            ("get", arrow(ABSTRACT, NAT, NAT)),
            ("set", arrow(ABSTRACT, NAT, NAT, ABSTRACT)),
        ],
        spec_signature=[ABSTRACT, NAT, NAT, NAT],
        components=["get", "nat_lt"],
        expected_invariant=_BST_TABLE_TRIVIAL,
        description="Total map as a BST; the table spec holds of arbitrary trees.",
    )


def bst_table_extended() -> ModuleDefinition:
    """The BST table extended with removal (needs the search-tree invariant)."""
    return make_definition(
        name="/vfa-extended/bst-::-table",
        group="vfa-extended",
        source=_BST_TABLE_BASE + _BST_TABLE_EXTENDED,
        concrete_type=TREE,
        operations=[
            ("empty", ABSTRACT),
            ("get", arrow(ABSTRACT, NAT, NAT)),
            ("set", arrow(ABSTRACT, NAT, NAT, ABSTRACT)),
            ("remove", arrow(ABSTRACT, NAT, ABSTRACT)),
        ],
        spec_signature=[ABSTRACT, NAT, NAT, NAT],
        components=["get", "nat_lt"],
        helpers=["all_keys_lt", "all_keys_gt"],
        expected_invariant=_BST_TABLE_EXPECTED,
        description="BST table with removal; requires the search-tree invariant.",
    )


# ---------------------------------------------------------------------------
# Trie table (binary trie keyed by binary positives, as in VFA)
# ---------------------------------------------------------------------------

_TRIE_BASE = """
type pos = XH | XO of pos | XI of pos

type trie = TLeaf | TNode of trie * nat * trie

let rec pos_eq (a : pos) (b : pos) : bool =
  match a with
  | XH -> (match b with | XH -> True | XO y -> False | XI y -> False)
  | XO x -> (match b with | XH -> False | XO y -> pos_eq x y | XI y -> False)
  | XI x -> (match b with | XH -> False | XO y -> False | XI y -> pos_eq x y)

let empty : trie = TLeaf

let rec get (t : trie) (k : pos) : nat =
  match t with
  | TLeaf -> O
  | TNode (lhs, value, rhs) ->
      (match k with
       | XH -> value
       | XO rest -> get lhs rest
       | XI rest -> get rhs rest)

let rec set (t : trie) (k : pos) (v : nat) : trie =
  match t with
  | TLeaf ->
      (match k with
       | XH -> TNode (TLeaf, v, TLeaf)
       | XO rest -> TNode (set TLeaf rest v, O, TLeaf)
       | XI rest -> TNode (TLeaf, O, set TLeaf rest v))
  | TNode (lhs, value, rhs) ->
      (match k with
       | XH -> TNode (lhs, v, rhs)
       | XO rest -> TNode (set lhs rest v, value, rhs)
       | XI rest -> TNode (lhs, value, set rhs rest v))
"""

_TRIE_SPEC = """
let spec (t : trie) (k : pos) (v : nat) (k2 : pos) : bool =
  andb (nat_eq (get empty k) O)
    (andb (nat_eq (get (set t k v) k) v)
          (implb (notb (pos_eq k k2)) (nat_eq (get (set t k v) k2) (get t k2))))
"""

_TRIE_EXTENDED = """
let rec remove (t : trie) (k : pos) : trie =
  match t with
  | TLeaf -> TLeaf
  | TNode (lhs, value, rhs) ->
      (match k with
       | XH -> TNode (lhs, O, rhs)
       | XO rest -> TNode (remove lhs rest, value, rhs)
       | XI rest -> TNode (lhs, value, remove rhs rest))

let spec (t : trie) (k : pos) (v : nat) (k2 : pos) : bool =
  andb (nat_eq (get empty k) O)
    (andb (nat_eq (get (set t k v) k) v)
      (andb (implb (notb (pos_eq k k2)) (nat_eq (get (set t k v) k2) (get t k2)))
        (andb (nat_eq (get (remove t k) k) O)
              (implb (notb (pos_eq k k2)) (nat_eq (get (remove t k) k2) (get t k2))))))
"""

_TRIE_TRIVIAL = """
let expected (t : trie) : bool = True
"""


def trie_table() -> ModuleDefinition:
    """Total map as a binary trie keyed by binary positive numbers."""
    return make_definition(
        name="/vfa/trie-::-table",
        group="vfa",
        source=_TRIE_BASE + _TRIE_SPEC,
        concrete_type=TRIE,
        operations=[
            ("empty", ABSTRACT),
            ("get", arrow(ABSTRACT, POS, NAT)),
            ("set", arrow(ABSTRACT, POS, NAT, ABSTRACT)),
        ],
        spec_signature=[ABSTRACT, POS, NAT, POS],
        components=["get"],
        expected_invariant=_TRIE_TRIVIAL,
        description="Total map as a binary trie; trivial invariant suffices.",
    )


def trie_table_extended() -> ModuleDefinition:
    """The trie table extended with ``remove``."""
    return make_definition(
        name="/vfa-extended/trie-::-table",
        group="vfa-extended",
        source=_TRIE_BASE + _TRIE_EXTENDED,
        concrete_type=TRIE,
        operations=[
            ("empty", ABSTRACT),
            ("get", arrow(ABSTRACT, POS, NAT)),
            ("set", arrow(ABSTRACT, POS, NAT, ABSTRACT)),
            ("remove", arrow(ABSTRACT, POS, ABSTRACT)),
        ],
        spec_signature=[ABSTRACT, POS, NAT, POS],
        components=["get"],
        expected_invariant=_TRIE_TRIVIAL,
        description="Binary trie table with removal; trivial invariant suffices.",
    )
