"""The 28-benchmark suite of Section 5.1, written in the object language."""

from .registry import (
    BENCHMARKS,
    FAST_BENCHMARKS,
    GROUPS,
    PAPER_RESULTS,
    all_benchmark_names,
    benchmarks_in_group,
    fast_benchmarks,
    get_benchmark,
)

__all__ = [
    "BENCHMARKS",
    "FAST_BENCHMARKS",
    "GROUPS",
    "PAPER_RESULTS",
    "all_benchmark_names",
    "benchmarks_in_group",
    "fast_benchmarks",
    "get_benchmark",
]
