"""Tree-based set benchmarks: binary search trees and red-black trees.

These are the hardest problems in the suite; in the paper most of them time
out (``/coq/bst-::-set*``, ``/coq/rbtree-::-set*`` and their variants), with
``/coq/bst-::-set+binfuncs`` being the exception.  They are included in full
so that the timeout behaviour of Figure 7 can be reproduced, and so that the
helper-function mechanism (the ``*`` benchmarks) is exercised.

The BST benchmarks provide ``all_lt`` / ``all_gt`` helpers, playing the role
of the paper's ``min_max_tree`` helper: they make the binary-search-tree
ordering invariant expressible without synthesizing auxiliary recursive
functions.
"""

from __future__ import annotations

from ..core.module import ModuleDefinition
from ..lang.types import TData, arrow
from .common import ABSTRACT, BOOL, NAT, make_definition

__all__ = [
    "bst_set",
    "bst_set_binfuncs",
    "bst_set_hofs",
    "rbtree_set",
    "rbtree_set_binfuncs",
    "rbtree_set_hofs",
]

TREE = TData("tree")
RBTREE = TData("tree")

# ---------------------------------------------------------------------------
# Binary search tree set
# ---------------------------------------------------------------------------

_BST_BASE = """
type tree = Leaf | Node of tree * nat * tree

let empty : tree = Leaf

let rec member (t : tree) (x : nat) : bool =
  match t with
  | Leaf -> False
  | Node (lhs, label, rhs) ->
      (if nat_lt x label then member lhs x
       else (if nat_lt label x then member rhs x else True))

let rec insert (t : tree) (x : nat) : tree =
  match t with
  | Leaf -> Node (Leaf, x, Leaf)
  | Node (lhs, label, rhs) ->
      (if nat_lt x label then Node (insert lhs x, label, rhs)
       else (if nat_lt label x then Node (lhs, label, insert rhs x)
             else Node (lhs, label, rhs)))

let rec tree_max (t : tree) : nat =
  match t with
  | Leaf -> O
  | Node (lhs, label, rhs) ->
      (match rhs with
       | Leaf -> label
       | Node (rl, rv, rr) -> tree_max rhs)

let rec delete_rightmost (t : tree) : tree =
  match t with
  | Leaf -> Leaf
  | Node (lhs, label, rhs) ->
      (match rhs with
       | Leaf -> lhs
       | Node (rl, rv, rr) -> Node (lhs, label, delete_rightmost rhs))

let rec delete (t : tree) (x : nat) : tree =
  match t with
  | Leaf -> Leaf
  | Node (lhs, label, rhs) ->
      (if nat_lt x label then Node (delete lhs x, label, rhs)
       else (if nat_lt label x then Node (lhs, label, delete rhs x)
             else (match lhs with
                   | Leaf -> rhs
                   | Node (ll, lv, lr) -> Node (delete_rightmost lhs, tree_max lhs, rhs))))

let rec all_lt (t : tree) (x : nat) : bool =
  match t with
  | Leaf -> True
  | Node (lhs, label, rhs) ->
      andb (nat_lt label x) (andb (all_lt lhs x) (all_lt rhs x))

let rec all_gt (t : tree) (x : nat) : bool =
  match t with
  | Leaf -> True
  | Node (lhs, label, rhs) ->
      andb (nat_lt x label) (andb (all_gt lhs x) (all_gt rhs x))
"""

_BST_SPEC = """
let spec (s : tree) (i : nat) : bool =
  andb (notb (member empty i))
    (andb (member (insert s i) i) (notb (member (delete s i) i)))
"""

_BST_UNION = """
let rec union (a : tree) (b : tree) : tree =
  match a with
  | Leaf -> b
  | Node (lhs, label, rhs) -> insert (union lhs (union rhs b)) label
"""

_BST_BINFUNCS = _BST_UNION + """
let rec inter (a : tree) (b : tree) : tree =
  match a with
  | Leaf -> Leaf
  | Node (lhs, label, rhs) ->
      (if member b label then insert (union (inter lhs b) (inter rhs b)) label
       else union (inter lhs b) (inter rhs b))

let spec (s1 : tree) (s2 : tree) (i : nat) : bool =
  andb (notb (member empty i))
    (andb (member (insert s1 i) i)
      (andb (notb (member (delete s1 i) i))
        (andb (implb (orb (member s1 i) (member s2 i)) (member (union s1 s2) i))
              (implb (andb (member s1 i) (member s2 i)) (member (inter s1 s2) i)))))
"""

_BST_HOFS = _BST_UNION + """
let rec map (f : nat -> nat) (t : tree) : tree =
  match t with
  | Leaf -> Leaf
  | Node (lhs, label, rhs) -> insert (union (map f lhs) (map f rhs)) (f label)

let rec filter (f : nat -> bool) (t : tree) : tree =
  match t with
  | Leaf -> Leaf
  | Node (lhs, label, rhs) ->
      (if f label then insert (union (filter f lhs) (filter f rhs)) label
       else union (filter f lhs) (filter f rhs))
"""

_BST_EXPECTED = """
let rec expected (t : tree) : bool =
  match t with
  | Leaf -> True
  | Node (lhs, label, rhs) ->
      andb (andb (all_lt lhs label) (all_gt rhs label))
           (andb (expected lhs) (expected rhs))
"""


def bst_set() -> ModuleDefinition:
    """Binary-search-tree set (starred: provided ordering helpers)."""
    return make_definition(
        name="/coq/bst-::-set*",
        group="coq",
        source=_BST_BASE + _BST_SPEC,
        concrete_type=TREE,
        operations=[
            ("empty", ABSTRACT),
            ("insert", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("delete", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("member", arrow(ABSTRACT, NAT, BOOL)),
        ],
        spec_signature=[ABSTRACT, NAT],
        components=["member", "nat_lt"],
        helpers=["all_lt", "all_gt"],
        expected_invariant=_BST_EXPECTED,
        description="Set as a binary search tree; ordering representation invariant.",
    )


def bst_set_binfuncs() -> ModuleDefinition:
    """The BST set extended with binary ``union`` and ``inter``."""
    return make_definition(
        name="/coq/bst-::-set+binfuncs",
        group="coq",
        source=_BST_BASE + _BST_BINFUNCS,
        concrete_type=TREE,
        operations=[
            ("empty", ABSTRACT),
            ("insert", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("delete", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("member", arrow(ABSTRACT, NAT, BOOL)),
            ("union", arrow(ABSTRACT, ABSTRACT, ABSTRACT)),
            ("inter", arrow(ABSTRACT, ABSTRACT, ABSTRACT)),
        ],
        spec_signature=[ABSTRACT, ABSTRACT, NAT],
        components=["member", "nat_lt"],
        helpers=["all_lt", "all_gt"],
        expected_invariant=_BST_EXPECTED,
        description="BST set with binary union/intersection.",
    )


def bst_set_hofs() -> ModuleDefinition:
    """The BST set extended with higher-order ``map`` and ``filter``."""
    return make_definition(
        name="/coq/bst-::-set+hofs*",
        group="coq",
        source=_BST_BASE + _BST_HOFS + _BST_SPEC,
        concrete_type=TREE,
        operations=[
            ("empty", ABSTRACT),
            ("insert", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("delete", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("member", arrow(ABSTRACT, NAT, BOOL)),
            ("map", arrow(arrow(NAT, NAT), ABSTRACT, ABSTRACT)),
            ("filter", arrow(arrow(NAT, BOOL), ABSTRACT, ABSTRACT)),
        ],
        spec_signature=[ABSTRACT, NAT],
        components=["member", "nat_lt"],
        helpers=["all_lt", "all_gt"],
        expected_invariant=_BST_EXPECTED,
        description="BST set with higher-order map/filter operations.",
    )


# ---------------------------------------------------------------------------
# Red-black tree set
# ---------------------------------------------------------------------------

_RBTREE_BASE = """
type color = Red | Black

type tree = Leaf | Node of color * tree * nat * tree

let empty : tree = Leaf

let rec member (t : tree) (x : nat) : bool =
  match t with
  | Leaf -> False
  | Node (c, lhs, label, rhs) ->
      (if nat_lt x label then member lhs x
       else (if nat_lt label x then member rhs x else True))

let balance (c : color) (l : tree) (v : nat) (r : tree) : tree =
  match c with
  | Red -> Node (Red, l, v, r)
  | Black ->
      (match l with
       | Node (lc, ll, lv, lr) ->
           (match lc with
            | Red ->
                (match ll with
                 | Node (llc, lll, llv, llr) ->
                     (match llc with
                      | Red -> Node (Red, Node (Black, lll, llv, llr), lv, Node (Black, lr, v, r))
                      | Black -> (match lr with
                                  | Node (lrc, lrl, lrv, lrr) ->
                                      (match lrc with
                                       | Red -> Node (Red, Node (Black, ll, lv, lrl), lrv, Node (Black, lrr, v, r))
                                       | Black -> Node (Black, l, v, r))
                                  | Leaf -> Node (Black, l, v, r)))
                 | Leaf -> (match lr with
                            | Node (lrc, lrl, lrv, lrr) ->
                                (match lrc with
                                 | Red -> Node (Red, Node (Black, ll, lv, lrl), lrv, Node (Black, lrr, v, r))
                                 | Black -> Node (Black, l, v, r))
                            | Leaf -> Node (Black, l, v, r)))
            | Black -> (match r with
                        | Node (rc, rl, rv, rr) ->
                            (match rc with
                             | Red ->
                                 (match rl with
                                  | Node (rlc, rll, rlv, rlr) ->
                                      (match rlc with
                                       | Red -> Node (Red, Node (Black, l, v, rll), rlv, Node (Black, rlr, rv, rr))
                                       | Black -> (match rr with
                                                   | Node (rrc, rrl, rrv, rrr) ->
                                                       (match rrc with
                                                        | Red -> Node (Red, Node (Black, l, v, rl), rv, Node (Black, rrl, rrv, rrr))
                                                        | Black -> Node (Black, l, v, r))
                                                   | Leaf -> Node (Black, l, v, r)))
                                  | Leaf -> (match rr with
                                             | Node (rrc, rrl, rrv, rrr) ->
                                                 (match rrc with
                                                  | Red -> Node (Red, Node (Black, l, v, rl), rv, Node (Black, rrl, rrv, rrr))
                                                  | Black -> Node (Black, l, v, r))
                                             | Leaf -> Node (Black, l, v, r)))
                             | Black -> Node (Black, l, v, r))
                        | Leaf -> Node (Black, l, v, r)))
       | Leaf ->
           (match r with
            | Node (rc, rl, rv, rr) ->
                (match rc with
                 | Red ->
                     (match rl with
                      | Node (rlc, rll, rlv, rlr) ->
                          (match rlc with
                           | Red -> Node (Red, Node (Black, l, v, rll), rlv, Node (Black, rlr, rv, rr))
                           | Black -> (match rr with
                                       | Node (rrc, rrl, rrv, rrr) ->
                                           (match rrc with
                                            | Red -> Node (Red, Node (Black, l, v, rl), rv, Node (Black, rrl, rrv, rrr))
                                            | Black -> Node (Black, l, v, r))
                                       | Leaf -> Node (Black, l, v, r)))
                      | Leaf -> (match rr with
                                 | Node (rrc, rrl, rrv, rrr) ->
                                     (match rrc with
                                      | Red -> Node (Red, Node (Black, l, v, rl), rv, Node (Black, rrl, rrv, rrr))
                                      | Black -> Node (Black, l, v, r))
                                 | Leaf -> Node (Black, l, v, r)))
                 | Black -> Node (Black, l, v, r))
            | Leaf -> Node (Black, l, v, r)))

let rec insert_aux (t : tree) (x : nat) : tree =
  match t with
  | Leaf -> Node (Red, Leaf, x, Leaf)
  | Node (c, lhs, label, rhs) ->
      (if nat_lt x label then balance c (insert_aux lhs x) label rhs
       else (if nat_lt label x then balance c lhs label (insert_aux rhs x)
             else Node (c, lhs, label, rhs)))

let blacken (t : tree) : tree =
  match t with
  | Leaf -> Leaf
  | Node (c, lhs, label, rhs) -> Node (Black, lhs, label, rhs)

let insert (t : tree) (x : nat) : tree =
  blacken (insert_aux t x)

let rec tree_minimum (t : tree) : nat =
  match t with
  | Leaf -> O
  | Node (c, lhs, label, rhs) ->
      (match lhs with
       | Leaf -> label
       | Node (lc, ll, lv, lr) -> tree_minimum lhs)

let rec all_lt (t : tree) (x : nat) : bool =
  match t with
  | Leaf -> True
  | Node (c, lhs, label, rhs) ->
      andb (nat_lt label x) (andb (all_lt lhs x) (all_lt rhs x))

let rec all_gt (t : tree) (x : nat) : bool =
  match t with
  | Leaf -> True
  | Node (c, lhs, label, rhs) ->
      andb (nat_lt x label) (andb (all_gt lhs x) (all_gt rhs x))
"""

_RBTREE_SPEC = """
let spec (s : tree) (i : nat) : bool =
  andb (notb (member empty i))
    (andb (member (insert s i) i)
      (andb (implb (member s i) (member (insert s 1) i))
            (implb (member s i) (nat_leq (tree_minimum s) i))))
"""

_RBTREE_BINFUNCS = """
let rec union (a : tree) (b : tree) : tree =
  match a with
  | Leaf -> b
  | Node (c, lhs, label, rhs) -> insert (union lhs (union rhs b)) label

let spec (s1 : tree) (s2 : tree) (i : nat) : bool =
  andb (notb (member empty i))
    (andb (member (insert s1 i) i)
      (andb (implb (member s1 i) (nat_leq (tree_minimum s1) i))
            (implb (orb (member s1 i) (member s2 i)) (member (union s1 s2) i))))
"""

_RBTREE_HOFS = """
let rec union (a : tree) (b : tree) : tree =
  match a with
  | Leaf -> b
  | Node (c, lhs, label, rhs) -> insert (union lhs (union rhs b)) label

let rec map (f : nat -> nat) (t : tree) : tree =
  match t with
  | Leaf -> Leaf
  | Node (c, lhs, label, rhs) -> insert (union (map f lhs) (map f rhs)) (f label)

let spec (s : tree) (i : nat) : bool =
  andb (notb (member empty i))
    (andb (member (insert s i) i)
      (andb (implb (member s i) (member (insert s 1) i))
            (implb (member s i) (nat_leq (tree_minimum s) i))))
"""

_RBTREE_EXPECTED = """
let rec expected (t : tree) : bool =
  match t with
  | Leaf -> True
  | Node (c, lhs, label, rhs) ->
      andb (andb (all_lt lhs label) (all_gt rhs label))
           (andb (expected lhs) (expected rhs))
"""


def rbtree_set() -> ModuleDefinition:
    """Red-black-tree set (starred; expected to time out, as in the paper)."""
    return make_definition(
        name="/coq/rbtree-::-set*",
        group="coq",
        source=_RBTREE_BASE + _RBTREE_SPEC,
        concrete_type=RBTREE,
        operations=[
            ("empty", ABSTRACT),
            ("insert", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("member", arrow(ABSTRACT, NAT, BOOL)),
            ("tree_minimum", arrow(ABSTRACT, NAT)),
        ],
        spec_signature=[ABSTRACT, NAT],
        components=["member", "nat_lt", "tree_minimum"],
        helpers=["all_lt", "all_gt"],
        expected_invariant=_RBTREE_EXPECTED,
        description="Set as an Okasaki-style red-black tree.",
    )


def rbtree_set_binfuncs() -> ModuleDefinition:
    """The red-black-tree set extended with a binary ``union``."""
    return make_definition(
        name="/coq/rbtree-::-set+binfuncs",
        group="coq",
        source=_RBTREE_BASE + _RBTREE_BINFUNCS,
        concrete_type=RBTREE,
        operations=[
            ("empty", ABSTRACT),
            ("insert", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("member", arrow(ABSTRACT, NAT, BOOL)),
            ("tree_minimum", arrow(ABSTRACT, NAT)),
            ("union", arrow(ABSTRACT, ABSTRACT, ABSTRACT)),
        ],
        spec_signature=[ABSTRACT, ABSTRACT, NAT],
        components=["member", "nat_lt", "tree_minimum"],
        helpers=["all_lt", "all_gt"],
        expected_invariant=_RBTREE_EXPECTED,
        description="Red-black-tree set with a binary union.",
    )


def rbtree_set_hofs() -> ModuleDefinition:
    """The red-black-tree set extended with a higher-order ``map``."""
    return make_definition(
        name="/coq/rbtree-::-set+hofs*",
        group="coq",
        source=_RBTREE_BASE + _RBTREE_HOFS,
        concrete_type=RBTREE,
        operations=[
            ("empty", ABSTRACT),
            ("insert", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("member", arrow(ABSTRACT, NAT, BOOL)),
            ("tree_minimum", arrow(ABSTRACT, NAT)),
            ("map", arrow(arrow(NAT, NAT), ABSTRACT, ABSTRACT)),
        ],
        spec_signature=[ABSTRACT, NAT],
        components=["member", "nat_lt", "tree_minimum"],
        helpers=["all_lt", "all_gt"],
        expected_invariant=_RBTREE_EXPECTED,
        description="Red-black-tree set with a higher-order map.",
    )
