"""List-based set benchmarks from the Coq group.

* ``/coq/unique-list-::-set`` - the paper's motivating example (Section 2):
  a set represented as an integer list with a *no duplicates* invariant.
* ``/coq/unique-list-::-set+binfuncs`` - the same module extended with the
  binary operations ``union`` and ``inter`` and the n-ary specification of
  Section 2.2.
* ``/coq/unique-list-::-set+hofs`` - the same module extended with the
  higher-order operations ``map`` and ``filter`` (Section 4.2).

* ``/coq/sorted-list-::-set`` (and the ``+binfuncs`` / ``+hofs`` variants) -
  a set represented as a strictly sorted list with an *ordered* invariant.
"""

from __future__ import annotations

from ..core.module import ModuleDefinition
from ..lang.types import TData, arrow
from .common import ABSTRACT, BOOL, NAT, make_definition

__all__ = [
    "unique_list_set",
    "unique_list_set_binfuncs",
    "unique_list_set_hofs",
    "sorted_list_set",
    "sorted_list_set_binfuncs",
    "sorted_list_set_hofs",
]

LIST = TData("list")

_UNIQUE_BASE = """
type list = Nil | Cons of nat * list

let empty : list = Nil

let rec lookup (l : list) (x : nat) : bool =
  match l with
  | Nil -> False
  | Cons (hd, tl) -> orb (nat_eq hd x) (lookup tl x)

let insert (l : list) (x : nat) : list =
  if lookup l x then l else Cons (x, l)

let rec delete (l : list) (x : nat) : list =
  match l with
  | Nil -> Nil
  | Cons (hd, tl) -> (if nat_eq hd x then tl else Cons (hd, delete tl x))
"""

_UNIQUE_SPEC = """
let spec (s : list) (i : nat) : bool =
  andb (notb (lookup empty i))
    (andb (lookup (insert s i) i) (notb (lookup (delete s i) i)))
"""

_UNIQUE_BINFUNCS = """
let rec union (a : list) (b : list) : list =
  match a with
  | Nil -> b
  | Cons (hd, tl) -> insert (union tl b) hd

let rec inter (a : list) (b : list) : list =
  match a with
  | Nil -> Nil
  | Cons (hd, tl) ->
      (if lookup b hd then Cons (hd, inter tl b) else inter tl b)

let spec (s1 : list) (s2 : list) (i : nat) : bool =
  andb (notb (lookup empty i))
    (andb (lookup (insert s1 i) i)
      (andb (notb (lookup (delete s1 i) i))
        (andb (implb (orb (lookup s1 i) (lookup s2 i)) (lookup (union s1 s2) i))
              (implb (andb (lookup s1 i) (lookup s2 i)) (lookup (inter s1 s2) i)))))
"""

_UNIQUE_HOFS = """
let rec map (f : nat -> nat) (l : list) : list =
  match l with
  | Nil -> Nil
  | Cons (hd, tl) -> insert (map f tl) (f hd)

let rec filter (f : nat -> bool) (l : list) : list =
  match l with
  | Nil -> Nil
  | Cons (hd, tl) -> (if f hd then Cons (hd, filter f tl) else filter f tl)
"""

_UNIQUE_EXPECTED = """
let rec expected (l : list) : bool =
  match l with
  | Nil -> True
  | Cons (hd, tl) -> andb (notb (lookup tl hd)) (expected tl)
"""


def unique_list_set() -> ModuleDefinition:
    """The motivating example: list-based set, *no duplicates* invariant."""
    return make_definition(
        name="/coq/unique-list-::-set",
        group="coq",
        source=_UNIQUE_BASE + _UNIQUE_SPEC,
        concrete_type=LIST,
        operations=[
            ("empty", ABSTRACT),
            ("insert", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("delete", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("lookup", arrow(ABSTRACT, NAT, BOOL)),
        ],
        spec_signature=[ABSTRACT, NAT],
        components=["lookup"],
        expected_invariant=_UNIQUE_EXPECTED,
        description="Set as an integer list; no-duplicates representation invariant.",
    )


def unique_list_set_binfuncs() -> ModuleDefinition:
    """The unique-list set extended with binary ``union`` and ``inter``."""
    return make_definition(
        name="/coq/unique-list-::-set+binfuncs",
        group="coq",
        source=_UNIQUE_BASE + _UNIQUE_BINFUNCS,
        concrete_type=LIST,
        operations=[
            ("empty", ABSTRACT),
            ("insert", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("delete", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("lookup", arrow(ABSTRACT, NAT, BOOL)),
            ("union", arrow(ABSTRACT, ABSTRACT, ABSTRACT)),
            ("inter", arrow(ABSTRACT, ABSTRACT, ABSTRACT)),
        ],
        spec_signature=[ABSTRACT, ABSTRACT, NAT],
        components=["lookup"],
        expected_invariant=_UNIQUE_EXPECTED,
        description="Unique-list set with binary union/intersection and an n-ary spec.",
    )


def unique_list_set_hofs() -> ModuleDefinition:
    """The unique-list set extended with higher-order ``map`` and ``filter``."""
    return make_definition(
        name="/coq/unique-list-::-set+hofs",
        group="coq",
        source=_UNIQUE_BASE + _UNIQUE_HOFS + _UNIQUE_SPEC,
        concrete_type=LIST,
        operations=[
            ("empty", ABSTRACT),
            ("insert", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("delete", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("lookup", arrow(ABSTRACT, NAT, BOOL)),
            ("map", arrow(arrow(NAT, NAT), ABSTRACT, ABSTRACT)),
            ("filter", arrow(arrow(NAT, BOOL), ABSTRACT, ABSTRACT)),
        ],
        spec_signature=[ABSTRACT, NAT],
        components=["lookup"],
        expected_invariant=_UNIQUE_EXPECTED,
        description="Unique-list set with higher-order map/filter operations.",
    )


# ---------------------------------------------------------------------------
# Sorted-list sets
# ---------------------------------------------------------------------------

_SORTED_BASE = """
type list = Nil | Cons of nat * list

let empty : list = Nil

let rec lookup (l : list) (x : nat) : bool =
  match l with
  | Nil -> False
  | Cons (hd, tl) -> orb (nat_eq hd x) (lookup tl x)

let rec insert (l : list) (x : nat) : list =
  match l with
  | Nil -> Cons (x, Nil)
  | Cons (hd, tl) ->
      (if nat_lt x hd then Cons (x, Cons (hd, tl))
       else (if nat_eq x hd then Cons (hd, tl) else Cons (hd, insert tl x)))

let rec delete (l : list) (x : nat) : list =
  match l with
  | Nil -> Nil
  | Cons (hd, tl) -> (if nat_eq hd x then tl else Cons (hd, delete tl x))
"""

_SORTED_SPEC = """
let spec (s : list) (i : nat) : bool =
  andb (notb (lookup empty i))
    (andb (lookup (insert s i) i) (notb (lookup (delete s i) i)))
"""

_SORTED_BINFUNCS = """
let rec union (a : list) (b : list) : list =
  match a with
  | Nil -> b
  | Cons (hd, tl) -> insert (union tl b) hd

let rec inter (a : list) (b : list) : list =
  match a with
  | Nil -> Nil
  | Cons (hd, tl) ->
      (if lookup b hd then insert (inter tl b) hd else inter tl b)

let spec (s1 : list) (s2 : list) (i : nat) : bool =
  andb (notb (lookup empty i))
    (andb (lookup (insert s1 i) i)
      (andb (notb (lookup (delete s1 i) i))
        (andb (implb (orb (lookup s1 i) (lookup s2 i)) (lookup (union s1 s2) i))
              (implb (andb (lookup s1 i) (lookup s2 i)) (lookup (inter s1 s2) i)))))
"""

_SORTED_HOFS = """
let rec map (f : nat -> nat) (l : list) : list =
  match l with
  | Nil -> Nil
  | Cons (hd, tl) -> insert (map f tl) (f hd)

let rec filter (f : nat -> bool) (l : list) : list =
  match l with
  | Nil -> Nil
  | Cons (hd, tl) -> (if f hd then insert (filter f tl) hd else filter f tl)
"""

_SORTED_EXPECTED = """
let rec expected (l : list) : bool =
  match l with
  | Nil -> True
  | Cons (hd, tl) ->
      (match tl with
       | Nil -> True
       | Cons (hd2, tl2) -> andb (nat_lt hd hd2) (expected tl))
"""


def sorted_list_set() -> ModuleDefinition:
    """Set as a strictly sorted list; *ordered* representation invariant."""
    return make_definition(
        name="/coq/sorted-list-::-set",
        group="coq",
        source=_SORTED_BASE + _SORTED_SPEC,
        concrete_type=LIST,
        operations=[
            ("empty", ABSTRACT),
            ("insert", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("delete", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("lookup", arrow(ABSTRACT, NAT, BOOL)),
        ],
        spec_signature=[ABSTRACT, NAT],
        components=["lookup", "nat_lt"],
        expected_invariant=_SORTED_EXPECTED,
        description="Set as a strictly sorted list (insertion sort insert).",
    )


def sorted_list_set_binfuncs() -> ModuleDefinition:
    """The sorted-list set extended with binary ``union`` and ``inter``."""
    return make_definition(
        name="/coq/sorted-list-::-set+binfuncs",
        group="coq",
        source=_SORTED_BASE + _SORTED_BINFUNCS,
        concrete_type=LIST,
        operations=[
            ("empty", ABSTRACT),
            ("insert", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("delete", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("lookup", arrow(ABSTRACT, NAT, BOOL)),
            ("union", arrow(ABSTRACT, ABSTRACT, ABSTRACT)),
            ("inter", arrow(ABSTRACT, ABSTRACT, ABSTRACT)),
        ],
        spec_signature=[ABSTRACT, ABSTRACT, NAT],
        components=["lookup", "nat_lt"],
        expected_invariant=_SORTED_EXPECTED,
        description="Sorted-list set with binary union/intersection.",
    )


def sorted_list_set_hofs() -> ModuleDefinition:
    """The sorted-list set extended with higher-order ``map`` and ``filter``."""
    return make_definition(
        name="/coq/sorted-list-::-set+hofs",
        group="coq",
        source=_SORTED_BASE + _SORTED_HOFS + _SORTED_SPEC,
        concrete_type=LIST,
        operations=[
            ("empty", ABSTRACT),
            ("insert", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("delete", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("lookup", arrow(ABSTRACT, NAT, BOOL)),
            ("map", arrow(arrow(NAT, NAT), ABSTRACT, ABSTRACT)),
            ("filter", arrow(arrow(NAT, BOOL), ABSTRACT, ABSTRACT)),
        ],
        spec_signature=[ABSTRACT, NAT],
        components=["lookup", "nat_lt"],
        expected_invariant=_SORTED_EXPECTED,
        description="Sorted-list set with higher-order map/filter operations.",
    )
