"""The "Other" benchmark group: six additional problems of our own creation
"requiring reasoning over lists, natural numbers, monads and other basic data
structures" (Section 5.1).

* ``/other/cache`` - a membership structure that caches the most recently
  inserted element; the cache must always be a member of the underlying list.
* ``/other/listlike-tree`` - a binary tree used as a list (all data lives on
  the right spine); every left child must be a leaf.
* ``/other/nat-nat-option-::-range`` - an integer range with an emptiness
  marker; a non-empty range must have its lower bound below its upper bound.
* ``/other/rational`` - rationals as numerator/denominator pairs; the
  denominator must be non-zero.
* ``/other/sized-list`` - a list carrying its cached length; the cached
  length must equal the real length.
* ``/other/stutter-list`` - a list in which every element appears as an
  adjacent, unique pair.
"""

from __future__ import annotations

from ..core.module import ModuleDefinition
from ..lang.types import TData, TProd, arrow
from .common import ABSTRACT, BOOL, NAT, NATOPTION, make_definition

__all__ = [
    "cache",
    "listlike_tree",
    "nat_nat_option_range",
    "rational",
    "sized_list",
    "stutter_list",
]

LIST = TData("list")
TREE = TData("tree")
RANGE = TData("range")

# ---------------------------------------------------------------------------
# /other/cache
# ---------------------------------------------------------------------------

_CACHE_SOURCE = """
type list = Nil | Cons of nat * list

let rec list_lookup (l : list) (x : nat) : bool =
  match l with
  | Nil -> False
  | Cons (hd, tl) -> orb (nat_eq hd x) (list_lookup tl x)

let empty : natoption * list = (NoneN, Nil)

let insert (s : natoption * list) (x : nat) : natoption * list =
  match s with
  | (c, l) -> (SomeN x, Cons (x, l))

let lookup (s : natoption * list) (x : nat) : bool =
  match s with
  | (c, l) -> list_lookup l x

let cached (s : natoption * list) : natoption =
  match s with
  | (c, l) -> c

let spec (s : natoption * list) (i : nat) : bool =
  andb (notb (lookup empty i))
    (andb (lookup (insert s i) i)
          (match cached s with
           | NoneN -> True
           | SomeN c -> lookup s c))
"""

_CACHE_EXPECTED = """
let expected (s : natoption * list) : bool =
  match s with
  | (c, l) ->
      (match c with
       | NoneN -> True
       | SomeN y -> list_lookup l y)
"""


def cache() -> ModuleDefinition:
    """A membership structure with a most-recently-inserted cache."""
    return make_definition(
        name="/other/cache",
        group="other",
        source=_CACHE_SOURCE,
        concrete_type=TProd((NATOPTION, LIST)),
        operations=[
            ("empty", ABSTRACT),
            ("insert", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("lookup", arrow(ABSTRACT, NAT, BOOL)),
            ("cached", arrow(ABSTRACT, NATOPTION)),
        ],
        spec_signature=[ABSTRACT, NAT],
        components=["list_lookup", "is_someN"],
        expected_invariant=_CACHE_EXPECTED,
        description="Cached-member structure; the cache must be in the list.",
    )


# ---------------------------------------------------------------------------
# /other/listlike-tree
# ---------------------------------------------------------------------------

_LISTLIKE_SOURCE = """
type tree = Leaf | Node of tree * nat * tree

let empty : tree = Leaf

let cons (t : tree) (x : nat) : tree =
  Node (Leaf, x, t)

let rec lookup (t : tree) (x : nat) : bool =
  match t with
  | Leaf -> False
  | Node (lhs, label, rhs) ->
      orb (nat_eq label x) (orb (lookup lhs x) (lookup rhs x))

let rec remove (t : tree) (x : nat) : tree =
  match t with
  | Leaf -> Leaf
  | Node (lhs, label, rhs) ->
      (if nat_eq label x then remove rhs x else Node (lhs, label, remove rhs x))

let head (t : tree) : nat =
  match t with
  | Leaf -> O
  | Node (lhs, label, rhs) -> label

let tail (t : tree) : tree =
  match t with
  | Leaf -> Leaf
  | Node (lhs, label, rhs) -> rhs

let is_leaf (t : tree) : bool =
  match t with
  | Leaf -> True
  | Node (lhs, label, rhs) -> False

let spec (s : tree) (i : nat) : bool =
  andb (notb (lookup empty i))
    (andb (lookup (cons s i) i)
          (notb (lookup (remove s i) i)))
"""

_LISTLIKE_EXPECTED = """
let rec expected (t : tree) : bool =
  match t with
  | Leaf -> True
  | Node (lhs, label, rhs) -> andb (is_leaf lhs) (expected rhs)
"""


def listlike_tree() -> ModuleDefinition:
    """A binary tree used as a list: all data lives on the right spine."""
    return make_definition(
        name="/other/listlike-tree",
        group="other",
        source=_LISTLIKE_SOURCE,
        concrete_type=TREE,
        operations=[
            ("empty", ABSTRACT),
            ("cons", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("head", arrow(ABSTRACT, NAT)),
            ("tail", arrow(ABSTRACT, ABSTRACT)),
            ("lookup", arrow(ABSTRACT, NAT, BOOL)),
            ("remove", arrow(ABSTRACT, NAT, ABSTRACT)),
        ],
        spec_signature=[ABSTRACT, NAT],
        components=["lookup", "is_leaf"],
        expected_invariant=_LISTLIKE_EXPECTED,
        description="Tree-as-list; every left child must be a leaf.",
    )


# ---------------------------------------------------------------------------
# /other/nat-nat-option-::-range
# ---------------------------------------------------------------------------

_RANGE_SOURCE = """
type range = REmpty | RRange of nat * nat

let empty : range = REmpty

let add (r : range) (x : nat) : range =
  match r with
  | REmpty -> RRange (x, x)
  | RRange (lo, hi) -> RRange (nat_min lo x, nat_max hi x)

let contains (r : range) (x : nat) : bool =
  match r with
  | REmpty -> False
  | RRange (lo, hi) -> andb (nat_leq lo x) (nat_leq x hi)

let lower (r : range) : natoption =
  match r with
  | REmpty -> NoneN
  | RRange (lo, hi) -> SomeN lo

let upper (r : range) : natoption =
  match r with
  | REmpty -> NoneN
  | RRange (lo, hi) -> SomeN hi

let spec (r : range) (i : nat) : bool =
  andb (notb (contains empty i))
    (andb (contains (add r i) i)
      (andb (match lower r with | NoneN -> True | SomeN lo -> contains r lo)
            (match upper r with | NoneN -> True | SomeN hi -> contains r hi)))
"""

_RANGE_EXPECTED = """
let expected (r : range) : bool =
  match r with
  | REmpty -> True
  | RRange (lo, hi) -> nat_leq lo hi
"""


def nat_nat_option_range() -> ModuleDefinition:
    """An integer range; a non-empty range needs lower <= upper."""
    return make_definition(
        name="/other/nat-nat-option-::-range",
        group="other",
        source=_RANGE_SOURCE,
        concrete_type=RANGE,
        operations=[
            ("empty", ABSTRACT),
            ("add", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("contains", arrow(ABSTRACT, NAT, BOOL)),
            ("lower", arrow(ABSTRACT, NATOPTION)),
            ("upper", arrow(ABSTRACT, NATOPTION)),
        ],
        spec_signature=[ABSTRACT, NAT],
        components=["contains", "nat_leq"],
        expected_invariant=_RANGE_EXPECTED,
        description="Integer range with an emptiness marker.",
    )


# ---------------------------------------------------------------------------
# /other/rational
# ---------------------------------------------------------------------------

_RATIONAL_SOURCE = """
let rec mult (a : nat) (b : nat) : nat =
  match a with
  | O -> O
  | S x -> plus b (mult x b)

let whole (n : nat) : nat * nat = (n, S O)

let rat_add (a : nat * nat) (b : nat * nat) : nat * nat =
  match a with
  | (an, ad) -> (match b with
                 | (bn, bd) -> (plus (mult an bd) (mult bn ad), mult ad bd))

let rat_leq (a : nat * nat) (b : nat * nat) : bool =
  match a with
  | (an, ad) -> (match b with
                 | (bn, bd) -> nat_leq (mult an bd) (mult bn ad))

let rat_lt (a : nat * nat) (b : nat * nat) : bool =
  match a with
  | (an, ad) -> (match b with
                 | (bn, bd) -> nat_lt (mult an bd) (mult bn ad))

let numer (a : nat * nat) : nat =
  match a with
  | (an, ad) -> an

let denom (a : nat * nat) : nat =
  match a with
  | (an, ad) -> ad

let spec (r1 : nat * nat) (r2 : nat * nat) : bool =
  andb (rat_lt r1 (rat_add r1 (whole 1)))
    (andb (rat_leq r1 r1)
          (implb (rat_leq r1 r2) (rat_leq (rat_add r1 (whole 1)) (rat_add r2 (whole 1)))))
"""

_RATIONAL_EXPECTED = """
let expected (r : nat * nat) : bool =
  match r with
  | (n, d) -> nat_lt O d
"""


def rational() -> ModuleDefinition:
    """Rational numbers as numerator/denominator pairs; denominators are non-zero."""
    return make_definition(
        name="/other/rational",
        group="other",
        source=_RATIONAL_SOURCE,
        concrete_type=TProd((NAT, NAT)),
        operations=[
            ("whole", arrow(NAT, ABSTRACT)),
            ("rat_add", arrow(ABSTRACT, ABSTRACT, ABSTRACT)),
            ("rat_leq", arrow(ABSTRACT, ABSTRACT, BOOL)),
            ("numer", arrow(ABSTRACT, NAT)),
            ("denom", arrow(ABSTRACT, NAT)),
        ],
        spec_signature=[ABSTRACT, ABSTRACT],
        components=["nat_lt", "is_zero", "denom", "numer"],
        expected_invariant=_RATIONAL_EXPECTED,
        description="Rationals as pairs; the denominator must be non-zero.",
    )


# ---------------------------------------------------------------------------
# /other/sized-list
# ---------------------------------------------------------------------------

_SIZED_SOURCE = """
type list = Nil | Cons of nat * list

let rec len (l : list) : nat =
  match l with
  | Nil -> O
  | Cons (hd, tl) -> S (len tl)

let rec list_lookup (l : list) (x : nat) : bool =
  match l with
  | Nil -> False
  | Cons (hd, tl) -> orb (nat_eq hd x) (list_lookup tl x)

let empty : nat * list = (O, Nil)

let scons (s : nat * list) (x : nat) : nat * list =
  match s with
  | (n, l) -> (S n, Cons (x, l))

let stail (s : nat * list) : nat * list =
  match s with
  | (n, l) -> (match l with
               | Nil -> (O, Nil)
               | Cons (hd, tl) -> (pred n, tl))

let size (s : nat * list) : nat =
  match s with
  | (n, l) -> n

let shead (s : nat * list) : nat =
  match s with
  | (n, l) -> (match l with
               | Nil -> O
               | Cons (hd, tl) -> hd)

let lookup (s : nat * list) (x : nat) : bool =
  match s with
  | (n, l) -> list_lookup l x

let spec (s : nat * list) (i : nat) : bool =
  andb (notb (lookup empty i))
    (andb (lookup (scons s i) i)
      (andb (nat_eq (size (scons s i)) (S (size s)))
        (andb (implb (is_zero (size s)) (notb (lookup s i)))
              (implb (notb (is_zero (size s))) (lookup s (shead s))))))
"""

_SIZED_EXPECTED = """
let expected (s : nat * list) : bool =
  match s with
  | (n, l) -> nat_eq n (len l)
"""


def sized_list() -> ModuleDefinition:
    """A list paired with its cached length."""
    return make_definition(
        name="/other/sized-list",
        group="other",
        source=_SIZED_SOURCE,
        concrete_type=TProd((NAT, LIST)),
        operations=[
            ("empty", ABSTRACT),
            ("scons", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("stail", arrow(ABSTRACT, ABSTRACT)),
            ("size", arrow(ABSTRACT, NAT)),
            ("shead", arrow(ABSTRACT, NAT)),
            ("lookup", arrow(ABSTRACT, NAT, BOOL)),
        ],
        spec_signature=[ABSTRACT, NAT],
        components=["list_lookup", "len", "is_zero"],
        expected_invariant=_SIZED_EXPECTED,
        description="List with a cached length; the cache must equal the real length.",
    )


# ---------------------------------------------------------------------------
# /other/stutter-list
# ---------------------------------------------------------------------------

_STUTTER_SOURCE = """
type list = Nil | Cons of nat * list

let empty : list = Nil

let rec lookup (l : list) (x : nat) : bool =
  match l with
  | Nil -> False
  | Cons (hd, tl) -> orb (nat_eq hd x) (lookup tl x)

let push (l : list) (x : nat) : list =
  if lookup l x then l else Cons (x, Cons (x, l))

let rec delete (l : list) (x : nat) : list =
  match l with
  | Nil -> Nil
  | Cons (hd, tl) ->
      (if nat_eq hd x
       then (match tl with
             | Nil -> Nil
             | Cons (hd2, tl2) -> tl2)
       else Cons (hd, delete tl x))

let spec (s : list) (i : nat) : bool =
  andb (notb (lookup empty i))
    (andb (lookup (push s i) i)
          (notb (lookup (delete s i) i)))
"""

_STUTTER_EXPECTED = """
let rec expected (l : list) : bool =
  match l with
  | Nil -> True
  | Cons (hd, tl) ->
      (match tl with
       | Nil -> False
       | Cons (hd2, tl2) ->
           andb (nat_eq hd hd2) (andb (notb (lookup tl2 hd)) (expected tl2)))
"""


def stutter_list() -> ModuleDefinition:
    """A list in which each element appears as a unique adjacent pair."""
    return make_definition(
        name="/other/stutter-list",
        group="other",
        source=_STUTTER_SOURCE,
        concrete_type=LIST,
        operations=[
            ("empty", ABSTRACT),
            ("push", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("delete", arrow(ABSTRACT, NAT, ABSTRACT)),
            ("lookup", arrow(ABSTRACT, NAT, BOOL)),
        ],
        spec_signature=[ABSTRACT, NAT],
        components=["lookup"],
        expected_invariant=_STUTTER_EXPECTED,
        description="Stuttered list: each element occurs exactly as one adjacent pair.",
    )
