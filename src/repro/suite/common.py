"""Shared helpers for defining benchmark modules.

Every benchmark is a :class:`~repro.core.module.ModuleDefinition`: an
object-language source (module operations plus a specification function),
the interface signatures of its operations (written over the abstract type),
and synthesis metadata.  This module provides the type shorthands and a small
builder so the individual benchmark files stay close to the paper's
presentation.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..core.module import ModuleDefinition, Operation
from ..lang.prelude import DEFAULT_SYNTHESIS_COMPONENTS
from ..lang.types import TAbstract, TData, Type

__all__ = [
    "ABSTRACT",
    "NAT",
    "BOOL",
    "NATOPTION",
    "T",
    "make_definition",
    "DEFAULT_SYNTHESIS_COMPONENTS",
]

#: The abstract type of the module interface (``t`` in the paper's examples).
ABSTRACT = TAbstract()
#: Peano naturals from the prelude.
NAT = TData("nat")
#: Booleans from the prelude.
BOOL = TData("bool")
#: Optional naturals from the prelude.
NATOPTION = TData("natoption")
#: Alias used when writing operation signatures, mirroring ``val f : t -> ...``.
T = ABSTRACT


def make_definition(name: str, group: str, source: str, concrete_type: Type,
                    operations: Sequence[Tuple[str, Type]],
                    spec_signature: Sequence[Type],
                    spec_name: str = "spec",
                    components: Sequence[str] = (),
                    helpers: Sequence[str] = (),
                    expected_invariant: Optional[str] = None,
                    description: str = "") -> ModuleDefinition:
    """Assemble a :class:`ModuleDefinition` from the pieces a benchmark file
    naturally provides.

    ``components`` extends the default prelude component set with module
    operations and helper functions the synthesizer may call.
    """
    synthesis_components = tuple(dict.fromkeys(
        list(DEFAULT_SYNTHESIS_COMPONENTS) + list(components) + list(helpers)
    ))
    return ModuleDefinition(
        name=name,
        group=group,
        source=source,
        concrete_type=concrete_type,
        operations=tuple(Operation(op_name, signature) for op_name, signature in operations),
        spec_name=spec_name,
        spec_signature=tuple(spec_signature),
        synthesis_components=synthesis_components,
        helper_functions=tuple(helpers),
        expected_invariant=expected_invariant,
        description=description,
    )
