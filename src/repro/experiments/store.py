"""Persistent experiment results: append-only JSONL with resume support.

A :class:`ResultStore` wraps one JSONL file.  Each completed
:class:`~repro.core.result.InferenceResult` is appended as a single JSON line
(via ``InferenceResult.to_dict``) the moment it lands, so an interrupted sweep
loses at most the in-flight benchmarks.  On restart, :meth:`completed_pairs`
tells the harness which ``(benchmark, mode)`` pairs are already done and can
be skipped (the ``--resume`` flag of ``python -m repro run``).

A partially written final line - the signature of a run killed mid-append -
is tolerated and skipped on load.
"""

from __future__ import annotations

import json
import os
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from ..core.result import InferenceResult

__all__ = ["ResultStore"]


class ResultStore:
    """An append-only JSONL store of inference results.

    The store keeps no file handle open between operations: every
    :meth:`append` opens, writes one line, flushes, and closes, so results
    survive crashes and several processes may read the file while a sweep is
    still writing it.
    """

    def __init__(self, path: str, pack: Optional[str] = None,
                 pack_benchmarks: Optional[Sequence[str]] = None):
        self.path = os.fspath(path)
        #: When set, results appended through this store are tagged with the
        #: benchmark pack they came from (``repro run --pack`` sweeps).
        #: ``pack_benchmarks`` restricts the tag to those benchmark names, so
        #: a mixed built-in + pack sweep tags only the pack's rows.
        self.pack = pack
        self.pack_benchmarks = (frozenset(pack_benchmarks)
                                if pack_benchmarks is not None else None)

    # -- writing ----------------------------------------------------------------

    def append(self, result: InferenceResult) -> None:
        """Persist one result as a single JSON line (crash-safe: flushed and
        closed immediately)."""
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        record = result.to_dict()
        if (self.pack is not None and not record.get("pack")
                and (self.pack_benchmarks is None
                     or result.benchmark in self.pack_benchmarks)):
            record["pack"] = self.pack
        line = json.dumps(record, separators=(",", ":"), default=str)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    def extend(self, results: Sequence[InferenceResult]) -> None:
        for result in results:
            self.append(result)

    # -- reading ----------------------------------------------------------------

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def _iter_records(self) -> Iterator[dict]:
        if not self.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    # A truncated trailing line from an interrupted append;
                    # the pair it would have recorded simply re-runs.
                    continue

    def load(self) -> List[InferenceResult]:
        """Every stored result, in file (completion) order.

        Later entries win over earlier ones for the same ``(benchmark, mode,
        pack, variant)`` key, so re-running a pair into the same store
        supersedes its old row.  The pack tag is part of the key: a pack
        benchmark named like a built-in coexists with it instead of silently
        superseding it.  So is the variant tag: the differential fuzzer's
        cache-configuration rows for one pair all coexist.
        """
        by_key = {}
        for record in self._iter_records():
            result = InferenceResult.from_dict(record)
            by_key[(result.benchmark, result.mode, result.pack, result.variant)] = result
        return list(by_key.values())

    def completed_keys(self) -> Set[Tuple[str, str, Optional[str], Optional[str]]]:
        """The ``(benchmark, mode, pack, variant)`` keys already recorded -
        what ``--resume`` matches an :class:`~repro.experiments.runner
        .ExperimentTask.resume_key` against."""
        return {(record.get("benchmark"), record.get("mode"), record.get("pack"),
                 record.get("variant"))
                for record in self._iter_records()}

    def completed_pairs(self) -> Set[Tuple[str, str]]:
        """The bare ``(benchmark, mode)`` pairs already recorded.

        Pack-blind; kept for callers that do not sweep packs.  The resume
        path uses :meth:`completed_keys` so a pack benchmark and a same-named
        built-in are tracked separately.
        """
        return {(record.get("benchmark"), record.get("mode"))
                for record in self._iter_records()}

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_records())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ResultStore({self.path!r})"
