"""Experiment harnesses that regenerate the paper's tables and figures.

* :mod:`repro.experiments.figure7` - the per-benchmark results table.
* :mod:`repro.experiments.figure8` - benchmarks completed versus time per mode.
* :mod:`repro.experiments.figure5` - counterexample-list-caching traces.
"""

from .figure5 import run_figure5, trace_lines
from .figure7 import figure7_rows, run_figure7
from .figure8 import completion_series, mode_summary, run_figure8
from .report import format_table, rows_to_csv
from .runner import FIGURE8_MODES, MODES, PROFILES, paper_config, quick_config, run_benchmark, run_many

__all__ = [
    "run_benchmark",
    "run_many",
    "MODES",
    "FIGURE8_MODES",
    "PROFILES",
    "quick_config",
    "paper_config",
    "run_figure7",
    "figure7_rows",
    "run_figure8",
    "completion_series",
    "mode_summary",
    "run_figure5",
    "trace_lines",
    "format_table",
    "rows_to_csv",
]
