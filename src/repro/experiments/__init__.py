"""Experiment harnesses that regenerate the paper's tables and figures.

* :mod:`repro.experiments.runner` - the shared task model (``ExperimentTask``,
  ``expand_tasks``, ``execute_tasks``) and the serial execution path.
* :mod:`repro.experiments.parallel` - the multiprocessing pool with hard
  per-task timeouts (``ParallelRunner``).
* :mod:`repro.experiments.store` - append-only JSONL persistence with resume
  support (``ResultStore``).
* :mod:`repro.experiments.report` - the Figure-7 / Figure-8 table rendering.
* :mod:`repro.experiments.figure7` - the per-benchmark results table.
* :mod:`repro.experiments.figure8` - benchmarks completed versus time per mode.
* :mod:`repro.experiments.figure5` - counterexample-list-caching traces.
"""

from .figure5 import run_figure5, trace_lines
from .figure7 import figure7_rows, run_figure7
from .figure8 import completion_series, mode_summary, run_figure8
from .parallel import ParallelRunner
from .report import (
    FIGURE7_HEADERS,
    MODE_SUMMARY_HEADERS,
    format_table,
    group_by_mode,
    mode_summary_rows,
    render_results,
    rows_to_csv,
)
from .runner import (
    FIGURE8_MODES,
    MODE_DESCRIPTIONS,
    MODES,
    PROFILES,
    ExperimentTask,
    execute_task,
    execute_tasks,
    expand_tasks,
    paper_config,
    quick_config,
    run_benchmark,
    run_many,
    run_module,
)
from .store import ResultStore

__all__ = [
    # task model and serial runner
    "ExperimentTask",
    "expand_tasks",
    "execute_task",
    "execute_tasks",
    "run_module",
    "run_benchmark",
    "run_many",
    "MODES",
    "MODE_DESCRIPTIONS",
    "FIGURE8_MODES",
    "PROFILES",
    "quick_config",
    "paper_config",
    # parallel runner and persistence
    "ParallelRunner",
    "ResultStore",
    # figures
    "run_figure7",
    "figure7_rows",
    "run_figure8",
    "completion_series",
    "mode_summary",
    "run_figure5",
    "trace_lines",
    # reporting
    "FIGURE7_HEADERS",
    "MODE_SUMMARY_HEADERS",
    "format_table",
    "rows_to_csv",
    "group_by_mode",
    "mode_summary_rows",
    "render_results",
]
