"""Plain-text and CSV rendering of experiment results."""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["format_table", "rows_to_csv", "format_seconds"]


def format_seconds(value: Optional[float]) -> str:
    """Seconds with one decimal, ``t/o`` for None (timeout / not applicable)."""
    if value is None:
        return "t/o"
    return f"{value:.1f}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A fixed-width text table (the style of the paper's Figure 7)."""
    rendered_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    output = [line(headers), line(["-" * w for w in widths])]
    output.extend(line(row) for row in rendered_rows)
    return "\n".join(output)


def rows_to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """The same rows as CSV text (for saving alongside the paper's tables)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow([_cell(v) for v in row])
    return buffer.getvalue()


def _cell(value: object) -> str:
    if value is None:
        return "t/o"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
