"""Plain-text and CSV rendering of experiment results.

This module owns every presentation concern of the harness: the fixed-width
tables of the paper's Figure 7, the per-mode summary of Figure 8, and the CSV
exports.  It renders :class:`~repro.core.result.InferenceResult` objects
regardless of where they came from - a live serial run, the parallel runner,
or a JSONL file loaded through :class:`~repro.experiments.store.ResultStore` -
which is what lets ``python -m repro report results.jsonl`` regenerate the
tables of a sweep long after it finished.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.result import InferenceResult
from ..suite.registry import PAPER_RESULTS

__all__ = [
    "FIGURE7_HEADERS",
    "MODE_SUMMARY_HEADERS",
    "format_table",
    "rows_to_csv",
    "format_seconds",
    "figure7_rows",
    "group_by_mode",
    "mode_summary_rows",
    "render_results",
]

#: Column headers of the per-benchmark results table (the paper's Figure 7,
#: extended with the evaluation-cache and pool-cache hit/miss counters of
#: this reproduction, plus the static-tier verdict counters of the
#: verification ladder (StP/StR/StU: proofs, refutations, unknowns; all
#: zero under the default enumerative backend).
FIGURE7_HEADERS = ["Name", "Paper", "Status", "Size", "Time (s)", "TVT (s)", "TVC", "MVT (s)",
                   "TST (s)", "TSC", "MST (s)", "EvC hit", "EvC miss",
                   "PoC hit", "PoC miss", "StP", "StR", "StU"]

#: Column headers of the per-mode summary table (the shape of Figure 8).
MODE_SUMMARY_HEADERS = ["Mode", "Solved", "Benchmarks", "Mean solve time (s)", "Total time (s)"]


def format_seconds(value: Optional[float]) -> str:
    """Seconds with one decimal, ``t/o`` for None (timeout / not applicable)."""
    if value is None:
        return "t/o"
    return f"{value:.1f}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A fixed-width text table (the style of the paper's Figure 7)."""
    rendered_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    output = [line(headers), line(["-" * w for w in widths])]
    output.extend(line(row) for row in rendered_rows)
    return "\n".join(output)


def rows_to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """The same rows as CSV text (for saving alongside the paper's tables)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow([_cell(v) for v in row])
    return buffer.getvalue()


def _cell(value: object) -> str:
    if value is None:
        return "t/o"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


# -- result-table construction ---------------------------------------------------


def figure7_rows(results: Iterable[InferenceResult]) -> List[List[object]]:
    """Convert inference results into Figure-7 table rows."""
    rows: List[List[object]] = []
    for result in results:
        stats = result.stats
        paper_size = PAPER_RESULTS.get(result.benchmark, "?")
        rows.append([
            result.benchmark,
            paper_size if paper_size is not None else None,
            result.status,
            result.invariant_size,
            stats.total_time,
            stats.verification_time,
            stats.verification_calls,
            stats.mean_verification_time,
            stats.synthesis_time,
            stats.synthesis_calls,
            stats.mean_synthesis_time,
            stats.eval_cache_hits,
            stats.eval_cache_misses,
            stats.pool_cache_hits,
            stats.pool_cache_misses,
            stats.static_proofs,
            stats.static_refutations,
            stats.static_unknowns,
        ])
    return rows


def group_by_mode(results: Iterable[InferenceResult]) -> Dict[str, List[InferenceResult]]:
    """Partition a flat result list by mode, preserving encounter order."""
    grouped: Dict[str, List[InferenceResult]] = {}
    for result in results:
        grouped.setdefault(result.mode, []).append(result)
    return grouped


def mode_summary_rows(grouped: Dict[str, List[InferenceResult]]) -> List[List[object]]:
    """Summary rows: mode, solved count, total benchmarks, mean/total solve time."""
    rows: List[List[object]] = []
    for mode, mode_results in grouped.items():
        solved = [r for r in mode_results if r.succeeded]
        total_time = sum(r.stats.total_time for r in mode_results)
        mean_time = (sum(r.stats.total_time for r in solved) / len(solved)) if solved else None
        rows.append([mode, len(solved), len(mode_results), mean_time, total_time])
    return rows


def render_results(results: Sequence[InferenceResult]) -> str:
    """The full text report of a sweep: one Figure-7 table per mode, then the
    per-mode summary when more than one mode was run."""
    grouped = group_by_mode(results)
    sections: List[str] = []
    for mode, mode_results in grouped.items():
        sections.append(f"=== mode: {mode} ({len(mode_results)} benchmarks) ===")
        sections.append(format_table(FIGURE7_HEADERS, figure7_rows(mode_results)))
        sections.append("")
    if len(grouped) > 1:
        sections.append("=== per-mode summary (Figure 8) ===")
        sections.append(format_table(MODE_SUMMARY_HEADERS, mode_summary_rows(grouped)))
        sections.append("")
    return "\n".join(sections).rstrip() + "\n"
