"""Parallel experiment execution: a process pool with hard per-task timeouts.

The serial runner relies on the cooperative :class:`~repro.core.config.Deadline`
polled inside the verifier and synthesizer hot loops.  That is usually enough,
but a sweep at paper bounds cannot afford a single wedged worker (a pathological
evaluation that never reaches a deadline check) stalling the whole run.  The
:class:`ParallelRunner` therefore runs every
:class:`~repro.experiments.runner.ExperimentTask` in its own worker process and
enforces a wall-clock deadline *from the parent*: a worker that outlives its
budget is terminated and its task recorded as a timeout, while the rest of the
sweep continues unaffected.

Results cross the process boundary as ``InferenceResult.to_dict()`` payloads -
the same JSON-safe representation the result store persists - so workers never
need to pickle live :class:`~repro.core.predicate.Predicate` closures.

Workers also *stream*: each worker replaces any sinks it inherited from the
parent (it must not write the parent's trace file directly) with a
:class:`~repro.obs.sinks.QueueSink` over a shared event queue, plus a
heartbeat thread for long-silent phases.  The parent drains the queue on
every poll tick, forwards the records to its own installed sinks (the
``--trace`` file, the live renderer), and remembers each task's last record -
so a worker killed on timeout reports *where* it hung (last phase and
timestamp) instead of just "timeout".
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from multiprocessing.connection import wait as connection_wait
from queue import Empty
from typing import Callable, Dict, List, Optional, Sequence

from ..core.result import InferenceResult, Status
from ..core.stats import InferenceStats
from ..obs.events import SCHEMA_VERSION
from ..obs.sinks import QueueSink, install_sink, installed_sinks, reset_sinks
from .runner import ExperimentTask, execute_task, quick_config

__all__ = ["ParallelRunner", "WorkerHandle", "DEFAULT_TIMEOUT_GRACE",
           "DEFAULT_HEARTBEAT_INTERVAL"]

#: Seconds granted beyond a task's cooperative timeout before the parent kills
#: the worker: the cooperative deadline should fire first, the pool-level kill
#: is the backstop for workers stuck somewhere that never polls it.
DEFAULT_TIMEOUT_GRACE = 30.0

#: Seconds between a worker's heartbeat records.  Heartbeats ride the same
#: event queue as trace records, so even a worker wedged inside one long
#: evaluation keeps telling the parent it is alive (and when it last spoke).
DEFAULT_HEARTBEAT_INTERVAL = 15.0


def _result_payload(task: ExperimentTask, status: str, message: str,
                    elapsed: float = 0.0) -> dict:
    """A ``to_dict``-shaped payload for a task that produced no result itself."""
    stats = InferenceStats()
    stats.started_at = 0.0
    stats.finished_at = elapsed
    return InferenceResult(
        benchmark=task.benchmark,
        mode=task.mode,
        status=status,
        invariant=None,
        stats=stats,
        message=message,
        variant=task.variant,
    ).to_dict()


def _heartbeat_loop(sink: QueueSink, label: str, interval: float,
                    stop: threading.Event) -> None:
    """Emit one ``stream``-category heartbeat record per interval until told
    to stop.  Runs on a daemon thread, so a worker wedged inside one long
    evaluation (never returning to Python-level instrumentation) still
    reports liveness.  Heartbeats carry their own sequence counter - they are
    runner-level records, not part of any emitter's ordered stream."""
    start = time.monotonic()
    seq = 0
    while not stop.wait(interval):
        seq += 1
        sink.handle({
            "v": SCHEMA_VERSION,
            "seq": seq,
            "ts": round(time.monotonic() - start, 3),
            "run": label,
            "kind": "event",
            "cat": "stream",
            "name": "heartbeat",
            "span": None,
        })


def _worker(task: ExperimentTask, conn, events=None,
            heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL) -> None:
    """Worker entry point: run one task, send its dict payload, exit.

    When an event queue is supplied the worker streams: it drops any sinks
    inherited from the parent (under ``fork`` that includes the parent's open
    trace file, which only the parent may write) and installs a single
    :class:`QueueSink`, so every trace record crosses the queue tagged with
    this task's label.
    """
    stop = None
    if events is not None:
        reset_sinks()
        sink = install_sink(QueueSink(events, task=task.label))
        stop = threading.Event()
        threading.Thread(
            target=_heartbeat_loop,
            args=(sink, task.label, heartbeat_interval, stop),
            daemon=True,
        ).start()
    try:
        payload = execute_task(task).to_dict()
    except BaseException as exc:  # noqa: BLE001 - report, don't crash silently
        payload = _result_payload(task, Status.FAILURE, f"worker error: {exc!r}")
    finally:
        if stop is not None:
            stop.set()
    try:
        conn.send(payload)
    finally:
        conn.close()


def _default_context():
    """Prefer ``fork`` (workers inherit the loaded benchmark registry for
    free); fall back to the platform default where fork is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class WorkerHandle:
    """One spawned worker process executing a single :class:`ExperimentTask`.

    Owns the process, the result pipe, and the start timestamp, and
    centralizes the delicate lifecycle steps every pool needs - last-chance
    payload polling, termination, reaping.  Shared by the sweep-level
    :class:`ParallelRunner` and the service's job scheduler
    (:mod:`repro.serve.jobs`), so both enforce timeouts and detect dead
    workers with identical semantics.
    """

    def __init__(self, process, conn, started: float) -> None:
        self.process = process
        self.conn = conn
        self.started = started

    @classmethod
    def spawn(cls, ctx, task: ExperimentTask, events=None,
              heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL
              ) -> "WorkerHandle":
        """Start a worker for ``task`` under the multiprocessing context."""
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker,
            args=(task, child_conn, events, heartbeat_interval),
            daemon=True)
        process.start()
        child_conn.close()
        return cls(process, parent_conn, time.monotonic())

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self.started

    @property
    def exitcode(self):
        return self.process.exitcode

    def is_alive(self) -> bool:
        return self.process.is_alive()

    def poll_payload(self) -> Optional[dict]:
        """The worker's result payload if one is buffered, else ``None``.

        Also called right before fabricating a timeout/failure payload: a
        worker may deliver its real result (and even exit) between poll
        ticks, and that result must win over a fabricated one.  EOF (the
        pipe closed with nothing buffered - e.g. right after a terminate)
        counts as no payload.
        """
        if not self.conn.poll():
            return None
        try:
            return self.conn.recv()
        except EOFError:
            return None

    def terminate(self) -> None:
        self.process.terminate()

    def reap(self) -> None:
        """Close the pipe and join the process, escalating to kill."""
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stubborn worker
            self.process.kill()
            self.process.join(timeout=5.0)


class ParallelRunner:
    """Fan ``(benchmark, mode)`` tasks out over a pool of worker processes.

    Parameters
    ----------
    jobs:
        Worker process count; defaults to ``os.cpu_count()``.
    task_timeout:
        Hard wall-clock budget per task, in seconds.  When ``None`` the budget
        is derived from each task's config: its cooperative
        ``timeout_seconds`` plus :data:`DEFAULT_TIMEOUT_GRACE` (no hard budget
        for configs without a timeout).
    mp_context:
        A ``multiprocessing`` context, for tests or platform overrides.
    stream_events:
        Whether workers stream trace records back to the parent.  ``None``
        (the default) streams exactly when the parent has sinks installed -
        a sweep without ``--trace``/``--live`` keeps workers at true
        zero-cost tracing.  ``True`` forces streaming (the last-event
        bookkeeping still improves timeout reports even with no sinks);
        ``False`` disables it.
    """

    def __init__(self, jobs: Optional[int] = None,
                 task_timeout: Optional[float] = None,
                 timeout_grace: float = DEFAULT_TIMEOUT_GRACE,
                 mp_context=None,
                 poll_interval: float = 0.05,
                 stream_events: Optional[bool] = None,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL):
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.task_timeout = task_timeout
        self.timeout_grace = timeout_grace
        self.poll_interval = poll_interval
        self.stream_events = stream_events
        self.heartbeat_interval = heartbeat_interval
        self._ctx = mp_context if mp_context is not None else _default_context()

    def _budget_for(self, task: ExperimentTask) -> Optional[float]:
        if self.task_timeout is not None:
            return self.task_timeout
        # Tasks without an explicit config run under execute_task's
        # quick_config() fallback; derive the backstop from the same default.
        config = task.config if task.config is not None else quick_config()
        if config.timeout_seconds is not None:
            return config.timeout_seconds + self.timeout_grace
        return None

    def run(self, tasks: Sequence[ExperimentTask],
            progress: Optional[Callable[[InferenceResult], None]] = None,
            store=None) -> List[InferenceResult]:
        """Run every task; return results in task order.

        Results are appended to ``store`` and reported to ``progress`` in
        *completion* order, the moment each worker finishes; the returned list
        matches the input task order so callers can zip them.
        """
        tasks = list(tasks)
        results: List[Optional[InferenceResult]] = [None] * len(tasks)
        queue = deque(enumerate(tasks))
        live: Dict[int, WorkerHandle] = {}
        stream = (self.stream_events if self.stream_events is not None
                  else bool(installed_sinks()))
        events = self._ctx.Queue() if stream else None
        last_event: Dict[str, dict] = {}

        def finish(index: int, payload: dict) -> None:
            result = InferenceResult.from_dict(payload)
            results[index] = result
            if store is not None:
                store.append(result)
            if progress is not None:
                progress(result)

        try:
            while queue or live:
                while queue and len(live) < self.jobs:
                    index, task = queue.popleft()
                    live[index] = WorkerHandle.spawn(
                        self._ctx, task, events, self.heartbeat_interval)

                # Sleep until some worker has output ready (or a short poll
                # tick passes, so timeout enforcement stays responsive).
                connection_wait([handle.conn for handle in live.values()],
                                timeout=self.poll_interval)
                self._drain_events(events, last_event)

                for index in list(live):
                    handle = live[index]
                    task = tasks[index]
                    elapsed = handle.elapsed

                    payload = handle.poll_payload()
                    if payload is not None:
                        live.pop(index).reap()
                        finish(index, payload)
                        continue

                    budget = self._budget_for(task)
                    if budget is not None and elapsed > budget:
                        handle.terminate()
                        payload = handle.poll_payload() or _result_payload(
                            task, Status.TIMEOUT,
                            f"killed by the pool after {elapsed:.1f}s "
                            f"(hard budget {budget:.1f}s)"
                            f"{self._last_event_suffix(last_event, task)}",
                            elapsed)
                        live.pop(index).reap()
                        finish(index, payload)
                        continue

                    if not handle.is_alive():
                        payload = handle.poll_payload() or _result_payload(
                            task, Status.FAILURE,
                            f"worker died with exit code {handle.exitcode}"
                            f"{self._last_event_suffix(last_event, task)}",
                            elapsed)
                        live.pop(index).reap()
                        finish(index, payload)
        finally:
            for handle in live.values():
                handle.terminate()
                handle.reap()
            # One last drain: records buffered before the workers exited
            # still belong in the parent's sinks.
            self._drain_events(events, last_event)
            if events is not None:
                events.close()
                # The feeder thread may hold undelivered records from workers
                # we just terminated; don't let interpreter shutdown block on
                # them.
                events.cancel_join_thread()

        return list(results)

    def _drain_events(self, events, last_event: Dict[str, dict]) -> None:
        """Forward queued worker records to the parent's installed sinks and
        remember the freshest record per task label."""
        if events is None:
            return
        sinks = installed_sinks()
        while True:
            try:
                record = events.get_nowait()
            except Empty:
                return
            except (OSError, ValueError):  # pragma: no cover - queue closed
                return
            label = record.get("task")
            if label is not None:
                # Heartbeats prove liveness but say nothing about *where* the
                # worker is; only let one stand in when no real record exists.
                if record.get("cat") != "stream" or label not in last_event:
                    last_event[label] = record
            for sink in sinks:
                sink.handle(record)

    @staticmethod
    def _last_event_suffix(last_event: Dict[str, dict],
                           task: ExperimentTask) -> str:
        """``; last event: ...`` for a killed task, naming the phase (event or
        span name) the worker last reported and when - empty when the task
        never streamed anything."""
        record = last_event.get(task.label)
        if record is None:
            return ""
        return f"; last event: {record.get('name')} at t={record.get('ts')}"
