"""Parallel experiment execution: a process pool with hard per-task timeouts.

The serial runner relies on the cooperative :class:`~repro.core.config.Deadline`
polled inside the verifier and synthesizer hot loops.  That is usually enough,
but a sweep at paper bounds cannot afford a single wedged worker (a pathological
evaluation that never reaches a deadline check) stalling the whole run.  The
:class:`ParallelRunner` therefore runs every
:class:`~repro.experiments.runner.ExperimentTask` in its own worker process and
enforces a wall-clock deadline *from the parent*: a worker that outlives its
budget is terminated and its task recorded as a timeout, while the rest of the
sweep continues unaffected.

Results cross the process boundary as ``InferenceResult.to_dict()`` payloads -
the same JSON-safe representation the result store persists - so workers never
need to pickle live :class:`~repro.core.predicate.Predicate` closures.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from multiprocessing.connection import wait as connection_wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.result import InferenceResult, Status
from ..core.stats import InferenceStats
from .runner import ExperimentTask, execute_task, quick_config

__all__ = ["ParallelRunner", "DEFAULT_TIMEOUT_GRACE"]

#: Seconds granted beyond a task's cooperative timeout before the parent kills
#: the worker: the cooperative deadline should fire first, the pool-level kill
#: is the backstop for workers stuck somewhere that never polls it.
DEFAULT_TIMEOUT_GRACE = 30.0


def _result_payload(task: ExperimentTask, status: str, message: str,
                    elapsed: float = 0.0) -> dict:
    """A ``to_dict``-shaped payload for a task that produced no result itself."""
    stats = InferenceStats()
    stats.started_at = 0.0
    stats.finished_at = elapsed
    return InferenceResult(
        benchmark=task.benchmark,
        mode=task.mode,
        status=status,
        invariant=None,
        stats=stats,
        message=message,
        variant=task.variant,
    ).to_dict()


def _worker(task: ExperimentTask, conn) -> None:
    """Worker entry point: run one task, send its dict payload, exit."""
    try:
        payload = execute_task(task).to_dict()
    except BaseException as exc:  # noqa: BLE001 - report, don't crash silently
        payload = _result_payload(task, Status.FAILURE, f"worker error: {exc!r}")
    try:
        conn.send(payload)
    finally:
        conn.close()


def _default_context():
    """Prefer ``fork`` (workers inherit the loaded benchmark registry for
    free); fall back to the platform default where fork is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class ParallelRunner:
    """Fan ``(benchmark, mode)`` tasks out over a pool of worker processes.

    Parameters
    ----------
    jobs:
        Worker process count; defaults to ``os.cpu_count()``.
    task_timeout:
        Hard wall-clock budget per task, in seconds.  When ``None`` the budget
        is derived from each task's config: its cooperative
        ``timeout_seconds`` plus :data:`DEFAULT_TIMEOUT_GRACE` (no hard budget
        for configs without a timeout).
    mp_context:
        A ``multiprocessing`` context, for tests or platform overrides.
    """

    def __init__(self, jobs: Optional[int] = None,
                 task_timeout: Optional[float] = None,
                 timeout_grace: float = DEFAULT_TIMEOUT_GRACE,
                 mp_context=None,
                 poll_interval: float = 0.05):
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.task_timeout = task_timeout
        self.timeout_grace = timeout_grace
        self.poll_interval = poll_interval
        self._ctx = mp_context if mp_context is not None else _default_context()

    def _budget_for(self, task: ExperimentTask) -> Optional[float]:
        if self.task_timeout is not None:
            return self.task_timeout
        # Tasks without an explicit config run under execute_task's
        # quick_config() fallback; derive the backstop from the same default.
        config = task.config if task.config is not None else quick_config()
        if config.timeout_seconds is not None:
            return config.timeout_seconds + self.timeout_grace
        return None

    def run(self, tasks: Sequence[ExperimentTask],
            progress: Optional[Callable[[InferenceResult], None]] = None,
            store=None) -> List[InferenceResult]:
        """Run every task; return results in task order.

        Results are appended to ``store`` and reported to ``progress`` in
        *completion* order, the moment each worker finishes; the returned list
        matches the input task order so callers can zip them.
        """
        tasks = list(tasks)
        results: List[Optional[InferenceResult]] = [None] * len(tasks)
        queue = deque(enumerate(tasks))
        live: Dict[int, Tuple[object, object, float]] = {}

        def finish(index: int, payload: dict) -> None:
            result = InferenceResult.from_dict(payload)
            results[index] = result
            if store is not None:
                store.append(result)
            if progress is not None:
                progress(result)

        try:
            while queue or live:
                while queue and len(live) < self.jobs:
                    index, task = queue.popleft()
                    parent_conn, child_conn = self._ctx.Pipe(duplex=False)
                    process = self._ctx.Process(
                        target=_worker, args=(task, child_conn), daemon=True)
                    process.start()
                    child_conn.close()
                    live[index] = (process, parent_conn, time.monotonic())

                # Sleep until some worker has output ready (or a short poll
                # tick passes, so timeout enforcement stays responsive).
                connection_wait([conn for _, conn, _ in live.values()],
                                timeout=self.poll_interval)

                for index in list(live):
                    process, conn, started = live[index]
                    task = tasks[index]
                    elapsed = time.monotonic() - started

                    def received_payload():
                        # Called again before fabricating a timeout/failure
                        # payload: a worker may deliver its real result (and
                        # even exit) between our poll ticks, and that result
                        # must win over a fabricated one.  EOF (the pipe
                        # closed with nothing buffered - e.g. right after we
                        # terminated the worker) counts as no payload.
                        if not conn.poll():
                            return None
                        try:
                            return conn.recv()
                        except EOFError:
                            return None

                    payload = received_payload()
                    if payload is not None:
                        self._reap(live.pop(index))
                        finish(index, payload)
                        continue

                    budget = self._budget_for(task)
                    if budget is not None and elapsed > budget:
                        process.terminate()
                        payload = received_payload() or _result_payload(
                            task, Status.TIMEOUT,
                            f"killed by the pool after {elapsed:.1f}s "
                            f"(hard budget {budget:.1f}s)",
                            elapsed)
                        self._reap(live.pop(index))
                        finish(index, payload)
                        continue

                    if not process.is_alive():
                        payload = received_payload() or _result_payload(
                            task, Status.FAILURE,
                            f"worker died with exit code {process.exitcode}",
                            elapsed)
                        self._reap(live.pop(index))
                        finish(index, payload)
        finally:
            for process, conn, _ in live.values():
                process.terminate()
                self._reap((process, conn, 0.0))

        return list(results)

    @staticmethod
    def _reap(entry) -> None:
        process, conn, _ = entry
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - stubborn worker
            process.kill()
            process.join(timeout=5.0)
