"""Running benchmarks under the different inference modes.

The evaluation of Section 5 compares six modes on the same benchmark suite:

======================  ====================================================
mode name               meaning
======================  ====================================================
``hanoi``               the full Hanoi tool (both optimizations enabled)
``hanoi-src``           Hanoi with synthesis result caching disabled
``hanoi-clc``           Hanoi with counterexample list caching disabled
``conj-str``            the ∧Str (LoopInvGen-style) baseline
``linear-arbitrary``    the LA (LinearArbitrary-style) baseline
``oneshot``             the OneShot baseline
``hanoi-fold``          Hanoi with the fold-capable prototype synthesizer
                        (Section 5.4; not part of Figure 8 but reported in
                        the text)
======================  ====================================================

Two configuration profiles are provided: ``quick`` (small verifier bounds and
short timeouts, suitable for CI and for the pytest-benchmark harness) and
``paper`` (the bounds of Section 4.3 and a 30-minute timeout, matching the
paper's experimental setup).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional

from ..baselines.conj_str import ConjunctiveStrengtheningInference
from ..baselines.linear_arbitrary import LinearArbitraryInference
from ..baselines.oneshot import OneShotInference
from ..core.config import FAST_VERIFIER_BOUNDS, HanoiConfig, PAPER_VERIFIER_BOUNDS
from ..core.hanoi import HanoiInference
from ..core.module import ModuleDefinition
from ..core.result import InferenceResult
from ..suite.registry import all_benchmark_names, get_benchmark
from ..synth.folds import FoldSynthesizer

__all__ = ["MODES", "PROFILES", "quick_config", "paper_config", "run_benchmark", "run_many"]


def quick_config(timeout_seconds: Optional[float] = 60.0) -> HanoiConfig:
    """The CI-friendly profile: small verifier bounds, one-minute timeout."""
    return HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=timeout_seconds)


def paper_config(timeout_seconds: Optional[float] = 1800.0) -> HanoiConfig:
    """The paper's profile: Section 4.3 bounds, 30-minute timeout."""
    return HanoiConfig(verifier_bounds=PAPER_VERIFIER_BOUNDS, timeout_seconds=timeout_seconds)


PROFILES: Dict[str, Callable[[Optional[float]], HanoiConfig]] = {
    "quick": quick_config,
    "paper": paper_config,
}


def _run_hanoi(definition: ModuleDefinition, config: HanoiConfig) -> InferenceResult:
    return HanoiInference(definition, config=config, mode_name="hanoi").infer()


def _run_hanoi_src(definition: ModuleDefinition, config: HanoiConfig) -> InferenceResult:
    config = config.without_synthesis_result_caching()
    return HanoiInference(definition, config=config, mode_name="hanoi-src").infer()


def _run_hanoi_clc(definition: ModuleDefinition, config: HanoiConfig) -> InferenceResult:
    config = config.without_counterexample_list_caching()
    return HanoiInference(definition, config=config, mode_name="hanoi-clc").infer()


def _run_hanoi_fold(definition: ModuleDefinition, config: HanoiConfig) -> InferenceResult:
    return HanoiInference(
        definition, config=config, synthesizer_factory=FoldSynthesizer, mode_name="hanoi-fold"
    ).infer()


def _run_conj_str(definition: ModuleDefinition, config: HanoiConfig) -> InferenceResult:
    return ConjunctiveStrengtheningInference(definition, config=config).infer()


def _run_linear_arbitrary(definition: ModuleDefinition, config: HanoiConfig) -> InferenceResult:
    return LinearArbitraryInference(definition, config=config).infer()


def _run_oneshot(definition: ModuleDefinition, config: HanoiConfig) -> InferenceResult:
    return OneShotInference(definition, config=config).infer()


MODES: Dict[str, Callable[[ModuleDefinition, HanoiConfig], InferenceResult]] = {
    "hanoi": _run_hanoi,
    "hanoi-src": _run_hanoi_src,
    "hanoi-clc": _run_hanoi_clc,
    "conj-str": _run_conj_str,
    "linear-arbitrary": _run_linear_arbitrary,
    "oneshot": _run_oneshot,
    "hanoi-fold": _run_hanoi_fold,
}

#: The six modes plotted in Figure 8, in the legend's order.
FIGURE8_MODES = ["hanoi", "hanoi-src", "hanoi-clc", "conj-str", "linear-arbitrary", "oneshot"]


def run_benchmark(name: str, mode: str = "hanoi",
                  config: Optional[HanoiConfig] = None) -> InferenceResult:
    """Run one benchmark under one mode and return the result."""
    if mode not in MODES:
        raise KeyError(f"unknown mode {mode!r}; known: {sorted(MODES)}")
    definition = get_benchmark(name)
    return MODES[mode](definition, config or quick_config())


def run_many(names: Optional[Iterable[str]] = None, mode: str = "hanoi",
             config: Optional[HanoiConfig] = None,
             progress: Optional[Callable[[InferenceResult], None]] = None) -> List[InferenceResult]:
    """Run a list of benchmarks (all of them by default) under one mode."""
    results = []
    for name in (names if names is not None else all_benchmark_names()):
        result = run_benchmark(name, mode=mode, config=config)
        results.append(result)
        if progress is not None:
            progress(result)
    return results
