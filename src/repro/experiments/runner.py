"""Running benchmarks under the different inference modes.

The evaluation of Section 5 compares six modes on the same benchmark suite:

======================  ====================================================
mode name               meaning
======================  ====================================================
``hanoi``               the full Hanoi tool (both optimizations enabled)
``hanoi-src``           Hanoi with synthesis result caching disabled
``hanoi-clc``           Hanoi with counterexample list caching disabled
``conj-str``            the ∧Str (LoopInvGen-style) baseline
``linear-arbitrary``    the LA (LinearArbitrary-style) baseline
``oneshot``             the OneShot baseline
``hanoi-fold``          Hanoi with the fold-capable prototype synthesizer
                        (Section 5.4; not part of Figure 8 but reported in
                        the text)
======================  ====================================================

Two configuration profiles are provided: ``quick`` (small verifier bounds and
short timeouts, suitable for CI and for the pytest-benchmark harness) and
``paper`` (the bounds of Section 4.3 and a 30-minute timeout, matching the
paper's experimental setup).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..baselines.conj_str import ConjunctiveStrengtheningInference
from ..baselines.linear_arbitrary import LinearArbitraryInference
from ..baselines.oneshot import OneShotInference
from ..core.config import FAST_VERIFIER_BOUNDS, HanoiConfig, PAPER_VERIFIER_BOUNDS
from ..core.hanoi import HanoiInference
from ..core.module import ModuleDefinition
from ..core.result import InferenceResult
from ..suite.registry import all_benchmark_names, get_benchmark
from ..synth.folds import FoldSynthesizer

__all__ = [
    "MODES",
    "MODE_DESCRIPTIONS",
    "PROFILES",
    "ExperimentTask",
    "quick_config",
    "paper_config",
    "run_module",
    "run_benchmark",
    "run_many",
    "expand_tasks",
    "execute_task",
    "execute_tasks",
]


def quick_config(timeout_seconds: Optional[float] = 60.0) -> HanoiConfig:
    """The CI-friendly profile: small verifier bounds, one-minute timeout."""
    return HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=timeout_seconds)


def paper_config(timeout_seconds: Optional[float] = 1800.0) -> HanoiConfig:
    """The paper's profile: Section 4.3 bounds, 30-minute timeout."""
    return HanoiConfig(verifier_bounds=PAPER_VERIFIER_BOUNDS, timeout_seconds=timeout_seconds)


PROFILES: Dict[str, Callable[[Optional[float]], HanoiConfig]] = {
    "quick": quick_config,
    "paper": paper_config,
}


def _run_hanoi(definition: ModuleDefinition, config: HanoiConfig) -> InferenceResult:
    return HanoiInference(definition, config=config, mode_name="hanoi").infer()


def _run_hanoi_src(definition: ModuleDefinition, config: HanoiConfig) -> InferenceResult:
    config = config.without_synthesis_result_caching()
    return HanoiInference(definition, config=config, mode_name="hanoi-src").infer()


def _run_hanoi_clc(definition: ModuleDefinition, config: HanoiConfig) -> InferenceResult:
    config = config.without_counterexample_list_caching()
    return HanoiInference(definition, config=config, mode_name="hanoi-clc").infer()


def _run_hanoi_fold(definition: ModuleDefinition, config: HanoiConfig) -> InferenceResult:
    return HanoiInference(
        definition, config=config, synthesizer_factory=FoldSynthesizer, mode_name="hanoi-fold"
    ).infer()


def _run_conj_str(definition: ModuleDefinition, config: HanoiConfig) -> InferenceResult:
    return ConjunctiveStrengtheningInference(definition, config=config).infer()


def _run_linear_arbitrary(definition: ModuleDefinition, config: HanoiConfig) -> InferenceResult:
    return LinearArbitraryInference(definition, config=config).infer()


def _run_oneshot(definition: ModuleDefinition, config: HanoiConfig) -> InferenceResult:
    return OneShotInference(definition, config=config).infer()


MODES: Dict[str, Callable[[ModuleDefinition, HanoiConfig], InferenceResult]] = {
    "hanoi": _run_hanoi,
    "hanoi-src": _run_hanoi_src,
    "hanoi-clc": _run_hanoi_clc,
    "conj-str": _run_conj_str,
    "linear-arbitrary": _run_linear_arbitrary,
    "oneshot": _run_oneshot,
    "hanoi-fold": _run_hanoi_fold,
}

#: The six modes plotted in Figure 8, in the legend's order.
FIGURE8_MODES = ["hanoi", "hanoi-src", "hanoi-clc", "conj-str", "linear-arbitrary", "oneshot"]

#: One-line description per mode (the module docstring's table, programmatically;
#: rendered by ``python -m repro list`` and docs/modes.md).
MODE_DESCRIPTIONS: Dict[str, str] = {
    "hanoi": "the full Hanoi tool (both Section 4.4 optimizations enabled)",
    "hanoi-src": "Hanoi with synthesis result caching disabled (ablation)",
    "hanoi-clc": "Hanoi with counterexample list caching disabled (ablation)",
    "conj-str": "the ∧Str (LoopInvGen-style) conjunctive strengthening baseline",
    "linear-arbitrary": "the LA (LinearArbitrary-style) decision-tree baseline",
    "oneshot": "the OneShot baseline (single synthesis call, no CEGIS loop)",
    "hanoi-fold": "Hanoi with the fold-capable prototype synthesizer (Section 5.4)",
}


def run_module(definition: ModuleDefinition, mode: str = "hanoi",
               config: Optional[HanoiConfig] = None) -> InferenceResult:
    """Run one module definition (registered or hand-built) under one mode.

    This is the single dispatch point every harness goes through: the serial
    runner, the parallel runner's workers, the pytest-benchmark harnesses, and
    the examples all end up here.
    """
    if mode not in MODES:
        raise KeyError(f"unknown mode {mode!r}; known: {sorted(MODES)}")
    return MODES[mode](definition, config or quick_config())


# -- the shared task model ------------------------------------------------------


@dataclass(frozen=True)
class ExperimentTask:
    """One unit of experiment work: a ``(benchmark, mode)`` pair plus config.

    Tasks are immutable, hashable, and picklable, so the same objects flow
    through the serial runner, the multiprocessing pool, and the result store's
    resume bookkeeping.

    ``pack`` carries the directory of the benchmark pack the benchmark comes
    from (None for the built-in suite); ``execute_task`` registers the pack
    before resolving the name, so tasks stay self-contained even in worker
    processes that did not inherit the parent's registry.  ``pack_name`` is
    the pack's registered name (the tag the result store writes), so resume
    bookkeeping can tell a pack benchmark from a same-named built-in.

    ``variant`` tags a configuration variant: the differential fuzzer runs
    the same ``(benchmark, mode)`` pair under several cache configurations
    and needs their rows to coexist in one store.  Ordinary sweeps leave it
    ``None``.
    """

    benchmark: str
    mode: str = "hanoi"
    config: Optional[HanoiConfig] = None
    pack: Optional[str] = None
    pack_name: Optional[str] = None
    variant: Optional[str] = None

    @property
    def key(self) -> Tuple[str, str]:
        """The bare ``(benchmark, mode)`` identity (pack-blind; prefer
        :attr:`resume_key` for dedup/resume bookkeeping)."""
        return (self.benchmark, self.mode)

    @property
    def label(self) -> str:
        """A human-readable identity for progress lines and event streams
        (``benchmark/mode``, with the variant tag when one is set)."""
        base = f"{self.benchmark}/{self.mode}"
        return f"{base}#{self.variant}" if self.variant is not None else base

    @property
    def resume_key(self) -> Tuple[str, str, Optional[str], Optional[str]]:
        """The identity used for resume bookkeeping.

        Includes the pack tag, so a pack benchmark named like a built-in
        neither supersedes it in the store nor causes ``--resume`` to skip
        the other one, and the variant tag, so one cache configuration's row
        never satisfies a resume check for another.
        """
        return (self.benchmark, self.mode, self.pack_name, self.variant)


def expand_tasks(names: Optional[Iterable[str]] = None,
                 modes: Union[str, Sequence[str]] = "hanoi",
                 config: Optional[HanoiConfig] = None,
                 pack: Optional[str] = None,
                 pack_benchmarks: Optional[Iterable[str]] = None,
                 pack_name: Optional[str] = None) -> List[ExperimentTask]:
    """The full task list of a sweep: every benchmark under every mode.

    Modes vary in the outer loop (matching how Figure 8 is collected: one mode
    finishes its pass over the suite before the next starts), benchmarks in the
    inner loop, so serial and parallel sweeps enumerate identically.

    ``pack`` is attached to tasks so pack benchmarks resolve inside pool
    workers (see :class:`ExperimentTask`); ``pack_benchmarks`` restricts the
    pack tag to those benchmark names (a mixed built-in + pack sweep tags only
    the pack's tasks), and ``pack_name`` sets the tag resume bookkeeping
    matches against stored rows (defaults to the pack directory's basename).
    """
    names = list(names if names is not None else all_benchmark_names())
    mode_list = [modes] if isinstance(modes, str) else list(modes)
    for mode in mode_list:
        if mode not in MODES:
            raise KeyError(f"unknown mode {mode!r}; known: {sorted(MODES)}")
    if pack is not None and pack_name is None:
        # Mirror how Pack.name is derived (basename of the *resolved* path),
        # so default resume keys match the tag the result store writes even
        # for symlinked or relative pack directories.
        pack_name = os.path.basename(os.path.realpath(pack))
    from_pack = (frozenset(pack_benchmarks) if pack_benchmarks is not None
                 else frozenset(names if pack is not None else ()))
    return [ExperimentTask(benchmark=name, mode=mode, config=config, pack=pack,
                           pack_name=pack_name if name in from_pack else None)
            for mode in mode_list for name in names]


def execute_task(task: ExperimentTask) -> InferenceResult:
    """Run one task to completion in the current process."""
    if task.pack is not None:
        from ..spec.pack import ensure_pack_registered

        ensure_pack_registered(task.pack)
    result = run_module(get_benchmark(task.benchmark), mode=task.mode, config=task.config)
    if task.variant is not None:
        # Stamped here (not in the store) so the tag survives the worker
        # boundary: the parallel runner ships results as dict payloads.
        result.variant = task.variant
    return result


def execute_tasks(tasks: Sequence[ExperimentTask],
                  progress: Optional[Callable[[InferenceResult], None]] = None,
                  store=None) -> List[InferenceResult]:
    """Run tasks serially, reporting and persisting each result as it lands.

    ``store`` is any object with an ``append(result)`` method (duck-typed so
    this module does not import :mod:`repro.experiments.store`); the parallel
    runner offers the same signature for the same task lists.
    """
    results: List[InferenceResult] = []
    for task in tasks:
        result = execute_task(task)
        results.append(result)
        if store is not None:
            store.append(result)
        if progress is not None:
            progress(result)
    return results


def run_benchmark(name: str, mode: str = "hanoi",
                  config: Optional[HanoiConfig] = None) -> InferenceResult:
    """Run one benchmark under one mode and return the result."""
    return execute_task(ExperimentTask(benchmark=name, mode=mode, config=config))


def run_many(names: Optional[Iterable[str]] = None, mode: str = "hanoi",
             config: Optional[HanoiConfig] = None,
             progress: Optional[Callable[[InferenceResult], None]] = None,
             store=None) -> List[InferenceResult]:
    """Run a list of benchmarks (all of them by default) under one mode."""
    return execute_tasks(expand_tasks(names, modes=mode, config=config),
                         progress=progress, store=store)
