"""Experiment E3: counterexample-list-caching traces (Figures 5 and 6).

Figures 5 and 6 illustrate how the counterexample list cache lets Hanoi skip
re-synthesizing and re-verifying candidates after a new positive example is
found.  This module runs the motivating ListSet benchmark twice - with and
without counterexample list caching - and prints the event traces
(synthesized candidate, counterexample added, trace replayed) together with
the verification/synthesis call counts, so the effect of the optimization can
be read off directly.

Run as a module::

    python -m repro.experiments.figure5
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from ..core.config import HanoiConfig
from ..core.result import InferenceResult
from .report import format_table
from .runner import PROFILES, run_benchmark

__all__ = ["run_figure5", "trace_lines", "main"]

#: The benchmark used for the illustration (the paper's running example).
TRACE_BENCHMARK = "/coq/unique-list-::-set"


def run_figure5(config: Optional[HanoiConfig] = None,
                benchmark: str = TRACE_BENCHMARK) -> Dict[str, InferenceResult]:
    """Run the trace benchmark with and without counterexample list caching."""
    return {
        "hanoi": run_benchmark(benchmark, mode="hanoi", config=config),
        "hanoi-clc": run_benchmark(benchmark, mode="hanoi-clc", config=config),
    }


def trace_lines(result: InferenceResult) -> List[str]:
    """Render an inference event log as the paper's trace illustrations."""
    lines: List[str] = []
    for index, event in enumerate(result.events, start=1):
        kind = event.get("event")
        size = event.get("candidate_size")
        if kind in ("synthesized", "synthesis-cache-hit"):
            origin = "cache" if kind == "synthesis-cache-hit" else "synth"
            lines.append(f"{index:3d}. candidate (size {size}) from {origin}")
        elif kind == "sufficiency-counterexample":
            lines.append(f"{index:3d}.   negative counterexample (sufficiency): {event.get('added')}")
        elif kind == "inductiveness-counterexample":
            lines.append(f"{index:3d}.   negative counterexample ({event.get('operation')}): "
                         f"{event.get('added')}")
        elif kind == "visible-counterexample":
            lines.append(f"{index:3d}.   positive counterexample ({event.get('operation')}): "
                         f"{event.get('added')}")
        elif kind == "late-visible-counterexample":
            lines.append(f"{index:3d}.   positive counterexample, found late "
                         f"({event.get('operation')}): {event.get('added')}")
        elif kind == "synthesis-recovery":
            lines.append(f"{index:3d}.   synthesis failed; recovered by promoting "
                         f"({event.get('operation')}): {event.get('added')}")
        elif kind == "spec-violation":
            lines.append(f"{index:3d}. specification violation witnessed by "
                         f"{event.get('witnesses')}")
        elif kind == "trace-replay":
            lines.append(f"{index:3d}.   trace replay kept {event.get('kept')} negative example(s)")
        elif kind == "success":
            lines.append(f"{index:3d}. success: invariant of size {size}")
    return lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--profile", choices=sorted(PROFILES), default="quick")
    parser.add_argument("--benchmark", default=TRACE_BENCHMARK)
    args = parser.parse_args(argv)
    config = PROFILES[args.profile]()

    results = run_figure5(config=config, benchmark=args.benchmark)

    for mode, result in results.items():
        label = ("with counterexample list caching" if mode == "hanoi"
                 else "without counterexample list caching")
        print(f"\n=== {args.benchmark} {label} ===")
        for line in trace_lines(result):
            print(line)

    rows: List[List[object]] = []
    for mode, result in results.items():
        rows.append([
            mode,
            result.status,
            result.stats.synthesis_calls,
            result.stats.verification_calls,
            result.stats.synthesis_cache_hits,
            result.stats.trace_replays,
            result.stats.total_time,
        ])
    print("\nCall counts (the savings illustrated by Figures 5-6):")
    print(format_table(
        ["Mode", "Status", "Synth calls", "Verify calls", "Cache hits", "Trace replays", "Time (s)"],
        rows,
    ))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    raise SystemExit(main())
