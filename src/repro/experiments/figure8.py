"""Experiment E2: benchmarks completed versus time, per mode (Figure 8).

Figure 8 plots, for each of six modes (Hanoi, Hanoi-SRC, Hanoi-CLC, ∧Str, LA,
OneShot), how many benchmarks terminate within a given time.  This module
runs the modes over a benchmark set, collects the per-benchmark completion
times, and prints both the cumulative-completion series (the plotted curves)
and a per-mode summary (benchmarks solved, total time) so the ordering
reported in the paper - Hanoi solves the most, ∧Str and LA solve fewer, and
OneShot solves almost none - can be checked directly.

Run as a module::

    python -m repro.experiments.figure8                  # fast subset, quick profile
    python -m repro.experiments.figure8 --all            # all 28 benchmarks
    python -m repro.experiments.figure8 --modes hanoi conj-str oneshot
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from ..core.config import HanoiConfig
from ..core.result import InferenceResult
from ..suite.registry import FAST_BENCHMARKS, all_benchmark_names
from .report import MODE_SUMMARY_HEADERS, format_table, group_by_mode, mode_summary_rows
from .runner import FIGURE8_MODES, PROFILES, execute_tasks, expand_tasks

__all__ = ["run_figure8", "completion_series", "mode_summary", "main"]


def run_figure8(names: Optional[Sequence[str]] = None,
                modes: Optional[Sequence[str]] = None,
                config: Optional[HanoiConfig] = None,
                progress=None,
                execute=None,
                store=None) -> Dict[str, List[InferenceResult]]:
    """Run every requested mode over the benchmark list.

    ``execute`` lets callers swap the execution strategy: it receives the full
    task list (plus ``progress``/``store`` keyword arguments) and returns the
    results.  The default is the serial
    :func:`~repro.experiments.runner.execute_tasks`; the CLI passes
    :meth:`~repro.experiments.parallel.ParallelRunner.run` to fan the same
    tasks out over a process pool.
    """
    names = list(names if names is not None else FAST_BENCHMARKS)
    modes = list(modes if modes is not None else FIGURE8_MODES)
    tasks = expand_tasks(names, modes=modes, config=config)
    run = execute if execute is not None else execute_tasks
    results = run(tasks, progress=progress, store=store)
    grouped = group_by_mode(r for r in results if r is not None)
    # Keep the requested mode order even if results complete out of order.
    return {mode: grouped.get(mode, []) for mode in modes}


def completion_series(results: Dict[str, List[InferenceResult]]) -> Dict[str, List[float]]:
    """For each mode, the sorted list of completion times of solved benchmarks.

    The cumulative curve of Figure 8 is exactly: after ``t`` seconds the mode
    has completed ``len([x for x in series if x <= t])`` benchmarks.
    """
    series: Dict[str, List[float]] = {}
    for mode, mode_results in results.items():
        times = sorted(r.stats.total_time for r in mode_results if r.succeeded)
        series[mode] = times
    return series


def mode_summary(results: Dict[str, List[InferenceResult]]) -> List[List[object]]:
    """Summary rows: mode, solved count, total benchmarks, mean/total solve time."""
    return mode_summary_rows(results)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--all", action="store_true", help="run all 28 benchmarks")
    parser.add_argument("--benchmarks", nargs="*", default=None)
    parser.add_argument("--modes", nargs="*", default=None,
                        help=f"modes to run (default: {' '.join(FIGURE8_MODES)})")
    parser.add_argument("--profile", choices=sorted(PROFILES), default="quick")
    parser.add_argument("--timeout", type=float, default=None)
    args = parser.parse_args(argv)

    if args.benchmarks:
        names = args.benchmarks
    elif args.all:
        names = all_benchmark_names()
    else:
        names = FAST_BENCHMARKS
    profile = PROFILES[args.profile]
    config = profile() if args.timeout is None else profile(args.timeout)

    def progress(result: InferenceResult) -> None:
        print(f"  [{result.mode:17s}] {result.benchmark:45s} {result.status:18s} "
              f"time={result.stats.total_time:.1f}s", flush=True)

    results = run_figure8(names, modes=args.modes, config=config, progress=progress)

    print("\nPer-mode summary (Figure 8):")
    print(format_table(MODE_SUMMARY_HEADERS, mode_summary(results)))

    print("\nCumulative completion series (seconds at which each solve lands):")
    for mode, times in completion_series(results).items():
        rendered = ", ".join(f"{t:.1f}" for t in times) or "(none)"
        print(f"  {mode:18s}: {rendered}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    raise SystemExit(main())
