"""Experiment E1: the per-benchmark results table (Figure 7 / Figure 9).

For every benchmark the paper reports: the size of the inferred invariant,
the end-to-end time, and the verification/synthesis breakdown (TVT, TVC, MVT,
TST, TSC, MST).  This module regenerates the same table with this
reproduction's Hanoi implementation and, for context, the paper's reported
invariant size (or t/o) next to ours.

Run as a module::

    python -m repro.experiments.figure7                    # fast subset, quick profile
    python -m repro.experiments.figure7 --all              # all 28 benchmarks
    python -m repro.experiments.figure7 --profile paper    # paper bounds and timeout
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from ..core.config import HanoiConfig
from ..core.result import InferenceResult
from ..suite.registry import FAST_BENCHMARKS, all_benchmark_names
from .report import FIGURE7_HEADERS as HEADERS, figure7_rows, format_table, rows_to_csv
from .runner import PROFILES, run_many

__all__ = ["figure7_rows", "run_figure7", "main", "HEADERS"]


def run_figure7(names: Optional[Sequence[str]] = None,
                config: Optional[HanoiConfig] = None) -> List[InferenceResult]:
    """Run the Hanoi mode over the given benchmarks (fast subset by default)."""
    return run_many(names if names is not None else FAST_BENCHMARKS, mode="hanoi", config=config)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--all", action="store_true",
                        help="run all 28 benchmarks instead of the fast subset")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="explicit benchmark names to run")
    parser.add_argument("--profile", choices=sorted(PROFILES), default="quick",
                        help="verifier bounds / timeout profile")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-benchmark timeout in seconds (overrides the profile)")
    parser.add_argument("--csv", type=str, default=None, help="also write the table as CSV")
    args = parser.parse_args(argv)

    if args.benchmarks:
        names = args.benchmarks
    elif args.all:
        names = all_benchmark_names()
    else:
        names = FAST_BENCHMARKS

    profile = PROFILES[args.profile]
    config = profile() if args.timeout is None else profile(args.timeout)

    results: List[InferenceResult] = []

    def progress(result: InferenceResult) -> None:
        results.append(result)
        size = result.invariant_size if result.invariant_size is not None else "t/o"
        print(f"  {result.benchmark:45s} {result.status:18s} size={size} "
              f"time={result.stats.total_time:.1f}s", flush=True)

    print(f"Figure 7: running {len(list(names))} benchmarks with profile {args.profile!r}")
    run_many(names, mode="hanoi", config=config, progress=progress)

    rows = figure7_rows(results)
    print()
    print(format_table(HEADERS, rows))
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(rows_to_csv(HEADERS, rows))
        print(f"\nwrote {args.csv}")

    solved = sum(1 for r in results if r.succeeded)
    print(f"\nSolved {solved} / {len(results)} benchmarks "
          f"(paper: 22 / 28 within a 30-minute timeout).")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    raise SystemExit(main())
