"""Differential fuzzing: cross-check modes and cache configurations.

Every module (generated or hand-written) is run through a set of inference
modes, each under all four cache configurations - the 2x2 matrix of the
verification evaluation cache (``--no-eval-cache``) and the synthesis
term-pool cache (``--no-pool-cache``).  Three properties are checked:

1. **Cache transparency** - per mode, the outcome *fingerprint* (status,
   rendered invariant, size, iteration count, message) is byte-identical
   across all four cache configurations.  The caches advertise "identical
   outcomes, less work"; this is the harness that holds them to it.
2. **Ground-truth agreement** - for generated modules the expected invariant
   is known by construction (:mod:`repro.gen.modgen`); the bounded tester
   checks it is sufficient and inductive (a generator self-check), and that
   every *inferred* invariant implies it (inference may find a stronger
   invariant than the ground truth, never an incomparable one, because the
   generated specification's leading conjunct is the ground truth itself).
3. **Mode success** - modes listed in ``require_success`` (by default just
   ``hanoi``) must solve every generated module: the invariant is a single
   application of a helper the synthesizer is handed as a component, so a
   failure is a real regression, not an unlucky search.
4. **Verifier-backend soundness** (``check_verifier``) - the abstract
   proof tier (:mod:`repro.analysis.absint`) must be transparent: ladder
   runs reproduce enumerative outcomes byte-for-byte, and no statically
   PROVEN obligation may admit an enumerated counterexample (see
   docs/verification.md).
5. **Persistent-cache transparency** (``check_persistence``) - the disk
   cache tier (:mod:`repro.serve.diskcache`) must replay identically:
   no-persistence, cold-store, warm-store, and corrupted-store runs all
   produce the same fingerprint (see docs/service.md).

Mismatches are reported as :class:`DifferentialMismatch` records; the CLI
hands them to :mod:`repro.gen.shrink` to minimize into reproducers.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.config import HanoiConfig
from ..core.module import ModuleDefinition
from ..core.predicate import Predicate, always_true
from ..core.result import InferenceResult
from ..inductive.relation import ConditionalInductivenessChecker
from ..lang.ast import Branch, ECtor, EMatch, EVar, PCtor, PWild
from ..lang.types import TData
from ..verify.result import InductivenessCounterexample, VALID, Valid
from ..verify.tester import Verifier

__all__ = [
    "CACHE_VARIANTS",
    "DEFAULT_FUZZ_MODES",
    "FAULT_ENV_VAR",
    "variant_config",
    "outcome_fingerprint",
    "DifferentialMismatch",
    "OracleFailure",
    "FuzzReport",
    "canonicalization_mismatches",
    "verifier_backend_mismatches",
    "verifier_soundness_mismatches",
    "persistent_cache_mismatches",
    "fuzz_module",
    "fuzz_corpus",
    "compare_stored",
]

#: The 2x2 cache matrix: variant tag -> (eval cache on, pool cache on).
#: A tuple of pairs (not a dict comprehension over a set) so iteration order
#: is fixed: the all-on configuration first, the all-off one last.
CACHE_VARIANTS: Tuple[Tuple[str, Tuple[bool, bool]], ...] = (
    ("ec+pc", (True, True)),
    ("ec-only", (True, False)),
    ("pc-only", (False, True)),
    ("no-caches", (False, False)),
)

#: Variant tags in matrix order.
VARIANT_NAMES: Tuple[str, ...] = tuple(name for name, _ in CACHE_VARIANTS)

#: The modes the fuzzer exercises by default: Hanoi plus the three baselines.
DEFAULT_FUZZ_MODES: Tuple[str, ...] = (
    "hanoi", "conj-str", "linear-arbitrary", "oneshot")

#: Test-only fault injection (see docs/fuzzing.md): when this environment
#: variable names a module operation, fingerprints of the ``no-caches``
#: variant are corrupted for every module defining that operation.  It exists
#: so the shrinker pipeline can be exercised end to end without a real bug.
FAULT_ENV_VAR = "REPRO_FUZZ_FAULT_OPERATION"

#: Signature of a fault hook: (benchmark, mode, variant, fingerprint) -> fingerprint.
FaultHook = Callable[[str, str, str, dict], dict]


def variant_config(config: HanoiConfig, variant: str) -> HanoiConfig:
    """The base configuration with one cache matrix cell applied."""
    for name, (eval_on, pool_on) in CACHE_VARIANTS:
        if name == variant:
            if not eval_on:
                config = config.without_evaluation_caching()
            if not pool_on:
                config = config.without_synthesis_evaluation_caching()
            return config
    raise KeyError(f"unknown cache variant {variant!r}; known: {VARIANT_NAMES}")


def outcome_fingerprint(result: InferenceResult) -> dict:
    """The cache-independent facts of one run, as a JSON-safe dict.

    Timing, cache counters, and event traces are deliberately excluded: they
    legitimately differ across cache configurations.  Everything else - the
    status, the invariant itself, the iteration count, and the failure
    message - must not.
    """
    return {
        "status": result.status,
        "invariant": (None if result.invariant is None
                      else result.render_invariant()),
        "size": result.invariant_size,
        "iterations": result.iterations,
        "message": result.message,
    }


def _fingerprint_bytes(fingerprint: dict) -> str:
    return json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))


def _env_fault_hook(definitions: Dict[str, ModuleDefinition]) -> Optional[FaultHook]:
    """The environment-driven fault hook, when the test-only variable is set."""
    operation = os.environ.get(FAULT_ENV_VAR)
    if not operation:
        return None

    def hook(benchmark: str, mode: str, variant: str, fingerprint: dict) -> dict:
        definition = definitions.get(benchmark)
        if (definition is not None and variant == "no-caches"
                and any(op.name == operation for op in definition.operations)):
            corrupted = dict(fingerprint)
            corrupted["status"] = "fault-injected"
            return corrupted
        return fingerprint

    return hook


@dataclass(frozen=True)
class DifferentialMismatch:
    """One ``(benchmark, mode)`` pair whose runs disagree.

    ``kind`` says which axis disagreed: the cache-variant matrix (the
    default) or the original-versus-canonicalized module comparison."""

    benchmark: str
    mode: str
    #: run tag -> fingerprint (missing runs are absent).  Cache-matrix
    #: mismatches use the variant tags; canonicalization mismatches use
    #: ``original`` / ``canonical``.
    fingerprints: Dict[str, dict]
    kind: str = "cache variants"

    def describe(self) -> str:
        lines = [f"{self.benchmark} [{self.mode}]: {self.kind} disagree"]
        keys = (VARIANT_NAMES if self.kind == "cache variants"
                else tuple(self.fingerprints))
        for key in keys:
            if key in self.fingerprints:
                lines.append(f"  {key:10s} {_fingerprint_bytes(self.fingerprints[key])}")
            else:
                lines.append(f"  {key:10s} (missing)")
        return "\n".join(lines)


@dataclass(frozen=True)
class OracleFailure:
    """A ground-truth check that failed for one ``(benchmark, mode, variant)``."""

    benchmark: str
    mode: str
    variant: str
    reason: str

    def describe(self) -> str:
        return f"{self.benchmark} [{self.mode}/{self.variant}]: {self.reason}"


@dataclass
class FuzzReport:
    """The aggregated outcome of one differential sweep."""

    benchmarks: List[str] = field(default_factory=list)
    runs: int = 0
    mismatches: List[DifferentialMismatch] = field(default_factory=list)
    oracle_failures: List[OracleFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.oracle_failures

    def merge(self, other: "FuzzReport") -> None:
        self.benchmarks.extend(other.benchmarks)
        self.runs += other.runs
        self.mismatches.extend(other.mismatches)
        self.oracle_failures.extend(other.oracle_failures)

    def summary(self) -> str:
        status = "ok" if self.ok else "FAILED"
        return (f"differential fuzz {status}: {len(self.benchmarks)} module(s), "
                f"{self.runs} run(s), {len(self.mismatches)} mismatch(es), "
                f"{len(self.oracle_failures)} oracle failure(s)")


# -- canonicalization transparency ------------------------------------------------


def canonicalization_mismatches(definition: ModuleDefinition,
                                modes: Sequence[str] = DEFAULT_FUZZ_MODES,
                                config: Optional[HanoiConfig] = None,
                                ) -> List[DifferentialMismatch]:
    """Run the module and its canonicalized form through each mode.

    The canonicalizing rewrites (:mod:`repro.analysis.canon`) advertise
    behaviour preservation: constant folding, dead-branch elimination, and
    alpha-normalization must not change what inference concludes.  This is
    the harness that holds them to it - the outcome fingerprints of the
    original and the canonicalized module must be byte-identical per mode.
    """
    from ..analysis.canon import canonicalize_definition
    from ..experiments.runner import quick_config, run_module

    base = config or quick_config()
    canonical = canonicalize_definition(definition)
    mismatches: List[DifferentialMismatch] = []
    for mode in modes:
        fingerprints = {
            "original": outcome_fingerprint(
                run_module(definition, mode=mode, config=base)),
            "canonical": outcome_fingerprint(
                run_module(canonical, mode=mode, config=base)),
        }
        rendered = {_fingerprint_bytes(fp) for fp in fingerprints.values()}
        if len(rendered) != 1:
            mismatches.append(DifferentialMismatch(
                benchmark=definition.name, mode=mode,
                fingerprints=fingerprints, kind="canonicalization"))
    return mismatches


# -- verifier-backend transparency and soundness ----------------------------------


def verifier_backend_mismatches(definition: ModuleDefinition,
                                modes: Sequence[str] = DEFAULT_FUZZ_MODES,
                                config: Optional[HanoiConfig] = None,
                                ) -> List[DifferentialMismatch]:
    """Run each Hanoi mode under the enumerative and the ladder backend.

    The verification ladder (docs/verification.md) advertises trajectory
    identity: static proofs only discharge obligations the bounded tester
    would have passed anyway, so the loop visits the same candidates and
    returns the same invariant.  This is the harness that holds it to it.
    Baseline modes never consult the verifier backend, so only modes built
    on the Hanoi loop are compared.
    """
    from ..experiments.runner import quick_config, run_module

    base = (config or quick_config()).with_verifier_backend("enumerative")
    ladder = base.with_verifier_backend("ladder")
    mismatches: List[DifferentialMismatch] = []
    for mode in modes:
        if not mode.startswith("hanoi"):
            continue
        fingerprints = {
            "enumerative": outcome_fingerprint(
                run_module(definition, mode=mode, config=base)),
            "ladder": outcome_fingerprint(
                run_module(definition, mode=mode, config=ladder)),
        }
        rendered = {_fingerprint_bytes(fp) for fp in fingerprints.values()}
        if len(rendered) != 1:
            mismatches.append(DifferentialMismatch(
                benchmark=definition.name, mode=mode,
                fingerprints=fingerprints, kind="verifier backends"))
    return mismatches


def _corrupt_store(directory: str) -> int:
    """Flip one mid-payload byte in every disk-cache entry; returns count."""
    flipped = 0
    for root, _, files in os.walk(directory):
        for name in files:
            if not name.endswith(".bin"):
                continue
            path = os.path.join(root, name)
            with open(path, "r+b") as handle:
                blob = bytearray(handle.read())
                if not blob:
                    continue
                blob[len(blob) // 2] ^= 0xFF
                handle.seek(0)
                handle.write(blob)
            flipped += 1
    return flipped


def persistent_cache_mismatches(definition: ModuleDefinition,
                                modes: Sequence[str] = DEFAULT_FUZZ_MODES,
                                config: Optional[HanoiConfig] = None,
                                cache_dir: Optional[str] = None,
                                ) -> List[DifferentialMismatch]:
    """Cold, warm, and corrupted persistent-store runs vs. no persistence.

    The disk cache tier (:mod:`repro.serve.diskcache`) advertises the same
    contract as the in-memory caches: identical outcomes, less work - now
    across *processes*.  Per Hanoi mode this runs the module four ways:
    without persistence, against an empty store (cold), against the store
    the cold run just wrote (warm), and against that store with one byte
    flipped in every entry (corruption tolerance: every entry must be
    skipped with a warning, never crash or change the outcome).  All four
    fingerprints must be byte-identical.  Baseline modes never create the
    caches, so only Hanoi-loop modes are compared.
    """
    import shutil
    import tempfile

    from ..experiments.runner import quick_config, run_module

    base = (config or quick_config()).without_persistent_caching()
    mismatches: List[DifferentialMismatch] = []
    for mode in modes:
        if not mode.startswith("hanoi"):
            continue
        owns_dir = cache_dir is None
        directory = (tempfile.mkdtemp(prefix="repro-fuzz-diskcache-")
                     if owns_dir else os.path.join(cache_dir, mode.replace("/", "_")))
        try:
            persistent = base.with_cache_dir(directory)
            fingerprints = {
                "no-persistence": outcome_fingerprint(
                    run_module(definition, mode=mode, config=base)),
                "cold-store": outcome_fingerprint(
                    run_module(definition, mode=mode, config=persistent)),
                "warm-store": outcome_fingerprint(
                    run_module(definition, mode=mode, config=persistent)),
            }
            _corrupt_store(directory)
            fingerprints["corrupt-store"] = outcome_fingerprint(
                run_module(definition, mode=mode, config=persistent))
            rendered = {_fingerprint_bytes(fp) for fp in fingerprints.values()}
            if len(rendered) != 1:
                mismatches.append(DifferentialMismatch(
                    benchmark=definition.name, mode=mode,
                    fingerprints=fingerprints, kind="persistent cache"))
        finally:
            if owns_dir:
                shutil.rmtree(directory, ignore_errors=True)
    return mismatches


def _soundness_candidates(instance) -> List[Tuple[str, Predicate]]:
    """Candidate invariants spanning the verdict space.

    Trivially true and trivially false bracket the lattice; the module's
    expected invariant (when present) is a realistic candidate; and for a
    data-typed concrete representation, one single-constructor discriminator
    per constructor exercises the ctor-set refinement of the match transfer.
    """
    program = instance.program
    concrete = instance.concrete_type
    candidates: List[Tuple[str, Predicate]] = [
        ("always-true", always_true(concrete, program)),
        ("always-false", Predicate.from_body(
            ECtor("False"), "x", concrete, program, recursive=False)),
    ]
    if instance.definition.expected_invariant:
        try:
            candidates.append(("oracle", Predicate.from_source(
                instance.definition.expected_invariant, program)))
        except Exception:
            pass
    if isinstance(concrete, TData) and program.types.is_datatype(concrete):
        for info in program.types.datatype_ctors(concrete.name):
            body = EMatch(EVar("x"), (
                Branch(PCtor(info.name,
                             PWild() if info.payload is not None else None),
                       ECtor("True")),
                Branch(PWild(), ECtor("False")),
            ))
            candidates.append((f"is-{info.name}", Predicate.from_body(
                body, "x", concrete, program, recursive=False)))
    return candidates


def verifier_soundness_mismatches(definition: ModuleDefinition,
                                  config: Optional[HanoiConfig] = None,
                                  ) -> List[DifferentialMismatch]:
    """Obligation-level soundness check of the abstract tier.

    The abstract interpreter claims over-approximation: a statically PROVEN
    obligation can never have a concrete counterexample within any bound.
    For a spread of candidate invariants (:func:`_soundness_candidates`),
    every operation the abstract checker proves is re-checked by the bounded
    enumerative tester; an enumerated counterexample landing on a proven
    operation - or on a proven sufficiency obligation - is reported as a
    ``verifier soundness`` mismatch (a real bug in the static tier, never
    an unlucky search).
    """
    from ..analysis.absint import PROVEN, AbstractChecker
    from ..experiments.runner import quick_config

    bounds = (config or quick_config()).verifier_bounds
    instance = definition.instantiate()
    abstract = AbstractChecker(instance)
    verifier = Verifier(instance, bounds=bounds)
    checker = ConditionalInductivenessChecker(instance, bounds=bounds)
    mismatches: List[DifferentialMismatch] = []

    candidates = _soundness_candidates(instance)
    # Sufficiency is candidate-independent on the abstract side (the spec is
    # evaluated over type tops), so one PROVEN verdict promises enumerative
    # validity for *every* candidate.
    sufficiency_proven = abstract.sufficiency_verdict() == PROVEN
    for tag, predicate in candidates:
        if sufficiency_proven:
            try:
                verdict = verifier.check_sufficiency(predicate)
            except Exception:
                # A crashing specification aborts the enumerative check but
                # never reaches the abstract PROVEN verdict (may_fail blocks
                # it), so there is nothing to compare.
                verdict = VALID
            if not isinstance(verdict, Valid):
                mismatches.append(DifferentialMismatch(
                    benchmark=definition.name, mode=f"sufficiency/{tag}",
                    fingerprints={
                        "abstract": {"verdict": "proven"},
                        "enumerative": {"verdict": "counterexample"},
                    },
                    kind="verifier soundness"))
        verdicts = abstract.inductiveness_verdicts(predicate.decl, None)
        result = checker.check(predicate, predicate)
        if (isinstance(result, InductivenessCounterexample)
                and verdicts.get(result.operation) == PROVEN):
            mismatches.append(DifferentialMismatch(
                benchmark=definition.name, mode=f"inductiveness/{tag}",
                fingerprints={
                    "abstract": {"verdict": "proven",
                                 "operation": result.operation},
                    "enumerative": {"verdict": "counterexample",
                                    "operation": result.operation},
                },
                kind="verifier soundness"))
    return mismatches


# -- in-process sweeps -----------------------------------------------------------


def _diff_variants(benchmark: str, mode: str,
                   fingerprints: Dict[str, dict]) -> Optional[DifferentialMismatch]:
    """A mismatch record when the variant fingerprints are not all identical."""
    rendered = {variant: _fingerprint_bytes(fp) for variant, fp in fingerprints.items()}
    if len(fingerprints) == len(VARIANT_NAMES) and len(set(rendered.values())) == 1:
        return None
    return DifferentialMismatch(benchmark=benchmark, mode=mode,
                                fingerprints=dict(fingerprints))


def _check_ground_truth(definition: ModuleDefinition, bounds,
                        report: FuzzReport) -> Optional[Predicate]:
    """Validate the module's expected invariant; return it as a predicate.

    For generated modules this is a generator self-check: the invariant is
    sufficient and inductive *by construction*, so a failure here means the
    generator (not the inference stack) is wrong.
    """
    if not definition.expected_invariant:
        return None
    instance = definition.instantiate()
    oracle = Predicate.from_source(definition.expected_invariant, instance.program)
    verifier = Verifier(instance, bounds=bounds)
    if not isinstance(verifier.check_sufficiency(oracle), Valid):
        report.oracle_failures.append(OracleFailure(
            definition.name, "-", "-",
            "ground-truth invariant is not sufficient for the specification"))
        return None
    checker = ConditionalInductivenessChecker(instance, bounds=bounds)
    if not isinstance(checker.check(oracle, oracle), Valid):
        report.oracle_failures.append(OracleFailure(
            definition.name, "-", "-",
            "ground-truth invariant is not inductive"))
        return None
    return oracle


def _check_inferred_against_oracle(definition: ModuleDefinition,
                                   oracle: Optional[Predicate], bounds,
                                   mode: str, variant: str,
                                   rendered_invariant: Optional[str],
                                   report: FuzzReport) -> None:
    """Bounded check that an inferred invariant implies the ground truth."""
    if oracle is None or not rendered_invariant:
        return
    program = oracle.program  # the instantiated module's program
    try:
        inferred = Predicate.from_source(rendered_invariant, program)
    except Exception as exc:
        report.oracle_failures.append(OracleFailure(
            definition.name, mode, variant,
            f"inferred invariant does not re-parse: {exc}"))
        return
    verifier = Verifier(definition.instantiate(), bounds=bounds)
    verdict = verifier.check_predicate(lambda v: (not inferred(v)) or oracle(v))
    if not isinstance(verdict, Valid):
        report.oracle_failures.append(OracleFailure(
            definition.name, mode, variant,
            "inferred invariant accepts a value the ground-truth invariant "
            f"rejects (witness: {verdict.witnesses[0]})"))


def fuzz_module(definition: ModuleDefinition,
                modes: Sequence[str] = DEFAULT_FUZZ_MODES,
                config: Optional[HanoiConfig] = None,
                require_success: Sequence[str] = ("hanoi",),
                fault: Optional[FaultHook] = None,
                check_oracle: bool = True,
                check_canonical: bool = False,
                check_verifier: bool = False,
                check_persistence: bool = False) -> FuzzReport:
    """Run one module through ``modes`` x cache variants, in process.

    With ``check_canonical``, additionally re-run each mode on the
    canonicalized module and require byte-identical outcomes (doubles the
    per-mode work, so off by default).  With ``check_verifier``, re-run the
    Hanoi modes under the ladder backend and cross-check the abstract
    tier's proofs against the bounded tester (see
    :func:`verifier_backend_mismatches` and
    :func:`verifier_soundness_mismatches`).  With ``check_persistence``,
    re-run the Hanoi modes against a cold, a warm, and a corrupted
    persistent disk-cache store and require all four outcomes identical
    (see :func:`persistent_cache_mismatches`)."""
    from ..experiments.runner import quick_config, run_module

    base = config or quick_config()
    bounds = base.verifier_bounds
    report = FuzzReport(benchmarks=[definition.name])
    oracle = _check_ground_truth(definition, bounds, report) if check_oracle else None
    if fault is None:
        fault = _env_fault_hook({definition.name: definition})

    for mode in modes:
        fingerprints: Dict[str, dict] = {}
        for variant in VARIANT_NAMES:
            result = run_module(definition, mode=mode,
                                config=variant_config(base, variant))
            report.runs += 1
            fingerprint = outcome_fingerprint(result)
            if fault is not None:
                fingerprint = fault(definition.name, mode, variant, fingerprint)
            fingerprints[variant] = fingerprint
            if mode in require_success and fingerprint["status"] != "success":
                report.oracle_failures.append(OracleFailure(
                    definition.name, mode, variant,
                    f"expected success on a generated module, got "
                    f"{fingerprint['status']!r}: {fingerprint['message']}"))
            if check_oracle and fingerprint["status"] == "success":
                # One variant is enough: identical fingerprints mean an
                # identical invariant, and non-identical ones are already a
                # mismatch.
                if variant == VARIANT_NAMES[0]:
                    _check_inferred_against_oracle(
                        definition, oracle, bounds, mode, variant,
                        fingerprint["invariant"], report)
        mismatch = _diff_variants(definition.name, mode, fingerprints)
        if mismatch is not None:
            report.mismatches.append(mismatch)
    if check_canonical:
        report.mismatches.extend(
            canonicalization_mismatches(definition, modes=modes, config=base))
        report.runs += 2 * len(modes)
    if check_verifier:
        report.mismatches.extend(
            verifier_backend_mismatches(definition, modes=modes, config=base))
        report.runs += 2 * sum(1 for m in modes if m.startswith("hanoi"))
        report.mismatches.extend(
            verifier_soundness_mismatches(definition, config=base))
    if check_persistence:
        report.mismatches.extend(
            persistent_cache_mismatches(definition, modes=modes, config=base))
        report.runs += 4 * sum(1 for m in modes if m.startswith("hanoi"))
    return report


def fuzz_corpus(definitions: Sequence[ModuleDefinition],
                modes: Sequence[str] = DEFAULT_FUZZ_MODES,
                config: Optional[HanoiConfig] = None,
                require_success: Sequence[str] = ("hanoi",),
                fault: Optional[FaultHook] = None,
                check_oracle: bool = True,
                check_verifier: bool = False,
                check_persistence: bool = False,
                progress: Optional[Callable[[str, FuzzReport], None]] = None,
                ) -> FuzzReport:
    """Run a corpus serially through :func:`fuzz_module`, merging reports.

    Accepts bare :class:`ModuleDefinition`\\ s or the generator's
    :class:`~repro.gen.modgen.GeneratedModule` wrappers.
    """
    total = FuzzReport()
    for definition in definitions:
        definition = getattr(definition, "definition", definition)
        report = fuzz_module(definition, modes=modes, config=config,
                             require_success=require_success, fault=fault,
                             check_oracle=check_oracle,
                             check_verifier=check_verifier,
                             check_persistence=check_persistence)
        total.merge(report)
        if progress is not None:
            progress(definition.name, report)
    return total


# -- stored-result comparison (the parallel-runner path) -------------------------


def compare_stored(results: Sequence[InferenceResult],
                   definitions: Dict[str, ModuleDefinition],
                   modes: Sequence[str],
                   require_success: Sequence[str] = ("hanoi",),
                   fault: Optional[FaultHook] = None,
                   check_oracle: bool = True,
                   config: Optional[HanoiConfig] = None) -> FuzzReport:
    """Differential comparison over rows a :class:`ResultStore` persisted.

    This is the CLI path: the sweep itself ran through the parallel runner
    (each ``(benchmark, mode, variant)`` cell as one task), and the stored
    rows are grouped and compared here afterwards.
    """
    from ..experiments.runner import quick_config

    bounds = (config or quick_config()).verifier_bounds
    report = FuzzReport(benchmarks=list(definitions))
    if fault is None:
        fault = _env_fault_hook(definitions)

    by_cell: Dict[Tuple[str, str], Dict[str, dict]] = {}
    for result in results:
        fingerprint = outcome_fingerprint(result)
        if fault is not None:
            fingerprint = fault(result.benchmark, result.mode,
                                result.variant or "", fingerprint)
        by_cell.setdefault((result.benchmark, result.mode), {})[
            result.variant or ""] = fingerprint
    report.runs = len(results)

    oracles: Dict[str, Optional[Predicate]] = {}
    for name in definitions:
        for mode in modes:
            fingerprints = by_cell.get((name, mode), {})
            mismatch = _diff_variants(name, mode, fingerprints)
            if mismatch is not None:
                report.mismatches.append(mismatch)
            reference = fingerprints.get(VARIANT_NAMES[0])
            if reference is None:
                continue
            if mode in require_success and reference["status"] != "success":
                report.oracle_failures.append(OracleFailure(
                    name, mode, VARIANT_NAMES[0],
                    f"expected success on a generated module, got "
                    f"{reference['status']!r}: {reference['message']}"))
            if check_oracle and reference["status"] == "success":
                if name not in oracles:
                    oracles[name] = _check_ground_truth(
                        definitions[name], bounds, report)
                _check_inferred_against_oracle(
                    definitions[name], oracles[name], bounds, mode,
                    VARIANT_NAMES[0], reference["invariant"], report)
    return report
