"""Seed-deterministic generation of ADT modules with known invariants.

The generator works *invariant-first*: each scenario family fixes a
representation invariant ``valid : tau_c -> bool`` up front and then derives
the module's operations so that every one of them provably preserves it -
constructors establish it, guarded or clamped mutators maintain it, and
destructors only ever shrink the structure.  The specification's leading
conjunct is ``valid`` itself (any further conjuncts are consequences of it),
so by construction the generated module has a *known* sufficient, inductive
representation invariant: the ``valid`` helper recorded in the file's
``expected invariant`` block.

That guarantee is what makes generated modules usable as a differential
oracle (:mod:`repro.gen.diff`): inference must succeed in Hanoi mode, every
inferred invariant must imply the ground truth, and all of it must be
byte-identical across cache configurations.

Determinism: everything is drawn from a :class:`random.Random` seeded only
with integers, and no code path iterates a set or a hash-ordered dict, so the
same seed produces byte-identical ``.hanoi`` text under any
``PYTHONHASHSEED`` (the property tests in ``tests/gen/`` pin this).
"""

from __future__ import annotations

import hashlib
import os
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.module import ModuleDefinition
from ..spec.common import module_filename
from ..spec.loader import load_module_text

__all__ = [
    "GeneratedModule",
    "FAMILIES",
    "generate_module",
    "generate_corpus",
    "write_corpus",
    "corpus_digest",
]

#: Group every generated benchmark registers under.
GENERATED_GROUP = "gen"


def _lit(n: int) -> str:
    """The Peano literal for ``n``, parenthesized for argument position."""
    text = "O"
    for _ in range(n):
        text = f"(S {text})"
    return text


@dataclass
class _Parts:
    """The pieces a family builder produces; rendered by :func:`_render`."""

    family: str
    description: str
    alias: str
    concrete: str                      # the representation type, alias-spelled
    operations: List[Tuple[str, str]]  # (name, signature over the alias)
    spec_name: str
    spec_signature: str
    components: List[str] = field(default_factory=list)
    helpers: List[str] = field(default_factory=list)
    decls: List[str] = field(default_factory=list)
    expected: str = ""                 # the oracle block's declarations


# -- scenario families ----------------------------------------------------------
#
# Each family is a function (rng) -> _Parts.  All random choices go through
# the rng; name pools are tuples so choice order is positional, never
# hash-ordered.

_LIST_TYPES = ("list", "seq", "chain")
_LIST_CTORS = (("Nil", "Cons"), ("Empty", "Node"), ("End", "Link"))
_CREATE_NAMES = ("empty", "create", "fresh")
_INSERT_NAMES = ("push", "insert", "add", "put")
_REMOVE_NAMES = ("pop", "drop", "behead")
_MEASURE_NAMES = ("size", "length", "count")


def _list_rep(rng: random.Random) -> Tuple[str, str, str, str]:
    """A fresh list-like recursive type: (type name, nil, cons, decl)."""
    ty = rng.choice(_LIST_TYPES)
    nil, cons = rng.choice(_LIST_CTORS)
    decl = f"type {ty} = {nil} | {cons} of nat * {ty}"
    return ty, nil, cons, decl


def _bounded_container(rng: random.Random) -> _Parts:
    """Invariant: the container never holds more than K elements."""
    ty, nil, cons, type_decl = _list_rep(rng)
    bound = rng.randint(1, 3)
    create = rng.choice(_CREATE_NAMES)
    insert = rng.choice(_INSERT_NAMES)
    remove = rng.choice(_REMOVE_NAMES)
    measure = rng.choice(_MEASURE_NAMES)

    parts = _Parts(
        family="bounded",
        description=f"Container capped at {bound} element(s); "
                    f"overfull {insert}s are dropped.",
        alias="t",
        concrete=ty,
        operations=[(create, "t"), (insert, "t -> nat -> t"), (remove, "t -> t")],
        spec_name="spec",
        spec_signature="t -> bool",
        helpers=["valid"],
        decls=[
            type_decl,
            f"let {create} : {ty} = {nil}",
            f"let rec {measure} (s : {ty}) : nat =\n"
            f"  match s with\n"
            f"  | {nil} -> O\n"
            f"  | {cons} (hd, tl) -> S ({measure} tl)",
            f"let valid (s : {ty}) : bool =\n"
            f"  nat_leq ({measure} s) {_lit(bound)}",
            # The guard keeps the bound: an insert on a full container is a
            # no-op, so `valid` is preserved in both branches.
            f"let {insert} (s : {ty}) (x : nat) : {ty} =\n"
            f"  if nat_lt ({measure} s) {_lit(bound)} then {cons} (x, s) else s",
            f"let {remove} (s : {ty}) : {ty} =\n"
            f"  match s with\n"
            f"  | {nil} -> {nil}\n"
            f"  | {cons} (hd, tl) -> tl",
        ],
    )

    if rng.random() < 0.5:
        parts.operations.append((measure, "t -> nat"))
    if rng.random() < 0.35:
        peek = "peek" if measure != "peek" else "front"
        parts.operations.append((peek, "t -> natoption"))
        parts.decls.append(
            f"let {peek} (s : {ty}) : natoption =\n"
            f"  match s with\n"
            f"  | {nil} -> NoneN\n"
            f"  | {cons} (hd, tl) -> SomeN hd")

    spec_kind = rng.choices(("plain", "base-arg", "two-abstract"),
                            weights=(60, 25, 15))[0]
    if spec_kind == "base-arg":
        # The extra conjunct follows from `valid`: measure s <= K <= x + K.
        parts.spec_signature = "t -> nat -> bool"
        parts.decls.append(
            f"let spec (s : {ty}) (x : nat) : bool =\n"
            f"  andb (valid s) (nat_leq ({measure} s) (plus x {_lit(bound)}))")
    elif spec_kind == "two-abstract":
        parts.spec_signature = "t -> t -> bool"
        parts.decls.append(
            f"let spec (s : {ty}) (r : {ty}) : bool =\n"
            f"  andb (valid s) (valid r)")
    else:
        parts.decls.append(f"let spec (s : {ty}) : bool =\n  valid s")

    parts.expected = (f"let expected (s : {ty}) : bool =\n"
                      f"  nat_leq ({measure} s) {_lit(bound)}")
    return parts


def _capped_elements(rng: random.Random) -> _Parts:
    """Invariant: every stored element is at most K."""
    ty, nil, cons, type_decl = _list_rep(rng)
    cap = rng.randint(1, 3)
    create = rng.choice(_CREATE_NAMES)
    insert = rng.choice(_INSERT_NAMES)
    remove = rng.choice(_REMOVE_NAMES)
    clamped = rng.random() < 0.4  # clamp instead of dropping oversized inserts

    if clamped:
        insert_decl = (
            f"let {insert} (s : {ty}) (x : nat) : {ty} =\n"
            f"  {cons} (nat_min x {_lit(cap)}, s)")
    else:
        insert_decl = (
            f"let {insert} (s : {ty}) (x : nat) : {ty} =\n"
            f"  if nat_leq x {_lit(cap)} then {cons} (x, s) else s")

    parts = _Parts(
        family="capped",
        description=f"Every element is kept at most {cap} "
                    f"({'clamped' if clamped else 'oversized inserts dropped'}).",
        alias="t",
        concrete=ty,
        operations=[(create, "t"), (insert, "t -> nat -> t"), (remove, "t -> t")],
        spec_name="spec",
        spec_signature="t -> bool",
        helpers=["valid"],
        decls=[
            type_decl,
            f"let {create} : {ty} = {nil}",
            f"let rec valid (s : {ty}) : bool =\n"
            f"  match s with\n"
            f"  | {nil} -> True\n"
            f"  | {cons} (hd, tl) -> andb (nat_leq hd {_lit(cap)}) (valid tl)",
            insert_decl,
            f"let {remove} (s : {ty}) : {ty} =\n"
            f"  match s with\n"
            f"  | {nil} -> {nil}\n"
            f"  | {cons} (hd, tl) -> tl",
        ],
    )

    if rng.random() < 0.4:
        head = "head" if create != "head" else "first"
        parts.operations.append((head, "t -> natoption"))
        parts.decls.append(
            f"let {head} (s : {ty}) : natoption =\n"
            f"  match s with\n"
            f"  | {nil} -> NoneN\n"
            f"  | {cons} (hd, tl) -> SomeN hd")

    if rng.random() < 0.35:
        # The second conjunct is a consequence of `valid` plus the guard.
        parts.spec_signature = "t -> nat -> bool"
        parts.decls.append(
            f"let spec (s : {ty}) (x : nat) : bool =\n"
            f"  andb (valid s) (implb (nat_leq x {_lit(cap)}) "
            f"(valid ({insert} s x)))")
    else:
        parts.decls.append(f"let spec (s : {ty}) : bool =\n  valid s")

    parts.expected = f"let expected (s : {ty}) : bool =\n  valid s"
    # `valid` is recursive module code the oracle block cannot redefine, so
    # the expected invariant simply calls it; exporting keeps this intact.
    return parts


def _parity_pair(rng: random.Random) -> _Parts:
    """Invariant: the cached parity bit agrees with the counter's value."""
    even_flavour = rng.random() < 0.5  # bit tracks evenness or oddness
    zero = rng.choice(("zero", "origin", "start"))
    incr = rng.choice(("incr", "tick", "step"))
    value = rng.choice(("value", "current"))
    flag = rng.choice(("flag", "cached_bit"))
    base_bit = "True" if even_flavour else "False"
    tracker = "evenb" if even_flavour else "oddb"

    decls = [
        f"let rec {tracker} (n : nat) : bool =\n"
        f"  match n with\n"
        f"  | O -> {base_bit}\n"
        f"  | S m -> notb ({tracker} m)",
        f"let {zero} : nat * bool = (O, {base_bit})",
        f"let {incr} (c : nat * bool) : nat * bool =\n"
        f"  match c with\n"
        f"  | (n, p) -> (S n, notb p)",
        f"let {value} (c : nat * bool) : nat =\n"
        f"  match c with\n"
        f"  | (n, p) -> n",
        f"let {flag} (c : nat * bool) : bool =\n"
        f"  match c with\n"
        f"  | (n, p) -> p",
        f"let valid (c : nat * bool) : bool =\n"
        f"  match c with\n"
        f"  | (n, p) -> (match {tracker} n with\n"
        f"               | True -> p\n"
        f"               | False -> notb p)",
    ]
    operations = [(zero, "t"), (incr, "t -> t"),
                  (value, "t -> nat"), (flag, "t -> bool")]

    if rng.random() < 0.4:
        # A double step preserves parity agreement trivially.
        twice = "jump" if incr != "jump" else "leap"
        operations.append((twice, "t -> t"))
        decls.append(
            f"let {twice} (c : nat * bool) : nat * bool =\n"
            f"  match c with\n"
            f"  | (n, p) -> (S (S n), p)")

    decls.append(
        f"let spec (c : nat * bool) : bool =\n"
        f"  match {tracker} ({value} c) with\n"
        f"  | True -> {flag} c\n"
        f"  | False -> notb ({flag} c)")

    parts = _Parts(
        family="parity",
        description=f"Counter caching whether its value is "
                    f"{'even' if even_flavour else 'odd'}; "
                    f"the cached bit must track the value.",
        alias="t",
        concrete="nat * bool",
        operations=operations,
        spec_name="spec",
        spec_signature="t -> bool",
        helpers=["valid"],
        decls=decls,
        expected="let expected (c : nat * bool) : bool =\n  valid c",
    )
    return parts


def _ordered_pair(rng: random.Random) -> _Parts:
    """Invariant: the pair's first component never exceeds its second."""
    start_gap = rng.randint(0, 2)
    init = rng.choice(("init", "origin", "base"))
    raise_hi = rng.choice(("raise_hi", "grow", "widen"))
    bump = rng.choice(("bump_both", "advance", "slide"))

    decls = [
        f"let {init} : nat * nat = (O, {_lit(start_gap)})",
        f"let {raise_hi} (c : nat * nat) : nat * nat =\n"
        f"  match c with\n"
        f"  | (a, b) -> (a, S b)",
        f"let {bump} (c : nat * nat) : nat * nat =\n"
        f"  match c with\n"
        f"  | (a, b) -> (S a, S b)",
        "let valid (c : nat * nat) : bool =\n"
        "  match c with\n"
        "  | (a, b) -> nat_leq a b",
    ]
    operations = [(init, "t"), (raise_hi, "t -> t"), (bump, "t -> t")]

    if rng.random() < 0.5:
        reset = "rewind" if init != "rewind" else "restart"
        operations.append((reset, "t -> t"))
        decls.append(
            f"let {reset} (c : nat * nat) : nat * nat =\n"
            f"  match c with\n"
            f"  | (a, b) -> (O, b)")
    if rng.random() < 0.4:
        span = "span" if raise_hi != "span" else "extent"
        operations.append((span, "t -> nat"))
        decls.append(
            f"let {span} (c : nat * nat) : nat =\n"
            f"  match c with\n"
            f"  | (a, b) -> minus b a")

    two_abstract = rng.random() < 0.2
    if two_abstract:
        spec_signature = "t -> t -> bool"
        decls.append(
            "let spec (c : nat * nat) (d : nat * nat) : bool =\n"
            "  andb (valid c) (valid d)")
    else:
        spec_signature = "t -> bool"
        decls.append("let spec (c : nat * nat) : bool =\n  valid c")

    return _Parts(
        family="ordered",
        description="An interval-like pair: the low mark never passes the "
                    "high mark.",
        alias="t",
        concrete="nat * nat",
        operations=operations,
        spec_name="spec",
        spec_signature=spec_signature,
        helpers=["valid"],
        decls=decls,
        expected="let expected (c : nat * nat) : bool =\n"
                 "  match c with\n"
                 "  | (a, b) -> nat_leq a b",
    )


def _conserved_sum(rng: random.Random) -> _Parts:
    """Invariant: the two components always sum to a fixed total."""
    total = rng.randint(1, 3)
    init = rng.choice(("init", "full_left", "setup"))
    swap = rng.choice(("swap", "mirror", "flip"))
    shift = rng.choice(("shift", "pour", "trickle"))

    decls = [
        f"let {init} : nat * nat = ({_lit(total)}, O)",
        f"let {swap} (c : nat * nat) : nat * nat =\n"
        f"  match c with\n"
        f"  | (a, b) -> (b, a)",
        # Moving one unit from left to right keeps the sum; empty left is a
        # no-op, so `valid` is preserved in both branches.
        f"let {shift} (c : nat * nat) : nat * nat =\n"
        f"  match c with\n"
        f"  | (a, b) -> (match a with\n"
        f"               | O -> (a, b)\n"
        f"               | S x -> (x, S b))",
        f"let valid (c : nat * nat) : bool =\n"
        f"  match c with\n"
        f"  | (a, b) -> nat_eq (plus a b) {_lit(total)}",
    ]
    operations = [(init, "t"), (swap, "t -> t"), (shift, "t -> t")]

    if rng.random() < 0.4:
        left = "left_load" if init != "left_load" else "left_amount"
        operations.append((left, "t -> nat"))
        decls.append(
            f"let {left} (c : nat * nat) : nat =\n"
            f"  match c with\n"
            f"  | (a, b) -> a")

    decls.append("let spec (c : nat * nat) : bool =\n  valid c")

    return _Parts(
        family="conserved",
        description=f"Two buckets holding {total} unit(s) between them; "
                    f"operations only move units around.",
        alias="t",
        concrete="nat * nat",
        operations=operations,
        spec_name="spec",
        spec_signature="t -> bool",
        helpers=["valid"],
        decls=decls,
        expected="let expected (c : nat * nat) : bool =\n  valid c",
    )


#: Family name -> builder, in generation-weight order (tuples, not sets, so
#: enumeration order is deterministic).
FAMILIES: Dict[str, Callable[[random.Random], _Parts]] = {
    "bounded": _bounded_container,
    "capped": _capped_elements,
    "parity": _parity_pair,
    "ordered": _ordered_pair,
    "conserved": _conserved_sum,
}

_FAMILY_NAMES: Tuple[str, ...] = tuple(FAMILIES)
_FAMILY_WEIGHTS: Tuple[int, ...] = (30, 25, 15, 18, 12)


# -- assembly --------------------------------------------------------------------


@dataclass(frozen=True)
class GeneratedModule:
    """One generated benchmark: its seed, rendered text, and loaded definition."""

    seed: int
    name: str
    family: str
    text: str
    definition: ModuleDefinition

    @property
    def filename(self) -> str:
        return module_filename(self.name)


def _render(parts: _Parts, seed: int, name: str) -> str:
    lines: List[str] = []
    lines.append(f'benchmark "{name}"')
    lines.append(f"group {GENERATED_GROUP}")
    lines.append(f'description "{parts.description} '
                 f'[generated: family={parts.family} seed={seed}]"')
    lines.append("")
    lines.append(f"abstract type {parts.alias} = {parts.concrete}")
    lines.append("")
    for op_name, signature in parts.operations:
        lines.append(f"operation {op_name} : {signature}")
    lines.append(f"spec {parts.spec_name} : {parts.spec_signature}")
    if parts.components:
        lines.append("components " + ", ".join(parts.components))
    if parts.helpers:
        lines.append("helpers " + ", ".join(parts.helpers))
    lines.append("")
    for decl in parts.decls:
        lines.append(decl)
        lines.append("")
    lines.append("expected invariant")
    lines.append(parts.expected)
    return "\n".join(lines) + "\n"


def generate_module(seed: int) -> GeneratedModule:
    """Generate one module deterministically from an integer seed."""
    rng = random.Random(seed)
    family = rng.choices(_FAMILY_NAMES, weights=_FAMILY_WEIGHTS)[0]
    parts = FAMILIES[family](rng)
    name = f"/gen/{family}-{seed}"
    text = _render(parts, seed, name)
    try:
        definition = load_module_text(text, path=f"<generated seed={seed}>")
    except Exception as exc:  # pragma: no cover - a generator bug, not user error
        raise AssertionError(
            f"generator produced an invalid module for seed {seed} "
            f"(family {family!r}): {exc}\n--- text ---\n{text}") from exc
    return GeneratedModule(seed=seed, name=name, family=family, text=text,
                           definition=definition)


def _subseed(base: int, index: int) -> int:
    """The per-module seed of corpus position ``index`` (hash-free mixing)."""
    return (base * 1_000_003 + index) % (2 ** 31)


def generate_corpus(seed: int, count: int) -> List[GeneratedModule]:
    """Generate ``count`` modules; module *i* depends only on ``(seed, i)``."""
    modules: List[GeneratedModule] = []
    names: Dict[str, int] = {}
    for index in range(count):
        module = generate_module(_subseed(seed, index))
        if module.name in names:
            # Sub-seed collision (only possible for astronomically large
            # corpora); skip the duplicate so pack registration stays valid.
            continue
        names[module.name] = index
        modules.append(module)
    return modules


def write_corpus(modules: Sequence[GeneratedModule], out_dir: str) -> List[str]:
    """Write one ``.hanoi`` file per module; returns the paths written."""
    os.makedirs(out_dir, exist_ok=True)
    paths: List[str] = []
    for module in modules:
        path = os.path.join(out_dir, module.filename)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(module.text)
        paths.append(path)
    return paths


def corpus_digest(modules: Sequence[GeneratedModule],
                  algorithm: Optional[str] = None) -> str:
    """A stable content digest of a corpus (determinism tests compare these)."""
    digest = hashlib.new(algorithm or "sha256")
    for module in modules:
        digest.update(module.name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(module.text.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()
