"""Minimize a failing module to a small ``.hanoi`` reproducer.

When the differential harness (:mod:`repro.gen.diff`) flags a module - a
fingerprint mismatch across cache configurations, or an inferred invariant the
oracle rejects - the raw generated module is rarely the smallest witness.
:func:`shrink_module` greedily removes pieces while a caller-supplied
``still_fails`` predicate keeps holding:

* drop an interface operation (always keeping at least one);
* drop a helper function or an extra synthesis component;
* clear the expected invariant and the description;
* delete object-language function declarations that nothing reachable uses
  (dead code left behind by the earlier removals).

Every candidate is validated by rendering it with
:func:`repro.spec.export.render_module` and re-loading the text through
:func:`repro.spec.loader.load_module_text`, so a shrunk module is by
construction a well-formed ``.hanoi`` file; the reloaded definition (not the
in-memory candidate) is what ``still_fails`` judges and what the next round
shrinks, keeping the search honest about what the reproducer file actually
says.
"""

from __future__ import annotations

import dataclasses
import os
import re
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..core.module import ModuleDefinition
from ..lang.ast import FunDecl, free_vars
from ..lang.parser import parse_program
from ..lang.prelude import DEFAULT_SYNTHESIS_COMPONENTS
from ..spec.common import module_filename
from ..spec.export import render_module
from ..spec.loader import load_module_text

__all__ = ["shrink_module", "write_reproducer"]


# A top-level declaration opens at column zero with ``type`` or ``let``
# (optionally ``let rec``); everything up to the next such line - including
# any comment lines directly above it - belongs to that declaration's block.
_DECL_RE = re.compile(r"^(?:type|let)\s+(?:rec\s+)?(?P<name>[A-Za-z_][A-Za-z0-9_']*)")


def _source_blocks(source: str) -> List[Tuple[Optional[str], str]]:
    """Split module source into ``(decl_name, text)`` blocks.

    Lines before the first declaration (file comments) come back as a block
    with a ``None`` name and are always kept.
    """
    blocks: List[Tuple[Optional[str], List[str]]] = []
    current_name: Optional[str] = None
    current: List[str] = []
    for line in source.split("\n"):
        match = _DECL_RE.match(line)
        if match:
            if current:
                blocks.append((current_name, current))
            current_name = match.group("name")
            current = [line]
        else:
            current.append(line)
    if current:
        blocks.append((current_name, current))
    return [(name, "\n".join(lines).strip("\n")) for name, lines in blocks]


def _decl_dependencies(source: str) -> Dict[str, frozenset]:
    """Free global names used by each top-level function declaration."""
    deps: Dict[str, frozenset] = {}
    for decl in parse_program(source):
        if isinstance(decl, FunDecl):
            bound = {name for name, _ in decl.params} | {decl.name}
            deps[decl.name] = free_vars(decl.body) - frozenset(bound)
    return deps


def _reachable_functions(definition: ModuleDefinition) -> frozenset:
    """Function names transitively reachable from the module's interface.

    Roots are the operations, the specification, the synthesis components and
    helper functions, and anything the expected invariant mentions.  Type
    declarations are never considered dead - constructor reachability is not
    tracked, and keeping them is always safe.
    """
    deps = _decl_dependencies(definition.source)
    roots = set(op.name for op in definition.operations)
    roots.add(definition.spec_name)
    roots.update(definition.synthesis_components)
    roots.update(definition.helper_functions)
    if definition.expected_invariant:
        try:
            for decl in parse_program(definition.expected_invariant):
                if isinstance(decl, FunDecl):
                    bound = {name for name, _ in decl.params} | {decl.name}
                    roots.update(free_vars(decl.body) - frozenset(bound))
        except Exception:
            # An unparsable oracle cannot pin anything down; the candidate
            # validator decides whether the module still loads without it.
            pass
    seen = set()
    frontier = [name for name in roots if name in deps]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        frontier.extend(dep for dep in deps[name] if dep in deps and dep not in seen)
    return frozenset(seen)


def _without_dead_decls(definition: ModuleDefinition) -> Optional[ModuleDefinition]:
    """Drop unreachable function declarations from the source, if any."""
    try:
        reachable = _reachable_functions(definition)
        deps = _decl_dependencies(definition.source)
    except Exception:
        return None
    dead = {name for name in deps if name not in reachable}
    if not dead:
        return None
    kept = [text for name, text in _source_blocks(definition.source)
            if name is None or name not in dead]
    return dataclasses.replace(definition, source="\n\n".join(kept) + "\n")


def _candidates(definition: ModuleDefinition) -> Iterator[ModuleDefinition]:
    """Candidate reductions, most aggressive first."""
    # Drop one operation (the interface must keep at least one).
    if len(definition.operations) > 1:
        for index in range(len(definition.operations)):
            ops = (definition.operations[:index]
                   + definition.operations[index + 1:])
            yield dataclasses.replace(definition, operations=ops)
    # Dead object-language declarations (usually unlocked by an op drop).
    pruned = _without_dead_decls(definition)
    if pruned is not None:
        yield pruned
    # Drop one helper function.
    for index in range(len(definition.helper_functions)):
        helpers = (definition.helper_functions[:index]
                   + definition.helper_functions[index + 1:])
        yield dataclasses.replace(definition, helper_functions=helpers)
    # Drop one non-default synthesis component.
    defaults = frozenset(DEFAULT_SYNTHESIS_COMPONENTS)
    for index, name in enumerate(definition.synthesis_components):
        if name in defaults:
            continue
        components = (definition.synthesis_components[:index]
                      + definition.synthesis_components[index + 1:])
        yield dataclasses.replace(definition, synthesis_components=components)
    # Drop the oracle and the prose.
    if definition.expected_invariant is not None:
        yield dataclasses.replace(definition, expected_invariant=None)
    if definition.description:
        yield dataclasses.replace(definition, description="")


def _revalidate(candidate: ModuleDefinition) -> Optional[ModuleDefinition]:
    """Round-trip a candidate through export -> loader, or reject it."""
    try:
        return load_module_text(render_module(candidate))
    except Exception:
        return None


def shrink_module(definition: ModuleDefinition,
                  still_fails: Callable[[ModuleDefinition], bool],
                  max_steps: int = 200) -> ModuleDefinition:
    """Greedily minimize ``definition`` while ``still_fails`` holds.

    ``still_fails`` receives a candidate that already round-trips through
    export -> loader and must return True when the candidate still exhibits
    the failure being chased.  The returned definition is a fixpoint: no
    single candidate reduction both round-trips and still fails (or
    ``max_steps`` accepted reductions were reached, a safety valve).
    """
    current = _revalidate(definition)
    if current is None:
        raise ValueError(
            f"module {definition.name!r} does not round-trip through "
            "export -> loader; fix that before shrinking")
    if not still_fails(current):
        raise ValueError(
            f"module {definition.name!r} does not fail to begin with; "
            "nothing to shrink")
    steps = 0
    progress = True
    while progress and steps < max_steps:
        progress = False
        for candidate in _candidates(current):
            reloaded = _revalidate(candidate)
            if reloaded is None:
                continue
            if still_fails(reloaded):
                current = reloaded
                steps += 1
                progress = True
                break
    return current


def write_reproducer(definition: ModuleDefinition, directory: str) -> str:
    """Write a shrunk module as a ``.hanoi`` reproducer; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, module_filename(definition.name))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_module(definition))
    return path
