"""Property-based module generation and differential fuzzing.

This package turns the ``.hanoi`` benchmark frontend (:mod:`repro.spec`) into
a scaling corpus and a correctness oracle:

* :mod:`repro.gen.modgen` mints random ADT modules whose representation
  invariant is known *by construction* - the invariant is chosen first and
  every operation is derived so that it provably preserves it;
* :mod:`repro.gen.diff` runs generated (or any) modules through several
  inference modes under every cache configuration and cross-checks that the
  outcomes are byte-identical per mode, and that inferred invariants agree
  with the ground truth under the bounded tester;
* :mod:`repro.gen.shrink` minimizes a mismatching module to a small ``.hanoi``
  reproducer.

The CLI front end is ``python -m repro fuzz`` (see docs/fuzzing.md).
"""

from .diff import (
    CACHE_VARIANTS,
    DEFAULT_FUZZ_MODES,
    DifferentialMismatch,
    FuzzReport,
    outcome_fingerprint,
    variant_config,
)
from .modgen import (
    FAMILIES,
    GeneratedModule,
    corpus_digest,
    generate_corpus,
    generate_module,
    write_corpus,
)
from .shrink import shrink_module

__all__ = [
    "FAMILIES",
    "GeneratedModule",
    "generate_module",
    "generate_corpus",
    "write_corpus",
    "corpus_digest",
    "CACHE_VARIANTS",
    "DEFAULT_FUZZ_MODES",
    "variant_config",
    "outcome_fingerprint",
    "DifferentialMismatch",
    "FuzzReport",
    "shrink_module",
]
