"""Contracts: extraction of abstract-type values crossing module boundaries.

First-order positions are collected by a structural walk (``{|v|}_sigma``,
Figure 3); higher-order positions are instrumented with Findler-Felleisen
style contracts (Section 4.2).
"""

from .firstorder import collect_abstract
from .higherorder import ContractLog, wrap_function

__all__ = ["collect_abstract", "ContractLog", "wrap_function"]
