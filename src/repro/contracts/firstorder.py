"""First-order extraction of abstract-type values: the paper's ``{|v|}_sigma``.

Figure 3's collection function walks a value along its *interface* type and
collects the sub-values sitting at positions of the abstract type alpha:

* ``{|w|}_beta = {}`` - base-type values contain no abstract values,
* ``{|v|}_alpha = {v}`` - a value at the abstract type is itself collected,
* ``{|<v1, v2>|}_(s1*s2) = {|v1|}_s1 U {|v2|}_s2`` - products are walked
  component-wise.

Values at functional types are not walked (they cannot be collected by a
first-order traversal); Section 4.2's higher-order contracts handle them.
"""

from __future__ import annotations

from typing import List

from ..lang.types import TAbstract, TArrow, TData, TProd, Type
from ..lang.values import Value, VTuple

__all__ = ["collect_abstract"]


def collect_abstract(value: Value, interface_type: Type) -> List[Value]:
    """All sub-values of ``value`` located at abstract-type positions of
    ``interface_type``, in left-to-right order.

    The value is a concrete runtime value; the type is the *interface* type
    (written over the abstract type) describing where abstract positions are.
    """
    if isinstance(interface_type, TAbstract):
        return [value]
    if isinstance(interface_type, TData):
        return []
    if isinstance(interface_type, TArrow):
        # C-Base analogue for functions: nothing is collected first-order.
        return []
    if isinstance(interface_type, TProd):
        if not isinstance(value, VTuple) or len(value.items) != len(interface_type.items):
            raise ValueError(
                f"value {value} does not match product interface type {interface_type}"
            )
        collected: List[Value] = []
        for item, item_type in zip(value.items, interface_type.items):
            collected.extend(collect_abstract(item, item_type))
        return collected
    raise TypeError(f"unknown interface type: {interface_type!r}")
