"""Higher-order contracts for counterexample extraction (Section 4.2).

When a module operation takes a functional argument whose type mentions the
abstract type (for example ``fold : (nat -> t -> t) -> t -> t -> t``), values
of abstract type cross the module boundary in both directions *during the
call*:

* the implementation supplies a value to the client when it calls the
  functional argument - these module-to-client crossings must satisfy the
  candidate invariant ``Q`` (they are the positions labelled ``Q`` in the
  paper's example contract ``(any_int -> Q -> P) -> P -> P -> Q``);
* the client supplies a value to the module when the functional argument
  returns - these client-to-module crossings are assumed to satisfy ``P``
  (they are constructible from the client's perspective) and are collected
  into the witness set ``S``.

:class:`ContractLog` records both kinds of crossings; :func:`wrap_function`
wraps a function value so that every application is logged.  The
inductiveness checker inspects the log after running the operation: any
module-to-client value that violates ``Q`` is an inductiveness counterexample
(added to the witness set ``V``), and every client-to-module value joins the
operation's other abstract arguments in ``S``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..lang.types import TArrow, mentions_abstract
from ..lang.values import Value, VNative
from .firstorder import collect_abstract

__all__ = ["ContractLog", "wrap_function"]


@dataclass
class ContractLog:
    """Values of abstract type observed crossing a higher-order boundary."""

    #: Abstract values the module passed *into* a client function (must satisfy Q).
    module_to_client: List[Value] = field(default_factory=list)
    #: Abstract values a client function returned *to* the module (assumed P).
    client_to_module: List[Value] = field(default_factory=list)

    def clear(self) -> None:
        self.module_to_client.clear()
        self.client_to_module.clear()


def wrap_function(fn: Value, interface_type: TArrow, program, log: ContractLog) -> Value:
    """Wrap ``fn`` (a function value standing for a client-supplied argument)
    so that abstract values crossing the boundary are recorded in ``log``.

    ``interface_type`` is the functional argument's type written over the
    abstract type; it tells the contract which positions are abstract.  The
    wrapping handles curried arrows of any arity by re-wrapping intermediate
    results.
    """
    if not mentions_abstract(interface_type):
        return fn

    arg_type = interface_type.arg
    result_type = interface_type.result

    def guarded(argument: Value) -> Value:
        # The module is calling the client's function: the argument flows
        # module -> client.
        log.module_to_client.extend(collect_abstract(argument, arg_type))
        result = program.apply(fn, argument)
        if isinstance(result_type, TArrow):
            return wrap_function(result, result_type, program, log)
        # The client's function returns to the module: the result flows
        # client -> module.
        log.client_to_module.extend(collect_abstract(result, result_type))
        return result

    return VNative(guarded, name=f"contract<{interface_type}>")
