"""The paper's primary contribution: the Hanoi inference algorithm and the
module / specification / invariant model it operates over."""

from .config import (
    Deadline,
    FAST_VERIFIER_BOUNDS,
    HanoiConfig,
    InferenceTimeout,
    PAPER_VERIFIER_BOUNDS,
    SynthesisBounds,
    VerifierBounds,
)
from .hanoi import HanoiInference, infer_invariant
from .module import ModuleDefinition, ModuleInstance, Operation
from .predicate import Predicate, always_true
from .result import InferenceResult, Status, StoredInvariant
from .stats import InferenceStats
from .trace import CounterexampleTrace, TraceEntry

__all__ = [
    "HanoiInference",
    "infer_invariant",
    "ModuleDefinition",
    "ModuleInstance",
    "Operation",
    "Predicate",
    "always_true",
    "InferenceResult",
    "Status",
    "StoredInvariant",
    "InferenceStats",
    "CounterexampleTrace",
    "TraceEntry",
    "HanoiConfig",
    "VerifierBounds",
    "SynthesisBounds",
    "Deadline",
    "InferenceTimeout",
    "PAPER_VERIFIER_BOUNDS",
    "FAST_VERIFIER_BOUNDS",
]
