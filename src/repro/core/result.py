"""Inference results.

An :class:`InferenceResult` captures everything the experiment harness needs
about one run: the inferred invariant (if any), a status, the statistics that
populate the Figure-7 columns, and an event log from which the Figure-5 style
trace illustrations are rendered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .stats import InferenceStats

__all__ = ["InferenceResult", "Status", "StoredInvariant"]


class Status:
    """Outcome of an inference run (string constants, not an enum, so results
    serialize trivially)."""

    SUCCESS = "success"
    TIMEOUT = "timeout"
    #: The synthesizer could not produce a predicate (Figure 4's "No predicate found").
    SYNTHESIS_FAILURE = "synthesis-failure"
    #: A constructible value violating the specification was found
    #: (Figure 4's "Counterexample N"): the module does not satisfy the spec.
    SPEC_VIOLATION = "spec-violation"
    #: The run ended without success for another reason (iteration cap,
    #: unsupported feature, or an invariant that failed post-hoc validation).
    FAILURE = "failure"


@dataclass(frozen=True)
class StoredInvariant:
    """A deserialized invariant: its reported size and rendered source.

    Live runs carry a full :class:`~repro.core.predicate.Predicate`; results
    loaded back from a store only need the two facts the experiment tables
    report, so this stand-in offers the same ``size`` / ``render()`` surface.
    """

    size: Optional[int]
    rendered: str

    def render(self) -> str:
        return self.rendered

    def __str__(self) -> str:
        return self.rendered


@dataclass
class InferenceResult:
    """The outcome of running one inference mode on one benchmark."""

    benchmark: str
    mode: str
    status: str
    invariant: Optional[object]  # Predicate-like: callable with .size / .render()
    stats: InferenceStats
    message: str = ""
    iterations: int = 0
    events: List[Dict[str, object]] = field(default_factory=list)
    #: Name of the benchmark pack the benchmark came from (None = built-in
    #: suite).  Stamped by the result store when a sweep runs with ``--pack``.
    pack: Optional[str] = None
    #: Configuration-variant tag (None = the sweep's single configuration).
    #: The differential fuzzer runs every benchmark under several cache
    #: configurations; the tag keeps their rows distinct in the store the way
    #: ``pack`` keeps same-named benchmarks distinct.
    variant: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.status == Status.SUCCESS

    @property
    def invariant_size(self) -> Optional[int]:
        if self.invariant is None:
            return None
        return getattr(self.invariant, "size", None)

    def render_invariant(self) -> str:
        if self.invariant is None:
            return "(none)"
        render = getattr(self.invariant, "render", None)
        return render() if callable(render) else str(self.invariant)

    def as_row(self) -> Dict[str, object]:
        """A flat dictionary with the Figure-7 columns (plus bookkeeping)."""
        row: Dict[str, object] = {
            "name": self.benchmark,
            "mode": self.mode,
            "status": self.status,
            "size": self.invariant_size,
            "iterations": self.iterations,
        }
        row.update(self.stats.as_dict())
        return row

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dictionary capturing the whole result.

        This is the on-disk / cross-process representation used by the result
        store and the parallel runner.  The invariant is stored as its size and
        rendered source (the facts the tables report); :meth:`from_dict`
        rebuilds it as a :class:`StoredInvariant`.
        """
        data = {
            "benchmark": self.benchmark,
            "mode": self.mode,
            "status": self.status,
            "message": self.message,
            "iterations": self.iterations,
            "invariant": (
                None
                if self.invariant is None
                else {"size": self.invariant_size, "rendered": self.render_invariant()}
            ),
            "stats": self.stats.to_dict(),
            "events": list(self.events),
        }
        if self.pack is not None:
            data["pack"] = self.pack
        if self.variant is not None:
            data["variant"] = self.variant
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "InferenceResult":
        """Rebuild a result persisted by :meth:`to_dict`."""
        invariant_data = data.get("invariant")
        invariant: Optional[object] = None
        if invariant_data is not None:
            invariant = StoredInvariant(
                size=invariant_data.get("size"),
                rendered=invariant_data.get("rendered", ""),
            )
        return cls(
            benchmark=data["benchmark"],
            mode=data["mode"],
            status=data["status"],
            invariant=invariant,
            stats=InferenceStats.from_dict(data.get("stats", {})),
            message=data.get("message", ""),
            iterations=int(data.get("iterations", 0)),
            events=list(data.get("events", [])),
            pack=data.get("pack"),
            variant=data.get("variant"),
        )
