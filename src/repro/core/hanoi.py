"""The Hanoi inference algorithm (Figure 4), with the optimizations of
Section 4.4.

The loop maintains

* ``V+`` - positive examples, known constructible values of the abstract type
  that every future candidate must accept, and
* ``V-`` - negative examples, values the current candidate must reject (they
  may or may not be constructible),

and alternates two phases for each synthesized candidate ``I``:

* **ClosedPositives** (weakening): check *visible inductiveness* - conditional
  inductiveness with ``P`` = membership in V+ and ``Q`` = ``I``.  A
  counterexample's outputs are constructible (they are produced by module
  operations from known-constructible inputs), so they are added to V+ and
  the candidate is re-synthesized.  Without counterexample list caching V- is
  reset at this point; with it, the trace of the current strengthening phase
  is replayed (Figures 5-6).
* **NoNegatives** (strengthening): check sufficiency and then full
  inductiveness (``P`` = ``Q`` = ``I``).  Counterexample witnesses that are
  not already known constructible become new negative examples; if every
  witness of a sufficiency violation is known constructible, the module
  simply does not satisfy the specification and the loop reports it.

The loop terminates when a candidate passes both phases: that candidate is a
(likely) sufficient representation invariant.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from ..enumeration.functions import FunctionEnumerator
from ..enumeration.values import ValueEnumerator
from ..inductive.relation import ConditionalInductivenessChecker
from ..lang.values import Value, value_size
from ..obs.events import Emitter, LegacyRecorder
from ..obs.sinks import LegacyEventSink, installed_sinks
from ..analysis.canon import canonical_hash
from ..synth.base import SynthesisFailure
from ..synth.cache import SynthesisResultCache
from ..synth.myth import MythSynthesizer
from ..synth.poolcache import SynthesisEvaluationCache
from ..verify.backend import make_backend
from ..verify.evalcache import EvaluationCache
from ..verify.result import InductivenessCounterexample, SufficiencyCounterexample
from ..verify.tester import Verifier
from .config import Deadline, HanoiConfig, InferenceTimeout
from .module import ModuleDefinition, ModuleInstance
from .predicate import Predicate
from .result import InferenceResult, Status
from .stats import InferenceStats
from .trace import CounterexampleTrace

__all__ = ["HanoiInference", "infer_invariant"]

SynthesizerFactory = Callable[..., object]


class HanoiInference:
    """One configured inference run over one module."""

    def __init__(self, module: ModuleDefinition, config: Optional[HanoiConfig] = None,
                 synthesizer_factory: Optional[SynthesizerFactory] = None,
                 mode_name: str = "hanoi", emitter: Optional[object] = None):
        self.config = config or HanoiConfig()
        self.definition = module
        self.instance: ModuleInstance = module.instantiate(fuel=self.config.eval_fuel)
        self.mode_name = mode_name

        # The run always needs its legacy event log (it populates
        # ``InferenceResult.events``); spans and the rest of the trace stream
        # exist only when tracing is on.  With no emitter supplied and no sink
        # installed, the LegacyRecorder keeps the run exactly as cheap as the
        # seed's ad-hoc ``self.events.append``.
        if emitter is None:
            sinks = installed_sinks()
            if sinks:
                emitter = Emitter(sinks=sinks, run=f"{module.name}/{mode_name}")
            else:
                emitter = LegacyRecorder()
        if isinstance(emitter, Emitter):
            self._legacy = LegacyEventSink()
            emitter.sinks.append(self._legacy)
            self.events: List[dict] = self._legacy.events
        else:
            self.events = getattr(emitter, "events", [])
        self.emitter = emitter

        self.stats = InferenceStats()
        self.deadline: Deadline = self.config.deadline()
        self.enumerator = ValueEnumerator(self.instance.program.types)
        # Caches are keyed by the module's canonical content hash: two
        # alpha-equivalent spellings of the same module share a key, so any
        # future cross-run reuse (or trace comparison) identifies cached work
        # by behaviour rather than source text.
        content_key = ""
        if self.config.evaluation_caching or self.config.synthesis_evaluation_caching:
            try:
                content_key = canonical_hash(module)
            except Exception:
                content_key = ""
        self.content_key = content_key
        self.eval_cache: Optional[EvaluationCache] = (
            EvaluationCache(content_key=content_key)
            if self.config.evaluation_caching else None
        )
        self.verifier = Verifier(
            self.instance, self.enumerator, self.config.verifier_bounds, self.stats,
            self.deadline, eval_cache=self.eval_cache, emitter=self.emitter,
        )
        self.checker = ConditionalInductivenessChecker(
            self.instance,
            self.enumerator,
            FunctionEnumerator(self.instance),
            self.config.verifier_bounds,
            self.stats,
            self.deadline,
            eval_cache=self.eval_cache,
            emitter=self.emitter,
        )
        # All sufficiency / inductiveness obligations of the loop go through
        # the configured backend (docs/verification.md); ``enumerative``
        # reproduces the seed's direct verifier/checker calls exactly.
        self.backend = make_backend(
            self.config.verifier_backend,
            instance=self.instance,
            verifier=self.verifier,
            checker=self.checker,
            stats=self.stats,
            emitter=self.emitter,
        )
        self.pool_cache: Optional[SynthesisEvaluationCache] = (
            SynthesisEvaluationCache(content_key=content_key)
            if self.config.synthesis_evaluation_caching else None
        )
        # Persistent cache tier (docs/service.md): warm the freshly created
        # caches from the content-addressed disk store before the loop
        # starts.  Strictly best-effort - any failure here or at write-back
        # downgrades to a cold start, never changes an outcome, and is
        # surfaced as a ``disk-cache-warning`` event.  ``cache_dir=None``
        # (the default) skips even the import, so runs without persistence
        # pay nothing.
        self.persistent = None
        if self.config.cache_dir and (self.eval_cache is not None
                                      or self.pool_cache is not None):
            try:
                from ..serve.diskcache import DiskCacheStore, PersistentCacheBinding

                store = DiskCacheStore(self.config.cache_dir,
                                       warn=self._disk_cache_warning)
                self.persistent = PersistentCacheBinding(
                    store, self.definition, self.instance, self.config)
                self.persistent.restore(self.eval_cache, self.pool_cache,
                                        self.stats)
            except Exception as error:
                self.persistent = None
                self._disk_cache_warning("persistent cache disabled for this run",
                                         {"error": repr(error)})
        factory = synthesizer_factory or MythSynthesizer
        self.synthesizer = factory(
            self.instance,
            bounds=self.config.synthesis_bounds,
            stats=self.stats,
            deadline=self.deadline,
            pool_cache=self.pool_cache,
        )
        self.cache: Optional[SynthesisResultCache] = (
            SynthesisResultCache() if self.config.synthesis_result_caching else None
        )
        self.trace: Optional[CounterexampleTrace] = (
            CounterexampleTrace() if self.config.counterexample_list_caching else None
        )
        # Custom factories (tests) may not accept an ``emitter`` kwarg, so the
        # synthesizer is wired up after construction; objects that cannot take
        # the attribute simply run untraced.
        try:
            self.synthesizer.emitter = self.emitter
        except AttributeError:
            pass

    # -- public API -------------------------------------------------------------

    def infer(self) -> InferenceResult:
        """Run the CEGIS loop of Figure 4 and return the outcome."""
        emitter = self.emitter
        if not emitter.enabled:
            result = self._infer()
            self._persist_caches()
            return result
        with emitter.span("run", {"benchmark": self.definition.name,
                                  "mode": self.mode_name}, cat="run"):
            emitter.emit("run-start", {"benchmark": self.definition.name,
                                       "mode": self.mode_name}, cat="run")
            result = self._infer()
            self._persist_caches()
            self._emit_cache_snapshot()
            emitter.emit("run-end", {"status": result.status,
                                     "iterations": result.iterations,
                                     "stats": self.stats.counters()}, cat="run")
        return result

    def _persist_caches(self) -> None:
        """Write the run's cache state back to the persistent tier."""
        if self.persistent is None:
            return
        try:
            self.persistent.persist(self.eval_cache, self.pool_cache)
        except Exception as error:
            self._disk_cache_warning("persistent cache write failed",
                                     {"error": repr(error)})

    def _disk_cache_warning(self, message: str, detail: dict) -> None:
        data: dict = {"message": message}
        data.update(detail)
        self.emitter.emit("disk-cache-warning", data, legacy=True)

    def _emit_cache_snapshot(self) -> None:
        """Final cache occupancy, for the analyzer's growth reporting."""
        data: dict = {}
        if self.eval_cache is not None:
            data["eval"] = self.eval_cache.snapshot()
        if self.pool_cache is not None:
            data["pool"] = self.pool_cache.snapshot()
        if data:
            self.emitter.emit("cache-snapshot", data, cat="cache")

    def _infer(self) -> InferenceResult:
        emitter = self.emitter
        positives: Set[Value] = set()
        negatives: Set[Value] = set()
        iterations = 0
        try:
            while iterations < self.config.max_iterations:
                iterations += 1
                self.deadline.check()
                with emitter.span("iteration",
                                  {"index": iterations} if emitter.enabled else None):
                    outcome = self._iterate(positives, negatives)
                if outcome is not None:
                    status, invariant, message = outcome
                    return self._result(status, invariant, iterations, message=message)

            return self._result(Status.FAILURE, None, iterations,
                                message="iteration limit reached")
        except InferenceTimeout as timeout:
            return self._result(Status.TIMEOUT, None, iterations, message=str(timeout))
        except SynthesisFailure as failure:
            return self._result(Status.SYNTHESIS_FAILURE, None, iterations, message=str(failure))
        except NotImplementedError as unsupported:
            return self._result(Status.FAILURE, None, iterations, message=str(unsupported))

    def _iterate(self, positives: Set[Value],
                 negatives: Set[Value]) -> Optional[tuple]:
        """One CEGIS iteration over the mutable example sets.

        Returns ``None`` to continue looping, or a ``(status, invariant,
        message)`` triple when the run is decided.
        """
        try:
            candidate = self._next_candidate(positives, negatives)
        except SynthesisFailure:
            # Trace completeness pads unknown sub-values of examples
            # to false (Section 4.3).  When such a value is in fact
            # constructible, no candidate can separate the padded
            # example sets even though an invariant exists; the fix
            # the padding relies on - a visible check moving the
            # value into V+ - never runs if synthesis dies first.
            # Recover by growing V+ with outputs the module produces
            # from known-constructible inputs, then resynthesize.
            closure = self.checker.check(
                p=lambda v: v in positives,
                q=lambda v: v in positives,
                p_pool=positives,
            )
            if not isinstance(closure, InductivenessCounterexample):
                raise
            new_positives = set(closure.outputs) - positives
            if not new_positives:
                raise
            self._log("synthesis-recovery", None,
                      operation=closure.operation,
                      added=[str(v) for v in
                             sorted(new_positives, key=value_size)])
            positives |= new_positives
            self.stats.positives_added += len(new_positives)
            self._replace_negatives(negatives, new_positives, positives)
            return None
        self.stats.candidates_proposed += 1

        # -- ClosedPositives: weaken until visibly inductive ------------------
        visible = self.backend.check_inductiveness(
            p=lambda v: v in positives, q=candidate, p_pool=positives
        )
        if isinstance(visible, InductivenessCounterexample):
            new_positives = set(visible.outputs) - positives
            self._log("visible-counterexample", candidate,
                      operation=visible.operation,
                      added=[str(v) for v in sorted(new_positives, key=value_size)])
            positives |= new_positives
            self.stats.positives_added += len(new_positives)
            self._replace_negatives(negatives, new_positives, positives)
            return None

        # -- NoNegatives: sufficiency, then full inductiveness ------------------
        sufficiency = self.backend.check_sufficiency(candidate)
        if isinstance(sufficiency, SufficiencyCounterexample):
            witnesses = set(sufficiency.witnesses)
            new_negatives = witnesses - positives
            if not new_negatives:
                # Every witness is known constructible: the module
                # itself violates the specification (Figure 4's
                # "Counterexample N" failure).
                self._log("spec-violation", candidate,
                          witnesses=[str(v) for v in witnesses])
                return (Status.SPEC_VIOLATION, None,
                        "constructible specification violation: "
                        + ", ".join(str(v) for v in witnesses))
            self._log("sufficiency-counterexample", candidate,
                      added=[str(v) for v in sorted(new_negatives, key=value_size)])
            negatives |= new_negatives
            self.stats.negatives_added += len(new_negatives)
            if self.trace is not None:
                self.trace.record(candidate, new_negatives)
            return None

        inductive = self.backend.check_inductiveness(
            p=candidate, q=candidate, p_pool=None)
        if isinstance(inductive, InductivenessCounterexample):
            witnesses = set(inductive.inputs)
            new_negatives = witnesses - positives
            if not new_negatives:
                # Should be impossible once the candidate is visibly
                # inductive (Lemma B.11); with a bounded, unsound
                # verifier it can still occur, in which case the
                # outputs are known constructible and we weaken.
                new_positives = set(inductive.outputs) - positives
                if not new_positives:
                    return (Status.FAILURE, None,
                            "inductiveness counterexample entirely inside V+")
                self._log("late-visible-counterexample", candidate,
                          operation=inductive.operation,
                          added=[str(v) for v in new_positives])
                positives |= new_positives
                self.stats.positives_added += len(new_positives)
                self._replace_negatives(negatives, new_positives, positives)
                return None
            self._log("inductiveness-counterexample", candidate,
                      operation=inductive.operation,
                      added=[str(v) for v in sorted(new_negatives, key=value_size)])
            negatives |= new_negatives
            self.stats.negatives_added += len(new_negatives)
            if self.trace is not None:
                self.trace.record(candidate, new_negatives)
            return None

        # Both checks passed: the candidate is a (likely) sufficient
        # representation invariant.
        self._log("success", candidate)
        return (Status.SUCCESS, candidate, "")

    # -- helpers -------------------------------------------------------------------

    def _next_candidate(self, positives: Set[Value], negatives: Set[Value]) -> Predicate:
        """Look up a cached candidate or call the synthesizer (Section 4.4)."""
        if self.cache is not None:
            cached = self.cache.lookup(positives, negatives)
            if cached is not None:
                self.stats.synthesis_cache_hits += 1
                if self.emitter.enabled:
                    self.emitter.emit("synthesis-result-cache", {"hits": 1}, cat="cache")
                self._log("synthesis-cache-hit", cached)
                return cached
        candidates = self.synthesizer.synthesize(positives, negatives)
        if self.cache is not None:
            self.cache.store(candidates)
        self._log("synthesized", candidates[0], alternatives=len(candidates))
        return candidates[0]

    def _reset_negatives(self, new_positives: Set[Value], positives: Set[Value]) -> Set[Value]:
        """V- after a weakening step: empty without counterexample list
        caching, otherwise the replayed prefix of the current trace."""
        if self.trace is None:
            return set()
        replayed = self.trace.replay(new_positives) - positives
        self.stats.trace_replays += 1
        self._log("trace-replay", None, kept=len(replayed))
        return set(replayed)

    def _replace_negatives(self, negatives: Set[Value], new_positives: Set[Value],
                           positives: Set[Value]) -> None:
        """In-place version of :meth:`_reset_negatives` (the iteration helper
        shares the caller's set)."""
        replacement = self._reset_negatives(new_positives, positives)
        negatives.clear()
        negatives.update(replacement)

    def _log(self, event: str, candidate: Optional[object], **details: object) -> None:
        data: dict = {}
        if candidate is not None:
            data["candidate_size"] = getattr(candidate, "size", None)
        data.update(details)
        self.emitter.emit(event, data, legacy=True)

    def _result(self, status: str, invariant: Optional[Predicate], iterations: int,
                message: str = "") -> InferenceResult:
        self.stats.finish()
        return InferenceResult(
            benchmark=self.definition.name,
            mode=self.mode_name,
            status=status,
            invariant=invariant,
            stats=self.stats,
            message=message,
            iterations=iterations,
            events=self.events,
        )


def infer_invariant(module: ModuleDefinition, config: Optional[HanoiConfig] = None,
                    synthesizer_factory: Optional[SynthesizerFactory] = None,
                    emitter: Optional[object] = None) -> InferenceResult:
    """Convenience wrapper: run Hanoi on a module definition and return the result."""
    return HanoiInference(module, config=config, synthesizer_factory=synthesizer_factory,
                          emitter=emitter).infer()
