"""Candidate invariants as first-class predicate objects.

A :class:`Predicate` wraps a unary object-language function over the concrete
type ``tau_c`` returning ``bool`` - exactly the shape of a representation
invariant ``I : tau_c -> bool``.  Predicates know how to

* evaluate themselves on concrete values (with memoization, since the Hanoi
  loop evaluates the same candidate on the same values many times),
* report their AST size (the ``Size`` column of Figure 7),
* render themselves the way the paper prints invariants.

Predicates are built either from a synthesized :class:`~repro.lang.ast.FunDecl`
or parsed from object-language source (used for the hand-written oracle
invariants in the benchmark suite and the tests).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..lang.ast import ECtor, Expr, FunDecl, expr_size
from ..lang.errors import LangError
from ..lang.eval import EvalBudget
from ..lang.parser import parse_program
from ..lang.pretty import pretty_fun_decl
from ..lang.program import Program
from ..lang.types import TData, Type
from ..lang.values import Value, VClosure, bool_of_value

__all__ = ["Predicate", "always_true"]

#: Name used for the invariant's self-reference inside synthesized candidates.
INVARIANT_NAME = "inv"


class Predicate:
    """A candidate representation invariant ``I : tau_c -> bool``."""

    def __init__(self, decl: FunDecl, program: Program):
        if len(decl.params) != 1:
            raise ValueError("a representation invariant takes exactly one argument")
        self.decl = decl
        self.program = program
        self._cache: Dict[Value, bool] = {}
        param_name, param_type = decl.params[0]
        body: Expr = decl.body
        self._closure = VClosure(
            param_name,
            param_type,
            body,
            {},
            rec_name=decl.name if decl.recursive else None,
        )

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_source(cls, source: str, program: Program, name: Optional[str] = None) -> "Predicate":
        """Parse a single ``let [rec] ... = ...`` definition into a predicate.

        The definition is *not* installed into the program's globals; it only
        needs the program for evaluation of the functions it calls.
        """
        decls = parse_program(source)
        fun_decls = [d for d in decls if isinstance(d, FunDecl)]
        if not fun_decls:
            raise ValueError("no function definition found in predicate source")
        if name is not None:
            matches = [d for d in fun_decls if d.name == name]
            if not matches:
                raise ValueError(f"no definition named {name!r} in predicate source")
            decl = matches[0]
        else:
            decl = fun_decls[-1]
        return cls(decl, program)

    @classmethod
    def from_body(cls, body: Expr, param: str, concrete_type: Type, program: Program,
                  recursive: bool = True, name: str = INVARIANT_NAME) -> "Predicate":
        """Build a predicate from a synthesized body expression."""
        decl = FunDecl(
            name=name,
            params=((param, concrete_type),),
            return_type=TData("bool"),
            body=body,
            recursive=recursive,
        )
        return cls(decl, program)

    # -- evaluation --------------------------------------------------------------

    def __call__(self, value: Value) -> bool:
        """Evaluate the invariant on a concrete value.

        Evaluation failures (fuel exhaustion, match failure) are treated as
        the candidate rejecting the value; synthesized candidates are total by
        construction, so this only matters for adversarial hand-written
        predicates.
        """
        if value in self._cache:
            return self._cache[value]
        try:
            budget = EvalBudget(self.program.evaluator.default_fuel)
            result = bool_of_value(self.program.evaluator.apply(self._closure, value, budget=budget))
        except (LangError, ValueError):
            result = False
        self._cache[value] = result
        return result

    def accepts_all(self, values) -> bool:
        return all(self(v) for v in values)

    def rejects_all(self, values) -> bool:
        return all(not self(v) for v in values)

    def consistent_with(self, positives, negatives) -> bool:
        """True when the predicate separates the given example sets."""
        return self.accepts_all(positives) and self.rejects_all(negatives)

    # -- reporting -------------------------------------------------------------------

    @property
    def size(self) -> int:
        """AST size of the invariant (parameters count one node each)."""
        return expr_size(self.decl.body) + len(self.decl.params) + 1

    @property
    def name(self) -> str:
        return self.decl.name

    def render(self) -> str:
        """Render the invariant the way the paper presents inferred invariants."""
        return pretty_fun_decl(self.decl)

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Predicate({self.decl.name}, size={self.size})"


def always_true(concrete_type: Type, program: Program) -> Predicate:
    """The trivial invariant ``fun _ -> true`` (the loop's first candidate)."""
    decl = FunDecl(
        name=INVARIANT_NAME,
        params=(("x", concrete_type),),
        return_type=TData("bool"),
        body=ECtor("True"),
        recursive=False,
    )
    return Predicate(decl, program)
