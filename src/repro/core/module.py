"""The module / interface / specification model.

Following Section 3.1 of the paper:

* an *interface* ``F = exists alpha. tau_m`` declares an abstract type and the
  signatures of the operations over it (:class:`Operation` carries each
  operation's name and its interface type, written with
  :class:`~repro.lang.types.TAbstract`);
* a *module implementation* ``M = <tau_c, v_m>`` packages a concrete type and
  operation values; here a :class:`ModuleDefinition` carries the module's
  object-language source plus the metadata the inference pipeline needs, and a
  :class:`ModuleInstance` is the definition loaded into a runnable
  :class:`~repro.lang.Program`;
* a *specification* ``phi : forall alpha. tau_m -> alpha -> ... -> bool`` is a
  function in the module's source whose arguments are values of the abstract
  type and of base types; the verifier enumerates all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..lang.prelude import DEFAULT_SYNTHESIS_COMPONENTS
from ..lang.program import Program
from ..lang.types import (
    TArrow,
    Type,
    arrow_args,
    arrow_result,
    mentions_abstract,
    substitute_abstract,
)
from ..lang.values import Value

__all__ = ["Operation", "ModuleDefinition", "ModuleInstance"]


@dataclass(frozen=True)
class Operation:
    """One operation of a module interface.

    ``signature`` is the interface type written over the abstract type, for
    example ``t -> nat -> t`` for ``insert`` (with ``t`` = :class:`TAbstract`).
    """

    name: str
    signature: Type

    @property
    def argument_types(self) -> Tuple[Type, ...]:
        return tuple(arrow_args(self.signature))

    @property
    def result_type(self) -> Type:
        return arrow_result(self.signature)

    @property
    def produces_abstract(self) -> bool:
        """True when the operation can return values of the abstract type."""
        return mentions_abstract(self.result_type)

    @property
    def consumes_abstract(self) -> bool:
        """True when some argument position mentions the abstract type."""
        return any(mentions_abstract(t) for t in self.argument_types)


@dataclass(frozen=True)
class ModuleDefinition:
    """A benchmark problem: module source, interface, specification, and
    synthesis metadata.

    Attributes
    ----------
    name:
        Benchmark identifier; the suite uses the paper's names, e.g.
        ``/coq/unique-list-::-set``.
    group:
        Benchmark group (``vfa``, ``vfa-extended``, ``coq``, ``other``).
    source:
        Object-language source of the module (loaded on top of the prelude).
    concrete_type:
        The concrete representation type ``tau_c``.
    operations:
        The interface operations (order matters: inductiveness checks walk
        them in order, as the paper's Figure 3 walks the module value).
    spec_name:
        Name of the specification function defined in ``source``.
    spec_signature:
        Argument types of the specification over the abstract type; the
        result type is always ``bool``.
    synthesis_components:
        Names of functions the synthesizer may call inside candidate
        invariants (module operations, prelude helpers, and any starred
        helper functions the paper added to enable Myth).
    helper_functions:
        Names of helper functions added specifically to make synthesis
        feasible (the ``*`` benchmarks of Figure 7).
    expected_invariant:
        Optional object-language source of a known sufficient representation
        invariant, used by the test suite as an oracle and for documentation.
    description:
        Human-readable summary used by reports and EXPERIMENTS.md.
    """

    name: str
    group: str
    source: str
    concrete_type: Type
    operations: Tuple[Operation, ...]
    spec_name: str
    spec_signature: Tuple[Type, ...]
    synthesis_components: Tuple[str, ...] = DEFAULT_SYNTHESIS_COMPONENTS
    helper_functions: Tuple[str, ...] = ()
    expected_invariant: Optional[str] = None
    description: str = ""

    @property
    def has_higher_order_operations(self) -> bool:
        """True when some operation takes a functional argument."""
        return any(
            isinstance(t, TArrow) for op in self.operations for t in op.argument_types
        )

    @property
    def has_binary_operations(self) -> bool:
        """True when some operation takes two or more abstract arguments."""
        return any(
            sum(1 for t in op.argument_types if mentions_abstract(t)) >= 2
            for op in self.operations
        )

    @property
    def spec_abstract_arity(self) -> int:
        """How many abstract-type values the specification quantifies over."""
        return sum(1 for t in self.spec_signature if mentions_abstract(t))

    def instantiate(self, fuel: int = 500_000) -> "ModuleInstance":
        """Load the module source into a runnable program."""
        return ModuleInstance(self, Program.from_source(self.source, fuel=fuel))


class ModuleInstance:
    """A :class:`ModuleDefinition` loaded into a :class:`Program`."""

    def __init__(self, definition: ModuleDefinition, program: Program):
        self.definition = definition
        self.program = program
        self._validate()

    def _validate(self) -> None:
        for op in self.definition.operations:
            if not self.program.has_global(op.name):
                raise ValueError(
                    f"module {self.definition.name!r} does not define operation {op.name!r}"
                )
        if not self.program.has_global(self.definition.spec_name):
            raise ValueError(
                f"module {self.definition.name!r} does not define specification "
                f"{self.definition.spec_name!r}"
            )
        for name in self.definition.synthesis_components:
            if not self.program.has_global(name):
                raise ValueError(
                    f"module {self.definition.name!r}: unknown synthesis component {name!r}"
                )

    # -- convenience accessors ---------------------------------------------------

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def concrete_type(self) -> Type:
        return self.definition.concrete_type

    @property
    def operations(self) -> Tuple[Operation, ...]:
        return self.definition.operations

    def operation_value(self, op: Operation) -> Value:
        return self.program.global_value(op.name)

    def operation_concrete_signature(self, op: Operation) -> Type:
        """The operation's type with the abstract type replaced by ``tau_c``."""
        return substitute_abstract(op.signature, self.concrete_type)

    def spec_value(self) -> Value:
        return self.program.global_value(self.definition.spec_name)

    def spec_concrete_signature(self) -> Tuple[Type, ...]:
        return tuple(
            substitute_abstract(t, self.concrete_type) for t in self.definition.spec_signature
        )

    def component_types(self) -> Dict[str, Type]:
        """Concrete types of every synthesis component (for the synthesizer)."""
        return {
            name: self.program.global_type(name)
            for name in self.definition.synthesis_components
        }

    def call_operation(self, op: Operation, *args: Value) -> Value:
        return self.program.call(op.name, *args)

    def call_spec(self, *args: Value) -> Value:
        return self.program.call(self.definition.spec_name, *args)
