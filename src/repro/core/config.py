"""Configuration of the inference pipeline.

Three concerns are configured here:

* :class:`VerifierBounds` - how hard the size-bounded enumerative verifier
  tries (Section 4.3 of the paper fixes 3000 structures of at most 30 AST
  nodes for single-quantifier properties, 3000 structures of at most 15 AST
  nodes per quantifier with a total cap of 30000 for multi-quantifier ones).
* :class:`SynthesisBounds` - how large the synthesizer's search is allowed to
  grow (match depth, per-branch term size, number of conjuncts).
* :class:`HanoiConfig` - loop-level options: timeouts and the two
  optimizations of Section 4.4 (synthesis result caching and counterexample
  list caching), which the ablation modes Hanoi-SRC / Hanoi-CLC disable.

A :class:`Deadline` provides cooperative timeout checking; the verifier,
synthesizer, and Hanoi loop poll it inside their hot loops so a run never
exceeds its wall-clock budget by more than a single evaluation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = [
    "VerifierBounds",
    "SynthesisBounds",
    "HanoiConfig",
    "Deadline",
    "InferenceTimeout",
    "PAPER_VERIFIER_BOUNDS",
    "FAST_VERIFIER_BOUNDS",
]


class InferenceTimeout(Exception):
    """Raised when an inference run exceeds its wall-clock budget."""


@dataclass
class Deadline:
    """A cooperative wall-clock deadline.

    ``None`` as the budget means "no deadline".  ``check()`` raises
    :class:`InferenceTimeout` once the budget is exhausted.
    """

    seconds: Optional[float] = None
    started_at: float = field(default_factory=time.perf_counter)

    def expired(self) -> bool:
        return self.seconds is not None and (time.perf_counter() - self.started_at) > self.seconds

    def check(self) -> None:
        if self.expired():
            raise InferenceTimeout(f"exceeded time budget of {self.seconds:.1f}s")

    def remaining(self) -> Optional[float]:
        if self.seconds is None:
            return None
        return max(0.0, self.seconds - (time.perf_counter() - self.started_at))


@dataclass(frozen=True)
class VerifierBounds:
    """Bounds on the enumerative verifier (Section 4.3)."""

    #: Maximum structures tested for a single-quantifier property.
    max_structures_single: int = 3000
    #: Maximum AST nodes of a structure for a single-quantifier property.
    max_nodes_single: int = 30
    #: Maximum structures per quantifier for multi-quantifier properties.
    max_structures_multi: int = 3000
    #: Maximum AST nodes per structure for multi-quantifier properties.
    max_nodes_multi: int = 15
    #: Overall cap on structures processed in one verification call.
    max_total: int = 30000
    #: Cap on enumerated abstract values per operation in inductiveness checks.
    max_abstract_values: int = 300
    #: Cap on enumerated base-type values per argument position.
    max_base_values: int = 12
    #: Cap on enumerated function values per higher-order argument position.
    max_function_values: int = 6
    #: Cap on applications tried per module operation in one inductiveness check.
    max_applications_per_operation: int = 4000

    def scaled(self, factor: float) -> "VerifierBounds":
        """A proportionally smaller (or larger) copy of these bounds."""
        return replace(
            self,
            max_structures_single=max(1, int(self.max_structures_single * factor)),
            max_structures_multi=max(1, int(self.max_structures_multi * factor)),
            max_total=max(1, int(self.max_total * factor)),
            max_abstract_values=max(1, int(self.max_abstract_values * factor)),
            max_applications_per_operation=max(1, int(self.max_applications_per_operation * factor)),
        )


#: The bounds reported in the paper (Section 4.3).
PAPER_VERIFIER_BOUNDS = VerifierBounds()

#: Much smaller bounds used by the test suite and the quick benchmark harness,
#: so CI runs stay fast.  The CEGIS dynamics are unchanged; the verifier is
#: simply a little more unsound.
FAST_VERIFIER_BOUNDS = VerifierBounds(
    max_structures_single=400,
    max_nodes_single=17,
    max_structures_multi=300,
    max_nodes_multi=13,
    max_total=4000,
    max_abstract_values=120,
    max_base_values=7,
    max_function_values=4,
    max_applications_per_operation=900,
)


@dataclass(frozen=True)
class SynthesisBounds:
    """Bounds on the type-and-example-directed synthesizer."""

    #: Maximum nesting depth of synthesized ``match`` expressions.
    max_match_depth: int = 2
    #: Maximum AST size of an atomic (match-free) branch term.
    max_term_size: int = 7
    #: Maximum number of atoms conjoined in a single branch body.
    max_conjuncts: int = 4
    #: Maximum number of candidates returned per synthesis call (the paper's
    #: modified Myth returns a set of candidates for result caching).
    max_candidates: int = 12
    #: Hard cap on terms enumerated per branch before giving up.
    max_terms_per_branch: int = 60000
    #: Drop synthesis components that type-inhabitation reachability proves
    #: can never appear in a well-typed goal term before the term pool is
    #: built (``repro.analysis.reachability``).  Sound: the analysis
    #: over-approximates both constructible argument types and
    #: goal-reaching result types, so the candidate stream is identical
    #: with the switch on or off.
    component_pruning: bool = True


@dataclass(frozen=True)
class HanoiConfig:
    """Options of the top-level inference loop."""

    verifier_bounds: VerifierBounds = FAST_VERIFIER_BOUNDS
    synthesis_bounds: SynthesisBounds = SynthesisBounds()
    #: Wall-clock budget in seconds; ``None`` disables the timeout.
    timeout_seconds: Optional[float] = None
    #: Section 4.4: reuse previously synthesized candidates when consistent.
    synthesis_result_caching: bool = True
    #: Section 4.4: replay the synthesis/verification trace when V+ grows
    #: instead of resetting V- to the empty set.
    counterexample_list_caching: bool = True
    #: The same principle applied to Verify: cache candidate-independent
    #: evaluation work (spec verdicts per assignment, module-operation
    #: applications) across refinement iterations.  Off switch for the
    #: ablation; verdicts are identical either way.
    evaluation_caching: bool = True
    #: And applied to Synth's enumeration: memoize component applications and
    #: replay whole term-pool skeletons across synthesis calls
    #: (``--no-pool-cache`` is the ablation; candidate streams are identical
    #: either way).
    synthesis_evaluation_caching: bool = True
    #: Safety valve on the number of CEGIS iterations.
    max_iterations: int = 400
    #: Evaluation fuel for a single object-language run.
    eval_fuel: int = 500_000
    #: Which verification ladder rungs answer the loop's obligations:
    #: ``enumerative`` (the paper's bounded tester, the default),
    #: ``abstract`` (static tier only; unsound diagnostic mode), or
    #: ``ladder`` (abstract proofs first, enumeration for the rest).
    #: See docs/verification.md.
    verifier_backend: str = "enumerative"
    #: Root directory of the persistent content-addressed cache tier
    #: (docs/service.md).  ``None`` (the default) disables persistence
    #: entirely: no disk I/O, no content hashing beyond what tracing already
    #: does.  When set, the eval-cache and pool-cache are restored from and
    #: snapshotted to ``cache_dir`` keyed by per-declaration dependency
    #: hashes, so unchanged operations replay across processes.
    cache_dir: Optional[str] = None

    def deadline(self) -> Deadline:
        return Deadline(self.timeout_seconds)

    def with_verifier_backend(self, name: str) -> "HanoiConfig":
        """Select a verifier backend (CLI ``--verifier``)."""
        return replace(self, verifier_backend=name)

    def with_cache_dir(self, path: Optional[str]) -> "HanoiConfig":
        """Enable the persistent cache tier rooted at ``path``
        (CLI ``--cache-dir``)."""
        return replace(self, cache_dir=path)

    def without_persistent_caching(self) -> "HanoiConfig":
        """The persistence ablation: in-memory caches only."""
        return replace(self, cache_dir=None)

    def without_synthesis_result_caching(self) -> "HanoiConfig":
        """The Hanoi-SRC ablation configuration."""
        return replace(self, synthesis_result_caching=False)

    def without_counterexample_list_caching(self) -> "HanoiConfig":
        """The Hanoi-CLC ablation configuration."""
        return replace(self, counterexample_list_caching=False)

    def without_evaluation_caching(self) -> "HanoiConfig":
        """The evaluation-cache ablation configuration (``--no-eval-cache``)."""
        return replace(self, evaluation_caching=False)

    def without_synthesis_evaluation_caching(self) -> "HanoiConfig":
        """The pool-cache ablation configuration (``--no-pool-cache``)."""
        return replace(self, synthesis_evaluation_caching=False)

    def without_component_pruning(self) -> "HanoiConfig":
        """The analysis-pruning ablation configuration (``--no-pruning``)."""
        return replace(self, synthesis_bounds=replace(
            self.synthesis_bounds, component_pruning=False))
