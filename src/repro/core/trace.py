"""Counterexample list caching (Section 4.4, Figures 5 and 6).

Without the optimization, every time a new positive example is discovered the
algorithm resets V- to the empty set and rebuilds it one negative
counterexample at a time, re-synthesizing and re-verifying the same sequence
of candidate invariants.  The optimization caches the *trace* of
(synthesized candidate, negative counterexamples added) pairs of the current
strengthening phase.  When new positive examples arrive, the trace is
replayed: candidates that still accept every new positive keep their negative
counterexamples (those verification and synthesis rounds are skipped), and
the trace is truncated at the first candidate that rejects a new positive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Set

from ..lang.values import Value
from .predicate import Predicate

__all__ = ["TraceEntry", "CounterexampleTrace"]


@dataclass(frozen=True)
class TraceEntry:
    """One strengthening step: the candidate and the negatives it produced."""

    candidate: Predicate
    negatives: FrozenSet[Value]


class CounterexampleTrace:
    """The trace of synthesis/verification rounds of the current phase."""

    def __init__(self) -> None:
        self.entries: List[TraceEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    def record(self, candidate: Predicate, negatives: Iterable[Value]) -> None:
        """Append a strengthening step to the trace."""
        self.entries.append(TraceEntry(candidate, frozenset(negatives)))

    def replay(self, new_positives: Iterable[Value]) -> Set[Value]:
        """Replay the trace against newly discovered positive examples.

        Returns the set of negative examples that remain valid (those added by
        the longest prefix of candidates that accept every new positive), and
        truncates the trace to that prefix.  This is the computation depicted
        in Figure 6: candidates on which the new positive evaluates to true
        need not be revisited.
        """
        new_positives = list(new_positives)
        kept: Set[Value] = set()
        keep_entries: List[TraceEntry] = []
        for entry in self.entries:
            if all(entry.candidate(p) for p in new_positives):
                kept |= set(entry.negatives)
                keep_entries.append(entry)
            else:
                break
        self.entries = keep_entries
        return kept

    def clear(self) -> None:
        self.entries.clear()
