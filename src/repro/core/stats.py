"""Statistics instrumentation for inference runs.

The paper's Figure 7 reports, per benchmark:

* ``Size`` - AST size of the inferred invariant,
* ``Time`` - end-to-end wall-clock time,
* ``TVT`` / ``TVC`` / ``MVT`` - total verification time, number of
  verification calls, and mean time per verification call,
* ``TST`` / ``TSC`` / ``MST`` - the same three quantities for synthesis.

:class:`InferenceStats` accumulates these counters; the experiment harness
turns them into table rows.  Verification calls cover both sufficiency checks
and (conditional) inductiveness checks, matching the paper's accounting where
all checking work flows through the ``Verify`` component.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

__all__ = ["InferenceStats"]


@dataclass
class InferenceStats:
    """Mutable counters describing one inference run."""

    verification_calls: int = 0
    verification_time: float = 0.0
    synthesis_calls: int = 0
    synthesis_time: float = 0.0
    #: Synthesis requests answered from the synthesis-result cache (Section 4.4).
    synthesis_cache_hits: int = 0
    #: Verification/synthesis rounds skipped thanks to counterexample list caching.
    trace_replays: int = 0
    #: Verification evaluations replayed from the evaluation cache (cached spec
    #: verdicts and memoized module-operation applications).
    eval_cache_hits: int = 0
    #: Verification evaluations computed fresh while the evaluation cache was
    #: active (each one seeds a future hit; 0/0 when the cache is disabled).
    eval_cache_misses: int = 0
    #: Synthesis component applications served by the pool cache (memoized
    #: applications plus the applications a whole-pool replay avoided).
    pool_cache_hits: int = 0
    #: Synthesis component applications computed fresh while the pool cache
    #: was active (0/0 when the cache is disabled).
    pool_cache_misses: int = 0
    #: Synthesis components dropped by type-inhabitation reachability before
    #: term-pool construction (0 when pruning is disabled or nothing prunes).
    components_pruned: int = 0
    #: Number of positive examples added across the run.
    positives_added: int = 0
    #: Number of negative examples added across the run.
    negatives_added: int = 0
    #: Candidate invariants proposed (including cached ones).
    candidates_proposed: int = 0
    #: Values evaluated by the enumerative verifier.
    structures_tested: int = 0
    #: Obligations the static tier discharged without enumeration (abstract
    #: interpretation proved no counterexample exists; 0 under the
    #: enumerative backend).
    static_proofs: int = 0
    #: Obligations the static tier refuted, confirmed by a concrete
    #: counterexample on the enumerative rung.
    static_refutations: int = 0
    #: Obligations the static tier could not decide (fell through to
    #: bounded enumeration).
    static_unknowns: int = 0
    #: Persistent cache sections restored from disk at run start (one per
    #: spec stream / operation memo / component memo found under the run's
    #: content keys; 0 when persistence is disabled).
    disk_cache_hits: int = 0
    #: Persistent cache sections looked up but absent, stale, or corrupt
    #: (each one is written back at run end, seeding a future hit).
    disk_cache_misses: int = 0
    started_at: float = field(default_factory=time.perf_counter)
    finished_at: Optional[float] = None

    # -- timers ---------------------------------------------------------------

    @contextmanager
    def verification(self) -> Iterator[None]:
        """Record one verification call and the time spent inside the block."""
        self.verification_calls += 1
        start = time.perf_counter()
        try:
            yield
        finally:
            self.verification_time += time.perf_counter() - start

    @contextmanager
    def synthesis(self) -> Iterator[None]:
        """Record one synthesis call and the time spent inside the block."""
        self.synthesis_calls += 1
        start = time.perf_counter()
        try:
            yield
        finally:
            self.synthesis_time += time.perf_counter() - start

    def finish(self) -> None:
        """Mark the end of the run (idempotent)."""
        if self.finished_at is None:
            self.finished_at = time.perf_counter()

    # -- derived quantities -----------------------------------------------------

    @property
    def total_time(self) -> float:
        """End-to-end wall-clock time of the run (the table's ``Time`` column)."""
        end = self.finished_at if self.finished_at is not None else time.perf_counter()
        return end - self.started_at

    @property
    def mean_verification_time(self) -> Optional[float]:
        """``MVT``: mean time of a single verification call, or None if no calls."""
        if self.verification_calls == 0:
            return None
        return self.verification_time / self.verification_calls

    @property
    def mean_synthesis_time(self) -> Optional[float]:
        """``MST``: mean time of a single synthesis call, or None if no calls."""
        if self.synthesis_calls == 0:
            return None
        return self.synthesis_time / self.synthesis_calls

    def as_dict(self) -> Dict[str, object]:
        """A flat dictionary of every reported statistic."""
        return {
            "time": self.total_time,
            "tvt": self.verification_time,
            "tvc": self.verification_calls,
            "mvt": self.mean_verification_time,
            "tst": self.synthesis_time,
            "tsc": self.synthesis_calls,
            "mst": self.mean_synthesis_time,
            "synthesis_cache_hits": self.synthesis_cache_hits,
            "trace_replays": self.trace_replays,
            "eval_cache_hits": self.eval_cache_hits,
            "eval_cache_misses": self.eval_cache_misses,
            "pool_cache_hits": self.pool_cache_hits,
            "pool_cache_misses": self.pool_cache_misses,
            "components_pruned": self.components_pruned,
            "positives_added": self.positives_added,
            "negatives_added": self.negatives_added,
            "candidates_proposed": self.candidates_proposed,
            "structures_tested": self.structures_tested,
            "static_proofs": self.static_proofs,
            "static_refutations": self.static_refutations,
            "static_unknowns": self.static_unknowns,
            "disk_cache_hits": self.disk_cache_hits,
            "disk_cache_misses": self.disk_cache_misses,
        }

    # -- serialization ----------------------------------------------------------

    #: Counter fields persisted verbatim by :meth:`to_dict` / :meth:`from_dict`.
    COUNTER_FIELDS = (
        "verification_calls",
        "verification_time",
        "synthesis_calls",
        "synthesis_time",
        "synthesis_cache_hits",
        "trace_replays",
        "eval_cache_hits",
        "eval_cache_misses",
        "pool_cache_hits",
        "pool_cache_misses",
        "components_pruned",
        "positives_added",
        "negatives_added",
        "candidates_proposed",
        "structures_tested",
        "static_proofs",
        "static_refutations",
        "static_unknowns",
        "disk_cache_hits",
        "disk_cache_misses",
    )

    #: The deterministic subset of :data:`COUNTER_FIELDS` - integer counters
    #: only, no timers.  These are what the tracing layer stamps on ``run-end``
    #: events, so traces of deterministic runs stay byte-identical.
    INT_COUNTER_FIELDS = tuple(
        name for name in COUNTER_FIELDS if not name.endswith("_time")
    )

    def counters(self) -> Dict[str, int]:
        """The integer counters only (no wall-clock timers).

        Used by the observability layer: ``run-end`` trace events carry these
        so ``repro trace`` can cross-check cache hit rates derived from the
        event stream, and golden-trace tests can assert byte-identity.
        """
        return {name: getattr(self, name) for name in self.INT_COUNTER_FIELDS}

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dictionary from which :meth:`from_dict` rebuilds the stats.

        Unlike :meth:`as_dict` (which reports derived quantities like ``mvt``),
        this stores the raw counters plus the elapsed ``total_time``, so a
        round-trip preserves every reported number exactly.
        """
        payload: Dict[str, object] = {name: getattr(self, name) for name in self.COUNTER_FIELDS}
        payload["total_time"] = self.total_time
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "InferenceStats":
        """Rebuild stats persisted by :meth:`to_dict`.

        The perf-counter anchors are re-based so that ``total_time`` reproduces
        the stored elapsed time instead of measuring from deserialization.
        """
        stats = cls(**{name: data[name] for name in cls.COUNTER_FIELDS if name in data})
        stats.started_at = 0.0
        stats.finished_at = float(data.get("total_time", 0.0))
        return stats
