"""Type-directed enumeration of object-language expressions.

This is a small, generic, purely syntactic enumerator: given a typing context
and a set of typed components (functions that candidate terms may call), it
yields well-typed expressions of a goal type in size order.

It is used where example-directed pruning is unavailable:

* enumerating candidate *functional arguments* for higher-order operations
  during inductiveness checking (``enumeration.functions``);
* the OneShot baseline's fallback when no examples route to a branch.

The main synthesizer (``repro.synth.myth``) uses its own bottom-up enumeration
with observational-equivalence pruning, which needs evaluation and therefore
lives with the synthesizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..lang.ast import ECtor, ETuple, EVar, Expr, app
from ..lang.typecheck import TypeEnvironment
from ..lang.types import TArrow, TData, TProd, Type, arrow_args, arrow_result

__all__ = ["Component", "TermEnumerator"]


@dataclass(frozen=True)
class Component:
    """A named, typed function (or constant) available to enumerated terms.

    ``argument_restrictions`` optionally constrains argument positions to a
    set of variable names; this is how structural-recursion restrictions are
    expressed (a recursive call may only be applied to strict sub-values).
    """

    name: str
    signature: Type
    argument_restrictions: Tuple[Optional[frozenset], ...] = ()

    @property
    def argument_types(self) -> Tuple[Type, ...]:
        return tuple(arrow_args(self.signature))

    @property
    def result_type(self) -> Type:
        return arrow_result(self.signature)


class TermEnumerator:
    """Enumerates expressions of a goal type over a fixed component set."""

    def __init__(self, types: TypeEnvironment, components: Sequence[Component],
                 allow_constructors: bool = True):
        self.types = types
        self.components = tuple(components)
        self.allow_constructors = allow_constructors
        self._cache: Dict[Tuple[Type, Tuple[Tuple[str, Type], ...], int], Tuple[Expr, ...]] = {}

    # -- public API -----------------------------------------------------------

    def terms(self, goal: Type, context: Sequence[Tuple[str, Type]],
              max_size: int) -> Iterator[Expr]:
        """Yield terms of type ``goal`` in size order, smallest first."""
        ctx = tuple(context)
        for size in range(1, max_size + 1):
            yield from self.terms_of_size(goal, ctx, size)

    def terms_of_size(self, goal: Type, context: Tuple[Tuple[str, Type], ...],
                      size: int) -> Tuple[Expr, ...]:
        """All terms of ``goal`` type with exactly ``size`` AST nodes."""
        if size <= 0:
            return ()
        key = (goal, context, size)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = tuple(self._build(goal, context, size))
        self._cache[key] = result
        return result

    # -- construction ------------------------------------------------------------

    def _build(self, goal: Type, context: Tuple[Tuple[str, Type], ...],
               size: int) -> Iterator[Expr]:
        if size == 1:
            for name, ty in context:
                if ty == goal:
                    yield EVar(name)
            for component in self.components:
                if not component.argument_types and component.result_type == goal:
                    yield EVar(component.name)
            if self.allow_constructors and isinstance(goal, TData) and goal.name in self.types.datatypes:
                for ctor in self.types.datatype_ctors(goal.name):
                    if ctor.payload is None:
                        yield ECtor(ctor.name)
            return

        # Constructor applications.
        if self.allow_constructors and isinstance(goal, TData) and goal.name in self.types.datatypes:
            for ctor in self.types.datatype_ctors(goal.name):
                if ctor.payload is not None:
                    for payload in self.terms_of_size(ctor.payload, context, size - 1):
                        yield ECtor(ctor.name, payload)

        # Tuples.
        if isinstance(goal, TProd):
            for items in self._tuples(goal.items, context, size - 1):
                yield ETuple(items)

        # Full applications of components and of functional context variables.
        for head_name, arg_types, restrictions in self._heads(context):
            if not arg_types:
                continue
            head_result = self._result_after(head_name, context, arg_types)
            if head_result != goal:
                continue
            arity = len(arg_types)
            budget = size - arity - 1
            if budget < arity:
                continue
            for arg_sizes in _partitions(budget, arity):
                yield from self._applications(head_name, arg_types, restrictions,
                                              arg_sizes, context)

    def _heads(self, context: Tuple[Tuple[str, Type], ...]):
        for component in self.components:
            if component.argument_types:
                yield component.name, component.argument_types, component.argument_restrictions
        for name, ty in context:
            if isinstance(ty, TArrow):
                yield name, tuple(arrow_args(ty)), ()

    def _result_after(self, head_name: str, context: Tuple[Tuple[str, Type], ...],
                      arg_types: Tuple[Type, ...]) -> Type:
        for component in self.components:
            if component.name == head_name and component.argument_types == arg_types:
                return component.result_type
        for name, ty in context:
            if name == head_name and isinstance(ty, TArrow):
                return arrow_result(ty)
        raise KeyError(head_name)

    def _applications(self, head: str, arg_types: Tuple[Type, ...],
                      restrictions: Tuple[Optional[frozenset], ...],
                      arg_sizes: Tuple[int, ...],
                      context: Tuple[Tuple[str, Type], ...]) -> Iterator[Expr]:
        pools: List[Tuple[Expr, ...]] = []
        for index, (arg_type, arg_size) in enumerate(zip(arg_types, arg_sizes)):
            restriction = restrictions[index] if index < len(restrictions) else None
            if restriction is not None:
                if arg_size != 1:
                    return
                pool = tuple(
                    EVar(name) for name, ty in context
                    if name in restriction and ty == arg_type
                )
            else:
                pool = self.terms_of_size(arg_type, context, arg_size)
            if not pool:
                return
            pools.append(pool)
        yield from (app(EVar(head), *combo) for combo in _product(pools))

    def _tuples(self, item_types: Tuple[Type, ...],
                context: Tuple[Tuple[str, Type], ...], budget: int) -> Iterator[Tuple[Expr, ...]]:
        if not item_types:
            if budget == 0:
                yield ()
            return
        head, rest = item_types[0], item_types[1:]
        for head_size in range(1, budget - len(rest) + 1):
            head_terms = self.terms_of_size(head, context, head_size)
            if not head_terms:
                continue
            for tail in self._tuples(rest, context, budget - head_size):
                for head_term in head_terms:
                    yield (head_term,) + tail


def _partitions(total: int, parts: int) -> Iterator[Tuple[int, ...]]:
    """All ways to write ``total`` as an ordered sum of ``parts`` positive ints."""
    if parts == 1:
        if total >= 1:
            yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in _partitions(total - first, parts - 1):
            yield (first,) + rest


def _product(pools: Sequence[Tuple[Expr, ...]]) -> Iterator[Tuple[Expr, ...]]:
    if not pools:
        yield ()
        return
    head, rest = pools[0], pools[1:]
    for tail in _product(rest):
        for item in head:
            yield (item,) + tail
