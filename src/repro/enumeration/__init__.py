"""Size-ordered enumeration of values, terms, and function arguments.

These enumerators back the unsound enumerative verifier (Section 4.3), the
inductiveness checker's search for counterexamples, and the enumeration of
functional arguments for higher-order operations (Section 4.2).
"""

from .functions import FunctionEnumerator
from .terms import Component, TermEnumerator
from .values import ValueEnumerator

__all__ = ["ValueEnumerator", "TermEnumerator", "Component", "FunctionEnumerator"]
