"""Enumeration of *function values* for higher-order argument positions.

The paper's verifier is enumerative; to test an operation such as
``map : (nat -> nat) -> t -> t`` or ``fold : (nat -> t -> t) -> t -> t -> t``
it must supply concrete functional arguments.  "There are many ways to build a
function, so enumeratively verifying a higher-order function requires
searching through many possible functions" (Section 5.4) - we keep the search
small: a handful of syntactically small functions built from the prelude, the
module's own operations, and the function's parameters.

Functions whose types mention the abstract type are the interesting case for
counterexample extraction (Section 4.2); the inductiveness checker wraps them
in higher-order contracts.  Functions whose types do not mention the abstract
type are enumerated here too but never mined for counterexamples.
"""

from __future__ import annotations

from typing import List, Sequence

from ..lang.ast import EFun, Expr
from ..lang.types import TArrow, arrow_args, arrow_result, mentions_abstract, substitute_abstract
from ..lang.values import Value
from .terms import Component, TermEnumerator

__all__ = ["FunctionEnumerator"]


class FunctionEnumerator:
    """Builds small closures inhabiting a functional interface type."""

    def __init__(self, instance, max_body_size: int = 5):
        # Imported lazily to avoid an import cycle with repro.core.module.
        self.instance = instance
        self.max_body_size = max_body_size
        self._cache = {}

    def functions(self, interface_type: TArrow, limit: int) -> List[Value]:
        """At most ``limit`` function values of the given interface arrow type.

        ``interface_type`` is written over the abstract type; the returned
        closures operate on the concrete representation.
        """
        key = (interface_type, limit)
        if key in self._cache:
            return self._cache[key]

        concrete_type = self.instance.concrete_type
        concrete_arrow = substitute_abstract(interface_type, concrete_type)
        arg_types = tuple(arrow_args(concrete_arrow))
        result_type = arrow_result(concrete_arrow)

        components = self._components(uses_abstract=mentions_abstract(interface_type))
        enumerator = TermEnumerator(self.instance.program.types, components)

        params = tuple((f"hof_arg{i}", ty) for i, ty in enumerate(arg_types))
        bodies: List[Expr] = []
        seen = set()
        for body in enumerator.terms(result_type, params, self.max_body_size):
            if body in seen:
                continue
            seen.add(body)
            bodies.append(body)
            if len(bodies) >= limit:
                break

        values: List[Value] = []
        for body in bodies:
            expr: Expr = body
            for name, ty in reversed(params):
                expr = EFun(name, ty, expr)
            values.append(self.instance.program.eval_expr(expr))
        self._cache[key] = values
        return values

    def _components(self, uses_abstract: bool) -> Sequence[Component]:
        """Components available to enumerated function bodies.

        When the functional type mentions the abstract type, the module's own
        operations are the natural building blocks (for example
        ``fun i s -> insert s i`` as a fold argument); otherwise a few prelude
        helpers suffice.
        """
        program = self.instance.program
        names = ["succ", "pred", "plus", "nat_max", "nat_min", "is_zero", "nat_leq", "notb"]
        if uses_abstract:
            names.extend(op.name for op in self.instance.operations)
            names.extend(self.instance.definition.helper_functions)
        components = []
        for name in dict.fromkeys(names):
            if program.has_global(name):
                components.append(Component(name, program.global_type(name)))
        return components
