"""Size-ordered enumeration of first-order values of the object language.

The enumerative verifier of Section 4.3 tests predicates "on data structures,
from smallest to largest"; this module provides that stream.  Values are
enumerated in order of *size* (number of constructor / tuple nodes, the same
metric as :func:`repro.lang.values.value_size`), and within one size in a
deterministic constructor-declaration order, so runs are reproducible.

The enumerator memoizes the list of values of each (type, size) pair, so
repeated verification calls over the same program share the work.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..lang.typecheck import TypeEnvironment
from ..lang.types import TArrow, TData, TProd, Type
from ..lang.values import Value, VCtor, VTuple

__all__ = ["ValueEnumerator"]

#: Sentinel distinguishing "not computed yet" from a computed ``None`` bound.
_UNCOMPUTED = object()


class ValueEnumerator:
    """Enumerates values of data types and products in size order."""

    def __init__(self, types: TypeEnvironment):
        self.types = types
        self._cache: Dict[Tuple[Type, int], Tuple[Value, ...]] = {}
        self._size_bounds: Dict[Type, Optional[int]] = {}

    # -- public API -----------------------------------------------------------

    def values_of_size(self, ty: Type, size: int) -> Tuple[Value, ...]:
        """All values of ``ty`` with exactly ``size`` nodes."""
        if size <= 0:
            return ()
        key = (ty, size)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = tuple(self._build(ty, size))
        self._cache[key] = result
        return result

    def enumerate(self, ty: Type, max_size: Optional[int] = None,
                  max_count: Optional[int] = None) -> Iterator[Value]:
        """Yield values of ``ty`` from smallest to largest.

        Stops when ``max_size`` is exceeded, ``max_count`` values have been
        produced, or the type is proven exhausted (a non-recursive type such
        as ``bool`` has a largest value size; without this check a
        ``max_count``-only enumeration of a finite type would spin on ever
        larger empty size classes forever).  With neither bound the iterator
        is infinite for recursive types.
        """
        bound = self.size_bound(ty)
        if bound is not None and (max_size is None or bound < max_size):
            max_size = bound
        produced = 0
        size = 1
        while True:
            if max_size is not None and size > max_size:
                return
            for value in self.values_of_size(ty, size):
                yield value
                produced += 1
                if max_count is not None and produced >= max_count:
                    return
            size += 1

    def smallest(self, ty: Type, count: int, max_size: int = 64) -> List[Value]:
        """The ``count`` smallest values of ``ty`` (bounded by ``max_size``)."""
        return list(self.enumerate(ty, max_size=max_size, max_count=count))

    def count_up_to(self, ty: Type, max_size: int) -> int:
        """How many values of ``ty`` have at most ``max_size`` nodes."""
        return sum(len(self.values_of_size(ty, s)) for s in range(1, max_size + 1))

    def size_bound(self, ty: Type) -> Optional[int]:
        """The largest node count any value of ``ty`` can have.

        ``None`` means sizes are unbounded (the type is recursive); ``0``
        means no value is enumerable at all (arrow types, or products over
        them).  Used by :meth:`enumerate` as a proven-exhausted cutoff.
        """
        cached = self._size_bounds.get(ty, _UNCOMPUTED)
        if cached is not _UNCOMPUTED:
            return cached
        bound = self._compute_size_bound(ty, frozenset())
        self._size_bounds[ty] = bound
        return bound

    def _compute_size_bound(self, ty: Type, visiting: FrozenSet[str]) -> Optional[int]:
        if isinstance(ty, TData):
            if ty.name in visiting:
                # A datatype reachable from itself nests without bound.
                return None
            visiting = visiting | {ty.name}
            best = 0
            for ctor in self.types.datatype_ctors(ty.name):
                if ctor.payload is None:
                    candidate: Optional[int] = 1
                else:
                    payload = self._compute_size_bound(ctor.payload, visiting)
                    if payload == 0:
                        continue  # uninhabited payload: the ctor yields no values
                    candidate = None if payload is None else 1 + payload
                if candidate is None:
                    return None
                best = max(best, candidate)
            return best
        if isinstance(ty, TProd):
            total = 1
            for item in ty.items:
                item_bound = self._compute_size_bound(item, visiting)
                if item_bound == 0:
                    return 0  # one empty component empties the product
                if item_bound is None:
                    total = None
                elif total is not None:
                    total += item_bound
            return total
        # Function values are not enumerated here (see enumeration.functions),
        # so an arrow position has no enumerable values at any size.
        return 0

    # -- construction of one size class -----------------------------------------

    def _build(self, ty: Type, size: int) -> Iterator[Value]:
        if isinstance(ty, TData):
            yield from self._build_data(ty, size)
        elif isinstance(ty, TProd):
            for items in self._build_product(ty.items, size - 1):
                yield VTuple(items)
        elif isinstance(ty, TArrow):
            # Function values are not enumerated here; see enumeration.functions.
            return
        else:
            raise TypeError(f"cannot enumerate values of type {ty!r}")

    def _build_data(self, ty: TData, size: int) -> Iterator[Value]:
        for ctor in self.types.datatype_ctors(ty.name):
            if ctor.payload is None:
                if size == 1:
                    yield VCtor(ctor.name)
            else:
                for payload in self.values_of_size(ctor.payload, size - 1):
                    yield VCtor(ctor.name, payload)

    def _build_product(self, items: Sequence[Type], budget: int) -> Iterator[Tuple[Value, ...]]:
        """All tuples of values of the item types whose sizes sum to ``budget``."""
        if not items:
            if budget == 0:
                yield ()
            return
        head, rest = items[0], items[1:]
        # Each component needs at least one node.
        for head_size in range(1, budget - len(rest) + 1):
            head_values = self.values_of_size(head, head_size)
            if not head_values:
                continue
            for tail in self._build_product(rest, budget - head_size):
                for head_value in head_values:
                    yield (head_value,) + tail
