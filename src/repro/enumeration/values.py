"""Size-ordered enumeration of first-order values of the object language.

The enumerative verifier of Section 4.3 tests predicates "on data structures,
from smallest to largest"; this module provides that stream.  Values are
enumerated in order of *size* (number of constructor / tuple nodes, the same
metric as :func:`repro.lang.values.value_size`), and within one size in a
deterministic constructor-declaration order, so runs are reproducible.

The enumerator memoizes the list of values of each (type, size) pair, so
repeated verification calls over the same program share the work.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..lang.typecheck import TypeEnvironment
from ..lang.types import TArrow, TData, TProd, Type
from ..lang.values import Value, VCtor, VTuple

__all__ = ["ValueEnumerator"]


class ValueEnumerator:
    """Enumerates values of data types and products in size order."""

    def __init__(self, types: TypeEnvironment):
        self.types = types
        self._cache: Dict[Tuple[Type, int], Tuple[Value, ...]] = {}

    # -- public API -----------------------------------------------------------

    def values_of_size(self, ty: Type, size: int) -> Tuple[Value, ...]:
        """All values of ``ty`` with exactly ``size`` nodes."""
        if size <= 0:
            return ()
        key = (ty, size)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = tuple(self._build(ty, size))
        self._cache[key] = result
        return result

    def enumerate(self, ty: Type, max_size: Optional[int] = None,
                  max_count: Optional[int] = None) -> Iterator[Value]:
        """Yield values of ``ty`` from smallest to largest.

        Stops when ``max_size`` is exceeded or ``max_count`` values have been
        produced, whichever comes first.  With neither bound the iterator is
        infinite for recursive types.
        """
        produced = 0
        size = 1
        while True:
            if max_size is not None and size > max_size:
                return
            for value in self.values_of_size(ty, size):
                yield value
                produced += 1
                if max_count is not None and produced >= max_count:
                    return
            size += 1

    def smallest(self, ty: Type, count: int, max_size: int = 64) -> List[Value]:
        """The ``count`` smallest values of ``ty`` (bounded by ``max_size``)."""
        return list(self.enumerate(ty, max_size=max_size, max_count=count))

    def count_up_to(self, ty: Type, max_size: int) -> int:
        """How many values of ``ty`` have at most ``max_size`` nodes."""
        return sum(len(self.values_of_size(ty, s)) for s in range(1, max_size + 1))

    # -- construction of one size class -----------------------------------------

    def _build(self, ty: Type, size: int) -> Iterator[Value]:
        if isinstance(ty, TData):
            yield from self._build_data(ty, size)
        elif isinstance(ty, TProd):
            for items in self._build_product(ty.items, size - 1):
                yield VTuple(items)
        elif isinstance(ty, TArrow):
            # Function values are not enumerated here; see enumeration.functions.
            return
        else:
            raise TypeError(f"cannot enumerate values of type {ty!r}")

    def _build_data(self, ty: TData, size: int) -> Iterator[Value]:
        for ctor in self.types.datatype_ctors(ty.name):
            if ctor.payload is None:
                if size == 1:
                    yield VCtor(ctor.name)
            else:
                for payload in self.values_of_size(ctor.payload, size - 1):
                    yield VCtor(ctor.name, payload)

    def _build_product(self, items: Sequence[Type], budget: int) -> Iterator[Tuple[Value, ...]]:
        """All tuples of values of the item types whose sizes sum to ``budget``."""
        if not items:
            if budget == 0:
                yield ()
            return
        head, rest = items[0], items[1:]
        # Each component needs at least one node.
        for head_size in range(1, budget - len(rest) + 1):
            head_values = self.values_of_size(head, head_size)
            if not head_values:
                continue
            for tail in self._build_product(rest, budget - head_size):
                for head_value in head_values:
                    yield (head_value,) + tail
