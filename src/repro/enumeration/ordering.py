"""Fair (diagonal) enumeration of assignments to several quantifiers.

A naive ``itertools.product`` over the quantifier pools explores the last
pool exhaustively before the first pool ever advances; under a bounded total
budget (Section 4.3 caps the verifier at 30000 structures) that would leave
the first quantifier effectively constant.  The verifier and the
inductiveness checker instead enumerate assignments in order of *total index
sum* - a diagonal sweep that grows every quantifier together, the same
smallest-first discipline the paper's enumerative tester uses.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple, TypeVar

__all__ = ["diagonal_product"]

T = TypeVar("T")


def diagonal_product(pools: Sequence[Sequence[T]], max_total: int) -> Iterator[Tuple[T, ...]]:
    """Yield up to ``max_total`` assignments drawn fairly from every pool.

    Assignments are produced in non-decreasing order of the sum of pool
    indices, so small values of *every* quantifier are explored before large
    values of any single one.
    """
    if not pools or any(len(pool) == 0 for pool in pools):
        return
    counts = [len(pool) for pool in pools]
    produced = 0
    max_sum = sum(c - 1 for c in counts)
    for total in range(0, max_sum + 1):
        for combo in _index_combos(counts, total):
            yield tuple(pools[i][j] for i, j in enumerate(combo))
            produced += 1
            if produced >= max_total:
                return


def _index_combos(counts: List[int], total: int) -> Iterator[Tuple[int, ...]]:
    if len(counts) == 1:
        if total < counts[0]:
            yield (total,)
        return
    for first in range(0, min(counts[0] - 1, total) + 1):
        for rest in _index_combos(counts[1:], total - first):
            yield (first,) + rest
