"""The LA baseline: a LinearArbitrary-style counterexample strategy.

Section 5.5: "There are two differences from Hanoi.  First, LA tries to
satisfy individual inductiveness constraints, generated for each function in
the module, one at a time rather than all at once.  Second, rather than
eagerly searching for visible inductiveness violations, only full
inductiveness counterexamples are obtained.  However, if a full inductiveness
counterexample happens to also be a visible inductiveness counterexample then
it is treated accordingly."

Operationally: the loop never runs the ClosedPositives phase.  After a
candidate passes the sufficiency check, full inductiveness is checked
operation by operation; a counterexample whose inputs all lie in V+ is
treated as a positive counterexample (its outputs join V+), otherwise the
inputs outside V+ join V-.  Without the eager, directed weakening the search
can get "stuck in holes of negative counterexamples", which is what Figure 8
measures.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..core.config import HanoiConfig, InferenceTimeout
from ..core.hanoi import SynthesizerFactory
from ..core.module import ModuleDefinition
from ..core.result import InferenceResult, Status
from ..core.stats import InferenceStats
from ..enumeration.functions import FunctionEnumerator
from ..enumeration.values import ValueEnumerator
from ..inductive.relation import ConditionalInductivenessChecker
from ..lang.values import Value
from ..obs.sinks import emitter_for_run
from ..synth.base import SynthesisFailure
from ..synth.myth import MythSynthesizer
from ..synth.poolcache import SynthesisEvaluationCache
from ..verify.evalcache import EvaluationCache
from ..verify.result import InductivenessCounterexample, SufficiencyCounterexample
from ..verify.tester import Verifier

__all__ = ["LinearArbitraryInference"]


class LinearArbitraryInference:
    """The LA mode of the paper's Figure 8."""

    MODE = "linear-arbitrary"

    def __init__(self, module: ModuleDefinition, config: Optional[HanoiConfig] = None,
                 synthesizer_factory: Optional[SynthesizerFactory] = None,
                 emitter: Optional[object] = None):
        self.config = config or HanoiConfig()
        self.definition = module
        self.instance = module.instantiate(fuel=self.config.eval_fuel)
        self.stats = InferenceStats()
        self.deadline = self.config.deadline()
        # Baselines emit spans only, never legacy loop events, so their
        # ``InferenceResult.events`` (and stored rows) stay exactly as before.
        self.emitter = emitter if emitter is not None else (
            emitter_for_run(f"{module.name}/{self.MODE}"))
        enumerator = ValueEnumerator(self.instance.program.types)
        eval_cache = EvaluationCache() if self.config.evaluation_caching else None
        self.verifier = Verifier(self.instance, enumerator, self.config.verifier_bounds,
                                 self.stats, self.deadline, eval_cache=eval_cache,
                                 emitter=self.emitter)
        self.checker = ConditionalInductivenessChecker(
            self.instance, enumerator, FunctionEnumerator(self.instance),
            self.config.verifier_bounds, self.stats, self.deadline,
            eval_cache=eval_cache,
            emitter=self.emitter,
        )
        self.pool_cache = (
            SynthesisEvaluationCache() if self.config.synthesis_evaluation_caching else None
        )
        factory = synthesizer_factory or MythSynthesizer
        self.synthesizer = factory(
            self.instance, bounds=self.config.synthesis_bounds,
            stats=self.stats, deadline=self.deadline, pool_cache=self.pool_cache,
        )
        try:
            self.synthesizer.emitter = self.emitter
        except AttributeError:
            pass
        self.events: List[dict] = []

    def infer(self) -> InferenceResult:
        emitter = self.emitter
        if not emitter.enabled:
            return self._infer()
        with emitter.span("run", {"benchmark": self.definition.name,
                                  "mode": self.MODE}, cat="run"):
            emitter.emit("run-start", {"benchmark": self.definition.name,
                                       "mode": self.MODE}, cat="run")
            result = self._infer()
            emitter.emit("run-end", {"status": result.status,
                                     "iterations": result.iterations,
                                     "stats": self.stats.counters()}, cat="run")
        return result

    def _infer(self) -> InferenceResult:
        positives: Set[Value] = set()
        negatives: Set[Value] = set()
        iterations = 0
        try:
            while iterations < self.config.max_iterations:
                iterations += 1
                self.deadline.check()

                candidate = self.synthesizer.synthesize(positives, negatives)[0]
                self.stats.candidates_proposed += 1

                sufficiency = self.verifier.check_sufficiency(candidate)
                if isinstance(sufficiency, SufficiencyCounterexample):
                    witnesses = set(sufficiency.witnesses)
                    fresh = witnesses - positives
                    if not fresh:
                        return self._result(Status.SPEC_VIOLATION, None, iterations,
                                            "constructible specification violation")
                    negatives |= fresh
                    self.stats.negatives_added += len(fresh)
                    continue

                check = self.checker.check(p=candidate, q=candidate, p_pool=None)
                if isinstance(check, InductivenessCounterexample):
                    inputs = set(check.inputs)
                    outputs = set(check.outputs)
                    if inputs <= positives:
                        # The counterexample happens to be visible: resolve it the
                        # only correct way, by adding the outputs to V+.
                        new_positives = outputs - positives
                        positives |= new_positives
                        self.stats.positives_added += len(new_positives)
                        negatives -= positives
                    else:
                        fresh = inputs - positives
                        negatives |= fresh
                        self.stats.negatives_added += len(fresh)
                    continue

                return self._result(Status.SUCCESS, candidate, iterations)
            return self._result(Status.FAILURE, None, iterations, "iteration limit reached")
        except InferenceTimeout as timeout:
            return self._result(Status.TIMEOUT, None, iterations, str(timeout))
        except SynthesisFailure as failure:
            return self._result(Status.SYNTHESIS_FAILURE, None, iterations, str(failure))
        except NotImplementedError as unsupported:
            return self._result(Status.FAILURE, None, iterations, str(unsupported))

    def _result(self, status: str, invariant, iterations: int, message: str = "") -> InferenceResult:
        self.stats.finish()
        return InferenceResult(
            benchmark=self.definition.name,
            mode=self.MODE,
            status=status,
            invariant=invariant,
            stats=self.stats,
            message=message,
            iterations=iterations,
            events=self.events,
        )
