"""The ∧Str baseline: conjunctive strengthening in the style of LoopInvGen.

Section 5.5: "When running ∧Str, if a candidate invariant I1 is sufficient to
prove the specification, but is not inductive, the algorithm attempts to
synthesize a new predicate I2 such that the module is conditionally inductive
with respect to I1 ∧ I2.  In that case, I1 ∧ I2 is considered the new
candidate invariant.  This process continues until either the conjoined
invariants are inductive, or they are overly strong so a new positive
counterexample is found, at which point the whole process restarts."

The important contrast with Hanoi: ∧Str "can only add new positive examples
in order to weaken the candidate invariant after it has obviously
over-strengthened", whereas Hanoi eagerly weakens through visible
inductiveness checks.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..core.config import HanoiConfig, InferenceTimeout
from ..core.hanoi import SynthesizerFactory
from ..core.module import ModuleDefinition
from ..core.predicate import Predicate
from ..core.result import InferenceResult, Status
from ..core.stats import InferenceStats
from ..enumeration.functions import FunctionEnumerator
from ..enumeration.values import ValueEnumerator
from ..inductive.relation import ConditionalInductivenessChecker
from ..lang.values import Value
from ..obs.sinks import emitter_for_run
from ..synth.base import SynthesisFailure
from ..synth.myth import MythSynthesizer
from ..synth.poolcache import SynthesisEvaluationCache
from ..verify.evalcache import EvaluationCache
from ..verify.result import InductivenessCounterexample, SufficiencyCounterexample
from ..verify.tester import Verifier

__all__ = ["ConjunctivePredicate", "ConjunctiveStrengtheningInference"]


class ConjunctivePredicate:
    """A conjunction of predicates, presented with the Predicate interface."""

    def __init__(self, conjuncts: List[Predicate]):
        if not conjuncts:
            raise ValueError("a conjunction needs at least one conjunct")
        self.conjuncts = list(conjuncts)

    def __call__(self, value: Value) -> bool:
        return all(conjunct(value) for conjunct in self.conjuncts)

    @property
    def size(self) -> int:
        # One ``andb`` application node between every pair of conjuncts.
        return sum(c.size for c in self.conjuncts) + 2 * (len(self.conjuncts) - 1)

    def render(self) -> str:
        if len(self.conjuncts) == 1:
            return self.conjuncts[0].render()
        parts = [c.render() for c in self.conjuncts]
        return "\n(* conjoined with *)\n".join(parts)

    def consistent_with(self, positives, negatives) -> bool:
        return all(self(v) for v in positives) and all(not self(v) for v in negatives)


class ConjunctiveStrengtheningInference:
    """The ∧Str mode of the paper's Figure 8."""

    MODE = "conj-str"

    def __init__(self, module: ModuleDefinition, config: Optional[HanoiConfig] = None,
                 synthesizer_factory: Optional[SynthesizerFactory] = None,
                 emitter: Optional[object] = None):
        self.config = config or HanoiConfig()
        self.definition = module
        self.instance = module.instantiate(fuel=self.config.eval_fuel)
        self.stats = InferenceStats()
        self.deadline = self.config.deadline()
        # Baselines emit spans only, never legacy loop events, so their
        # ``InferenceResult.events`` (and stored rows) stay exactly as before.
        self.emitter = emitter if emitter is not None else (
            emitter_for_run(f"{module.name}/{self.MODE}"))
        enumerator = ValueEnumerator(self.instance.program.types)
        eval_cache = EvaluationCache() if self.config.evaluation_caching else None
        self.verifier = Verifier(self.instance, enumerator, self.config.verifier_bounds,
                                 self.stats, self.deadline, eval_cache=eval_cache,
                                 emitter=self.emitter)
        self.checker = ConditionalInductivenessChecker(
            self.instance, enumerator, FunctionEnumerator(self.instance),
            self.config.verifier_bounds, self.stats, self.deadline,
            eval_cache=eval_cache,
            emitter=self.emitter,
        )
        self.pool_cache = (
            SynthesisEvaluationCache() if self.config.synthesis_evaluation_caching else None
        )
        factory = synthesizer_factory or MythSynthesizer
        self.synthesizer = factory(
            self.instance, bounds=self.config.synthesis_bounds,
            stats=self.stats, deadline=self.deadline, pool_cache=self.pool_cache,
        )
        try:
            self.synthesizer.emitter = self.emitter
        except AttributeError:
            pass
        self.events: List[dict] = []

    def infer(self) -> InferenceResult:
        emitter = self.emitter
        if not emitter.enabled:
            return self._infer()
        with emitter.span("run", {"benchmark": self.definition.name,
                                  "mode": self.MODE}, cat="run"):
            emitter.emit("run-start", {"benchmark": self.definition.name,
                                       "mode": self.MODE}, cat="run")
            result = self._infer()
            emitter.emit("run-end", {"status": result.status,
                                     "iterations": result.iterations,
                                     "stats": self.stats.counters()}, cat="run")
        return result

    def _infer(self) -> InferenceResult:
        positives: Set[Value] = set()
        negatives: Set[Value] = set()
        iterations = 0
        try:
            while iterations < self.config.max_iterations:
                iterations += 1
                self.deadline.check()

                # Find a candidate that is at least sufficient.
                base = self.synthesizer.synthesize(positives, negatives)[0]
                self.stats.candidates_proposed += 1
                sufficiency = self.verifier.check_sufficiency(base)
                if isinstance(sufficiency, SufficiencyCounterexample):
                    witnesses = set(sufficiency.witnesses)
                    fresh = witnesses - positives
                    if not fresh:
                        return self._result(Status.SPEC_VIOLATION, None, iterations,
                                            "constructible specification violation")
                    negatives |= fresh
                    self.stats.negatives_added += len(fresh)
                    continue

                # Strengthen by conjunction until inductive or over-strengthened.
                candidate = ConjunctivePredicate([base])
                restarted = False
                while iterations < self.config.max_iterations:
                    iterations += 1
                    self.deadline.check()
                    check = self.checker.check(p=candidate, q=candidate, p_pool=None)
                    if not isinstance(check, InductivenessCounterexample):
                        return self._result(Status.SUCCESS, candidate, iterations)
                    inputs = set(check.inputs)
                    outputs = set(check.outputs)
                    if inputs <= positives or not (inputs - positives):
                        # Over-strengthened: the rejected outputs are constructible.
                        new_positives = outputs - positives
                        positives |= new_positives
                        self.stats.positives_added += len(new_positives)
                        negatives = set()
                        restarted = True
                        break
                    # Conjoin a predicate separating the positives from the inputs
                    # that caused the violation.
                    try:
                        conjunct = self.synthesizer.synthesize(positives, inputs - positives)[0]
                    except SynthesisFailure:
                        new_positives = outputs - positives
                        if not new_positives:
                            raise
                        positives |= new_positives
                        self.stats.positives_added += len(new_positives)
                        negatives = set()
                        restarted = True
                        break
                    self.stats.candidates_proposed += 1
                    candidate = ConjunctivePredicate(candidate.conjuncts + [conjunct])
                if restarted:
                    continue
            return self._result(Status.FAILURE, None, iterations, "iteration limit reached")
        except InferenceTimeout as timeout:
            return self._result(Status.TIMEOUT, None, iterations, str(timeout))
        except SynthesisFailure as failure:
            return self._result(Status.SYNTHESIS_FAILURE, None, iterations, str(failure))
        except NotImplementedError as unsupported:
            return self._result(Status.FAILURE, None, iterations, str(unsupported))

    def _result(self, status: str, invariant, iterations: int, message: str = "") -> InferenceResult:
        self.stats.finish()
        return InferenceResult(
            benchmark=self.definition.name,
            mode=self.MODE,
            status=status,
            invariant=invariant,
            stats=self.stats,
            message=message,
            iterations=iterations,
            events=self.events,
        )
