"""Prior-work baselines that Figure 8 compares against, adapted to
representation-invariant inference exactly as in Section 5.5."""

from .conj_str import ConjunctivePredicate, ConjunctiveStrengtheningInference
from .linear_arbitrary import LinearArbitraryInference
from .oneshot import OneShotInference

__all__ = [
    "ConjunctiveStrengtheningInference",
    "ConjunctivePredicate",
    "LinearArbitraryInference",
    "OneShotInference",
]
