"""The OneShot baseline: one-shot learning instead of CEGIS.

Section 5.5: "The OneShot algorithm runs the specification over the smallest
30 elements of the concrete implementation type, tagging each element as
either positive or negative.  Doing so generates sets V+ and V-, which may be
supplied to the synthesizer.  Whatever invariant synthesized is returned as
the result.  (This algorithm only works when the specification quantifies
over a single element of the abstract type...)"

The paper reports that OneShot fails on all but one benchmark, either because
the synthesis problem becomes too hard with that many examples or because the
fixed example budget under- or over-specifies the invariant.  To reproduce
that evaluation we validate the returned invariant post hoc (sufficiency and
full inductiveness) and report failure when it does not hold.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.config import HanoiConfig, InferenceTimeout
from ..core.hanoi import SynthesizerFactory
from ..core.module import ModuleDefinition
from ..core.result import InferenceResult, Status
from ..core.stats import InferenceStats
from ..enumeration.functions import FunctionEnumerator
from ..enumeration.values import ValueEnumerator
from ..inductive.relation import ConditionalInductivenessChecker
from ..lang.types import mentions_abstract
from ..lang.values import Value, bool_of_value
from ..obs.sinks import emitter_for_run
from ..synth.base import SynthesisFailure
from ..synth.myth import MythSynthesizer
from ..synth.poolcache import SynthesisEvaluationCache
from ..verify.evalcache import EvaluationCache
from ..verify.result import Valid
from ..verify.tester import Verifier

__all__ = ["OneShotInference"]

#: Number of smallest concrete values labelled by the specification.
ONESHOT_SAMPLE = 30


class OneShotInference:
    """The OneShot mode of the paper's Figure 8."""

    MODE = "oneshot"

    def __init__(self, module: ModuleDefinition, config: Optional[HanoiConfig] = None,
                 synthesizer_factory: Optional[SynthesizerFactory] = None,
                 sample_size: int = ONESHOT_SAMPLE,
                 emitter: Optional[object] = None):
        self.config = config or HanoiConfig()
        self.definition = module
        self.instance = module.instantiate(fuel=self.config.eval_fuel)
        self.sample_size = sample_size
        self.stats = InferenceStats()
        self.deadline = self.config.deadline()
        # Baselines emit spans only, never legacy loop events, so their
        # ``InferenceResult.events`` (and stored rows) stay exactly as before.
        self.emitter = emitter if emitter is not None else (
            emitter_for_run(f"{module.name}/{self.MODE}"))
        self.enumerator = ValueEnumerator(self.instance.program.types)
        eval_cache = EvaluationCache() if self.config.evaluation_caching else None
        self.verifier = Verifier(self.instance, self.enumerator, self.config.verifier_bounds,
                                 self.stats, self.deadline, eval_cache=eval_cache,
                                 emitter=self.emitter)
        self.checker = ConditionalInductivenessChecker(
            self.instance, self.enumerator, FunctionEnumerator(self.instance),
            self.config.verifier_bounds, self.stats, self.deadline,
            eval_cache=eval_cache,
            emitter=self.emitter,
        )
        self.pool_cache = (
            SynthesisEvaluationCache() if self.config.synthesis_evaluation_caching else None
        )
        factory = synthesizer_factory or MythSynthesizer
        self.synthesizer = factory(
            self.instance, bounds=self.config.synthesis_bounds,
            stats=self.stats, deadline=self.deadline, pool_cache=self.pool_cache,
        )
        try:
            self.synthesizer.emitter = self.emitter
        except AttributeError:
            pass

    def infer(self) -> InferenceResult:
        emitter = self.emitter
        if not emitter.enabled:
            return self._infer()
        with emitter.span("run", {"benchmark": self.definition.name,
                                  "mode": self.MODE}, cat="run"):
            emitter.emit("run-start", {"benchmark": self.definition.name,
                                       "mode": self.MODE}, cat="run")
            result = self._infer()
            emitter.emit("run-end", {"status": result.status,
                                     "iterations": result.iterations,
                                     "stats": self.stats.counters()}, cat="run")
        return result

    def _infer(self) -> InferenceResult:
        definition = self.definition
        if definition.spec_abstract_arity != 1:
            return self._result(
                Status.FAILURE, None, 0,
                "OneShot only applies when the specification quantifies over a "
                "single abstract value",
            )
        try:
            positives, negatives = self._label_samples()
            candidates = self.synthesizer.synthesize(positives, negatives)
            self.stats.candidates_proposed += 1
            candidate = candidates[0]

            # Post-hoc validation: is the one-shot invariant actually sufficient
            # and inductive?  (The paper's evaluation counts it as a failure
            # otherwise.)
            if not isinstance(self.verifier.check_sufficiency(candidate), Valid):
                return self._result(Status.FAILURE, candidate, 1,
                                    "one-shot invariant is not sufficient")
            if not isinstance(self.checker.check(p=candidate, q=candidate, p_pool=None), Valid):
                return self._result(Status.FAILURE, candidate, 1,
                                    "one-shot invariant is not inductive")
            return self._result(Status.SUCCESS, candidate, 1)
        except InferenceTimeout as timeout:
            return self._result(Status.TIMEOUT, None, 1, str(timeout))
        except SynthesisFailure as failure:
            return self._result(Status.SYNTHESIS_FAILURE, None, 1, str(failure))
        except NotImplementedError as unsupported:
            return self._result(Status.FAILURE, None, 1, str(unsupported))

    # -- labelling -------------------------------------------------------------------

    def _label_samples(self):
        """Label the smallest concrete values by evaluating the specification.

        A value is positive when the specification holds for every enumerated
        instantiation of the remaining (base-type) quantifiers.
        """
        interface_signature = self.definition.spec_signature
        concrete_signature = self.instance.spec_concrete_signature()
        abstract_index = next(
            i for i, ty in enumerate(interface_signature) if mentions_abstract(ty)
        )

        base_pools: List[List[Value]] = []
        for i, concrete_type in enumerate(concrete_signature):
            if i == abstract_index:
                base_pools.append([])
                continue
            base_pools.append(
                list(self.enumerator.enumerate(
                    concrete_type,
                    max_size=self.config.verifier_bounds.max_nodes_multi,
                    max_count=self.config.verifier_bounds.max_base_values,
                ))
            )

        samples = self.enumerator.smallest(self.instance.concrete_type, self.sample_size)
        positives, negatives = [], []
        with self.emitter.span("oneshot-labelling",
                               {"samples": len(samples)} if self.emitter.enabled else None):
            with self.stats.verification():
                for value in samples:
                    self.deadline.check()
                    if self._satisfies_spec(value, abstract_index, base_pools):
                        positives.append(value)
                    else:
                        negatives.append(value)
        return positives, negatives

    def _satisfies_spec(self, value: Value, abstract_index: int,
                        base_pools: List[List[Value]]) -> bool:
        assignments = [[value] if i == abstract_index else pool
                       for i, pool in enumerate(base_pools)]
        # Iterate the cartesian product of the base pools.
        def recurse(index: int, chosen: List[Value]) -> bool:
            if index == len(assignments):
                self.stats.structures_tested += 1
                return bool_of_value(self.instance.call_spec(*chosen))
            return all(recurse(index + 1, chosen + [v]) for v in assignments[index])

        return recurse(0, [])

    def _result(self, status: str, invariant, iterations: int, message: str = "") -> InferenceResult:
        self.stats.finish()
        return InferenceResult(
            benchmark=self.definition.name,
            mode=self.MODE,
            status=status,
            invariant=invariant,
            stats=self.stats,
            message=message,
            iterations=iterations,
        )
