"""Structured tracing and metrics for inference runs.

The observability layer has three pieces:

* :mod:`repro.obs.events` - a typed, versioned event/span emitter.  Every
  inference run owns one emitter; instrumented code reports point events and
  nested spans (run -> CEGIS iteration -> synthesis/verification call ->
  cache activity) through it.  A disabled emitter short-circuits before any
  formatting work, so tracing is zero-cost when off.
* :mod:`repro.obs.sinks` - pluggable consumers of the event stream: an
  in-memory sink, a crash-safe JSONL trace-file sink (the ``--trace PATH``
  flag), a live CLI progress renderer, and a cross-process queue sink the
  parallel runner uses to stream worker events back to the parent.
* :mod:`repro.obs.analyze` - the ``repro trace`` subcommand: per-phase time
  breakdowns, cache hit-rate tables cross-checked against the stored
  :class:`~repro.core.stats.InferenceStats`, slowest-span listings, and
  Chrome trace-event export loadable in ``chrome://tracing`` / Perfetto.

See docs/observability.md for the schema and the span hierarchy.
"""

from .events import (
    NULL_EMITTER,
    SCHEMA_VERSION,
    Emitter,
    LegacyRecorder,
    NullEmitter,
)
from .sinks import (
    InMemorySink,
    JsonlTraceSink,
    LegacyEventSink,
    LiveRenderer,
    QueueSink,
    emitter_for_run,
    install_sink,
    installed_sinks,
    reset_sinks,
    uninstall_sink,
)

__all__ = [
    "SCHEMA_VERSION",
    "Emitter",
    "NullEmitter",
    "NULL_EMITTER",
    "LegacyRecorder",
    "InMemorySink",
    "JsonlTraceSink",
    "LegacyEventSink",
    "LiveRenderer",
    "QueueSink",
    "install_sink",
    "uninstall_sink",
    "installed_sinks",
    "reset_sinks",
    "emitter_for_run",
]
