"""Pluggable consumers of the tracing event stream.

A *sink* is any object with a ``handle(record: dict)`` method; an
:class:`~repro.obs.events.Emitter` fans every record out to its sinks in
order.  Sinks must treat records as read-only (they are shared).

Four sinks cover the built-in use cases:

* :class:`InMemorySink` - collect records in a list (tests, analysis).
* :class:`LegacyEventSink` - rebuild the byte-compatible
  ``InferenceResult.events`` dictionaries from ``loop``-category records.
* :class:`JsonlTraceSink` - append records to a crash-safe JSONL trace file
  (the ``--trace PATH`` flag), one JSON object per line, flushed per record
  the way the :class:`~repro.experiments.store.ResultStore` persists results.
  :func:`read_trace` loads such a file back, skipping a truncated final line.
* :class:`QueueSink` - forward records over a multiprocessing queue; the
  parallel runner installs one in each worker so events stream to the parent
  instead of dying with the worker.

:class:`LiveRenderer` consumes the *parent-side* stream and prints compact
progress lines, so a long parallel sweep shows which phase every worker is in
instead of going silent until completion.

A process-global registry (:func:`install_sink` / :func:`installed_sinks`)
lets the CLI attach sinks once; every inference run constructed afterwards
picks them up.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import deque
from typing import Dict, Iterator, List, Optional

from .events import NULL_EMITTER, Emitter, legacy_entry

__all__ = [
    "InMemorySink",
    "LegacyEventSink",
    "JsonlTraceSink",
    "QueueSink",
    "RingBufferSink",
    "LiveRenderer",
    "read_trace",
    "iter_trace",
    "install_sink",
    "uninstall_sink",
    "installed_sinks",
    "reset_sinks",
    "emitter_for_run",
]


class InMemorySink:
    """Collects every record in ``self.records``."""

    def __init__(self) -> None:
        self.records: List[dict] = []

    def handle(self, record: dict) -> None:
        self.records.append(record)


class LegacyEventSink:
    """Rebuilds the seed's ``InferenceResult.events`` log from the stream.

    Only ``loop``-category point events participate; the reconstructed
    dictionaries are byte-identical to what ``HanoiInference._log`` used to
    append, so every existing consumer (Figure 5 rendering, the fuzzer's
    stored rows, the store round-trip) is unchanged.
    """

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []

    def handle(self, record: dict) -> None:
        if record.get("cat") == "loop" and record.get("kind") == "event":
            self.events.append(legacy_entry(record["name"], record.get("data")))


class JsonlTraceSink:
    """Appends records to a JSONL trace file, crash-safely.

    The file handle is opened on first use and kept open (a trace can be tens
    of thousands of records; open-per-record would dominate), but every line
    is flushed as written, so a killed process loses at most the in-flight
    record and several processes can read the file while it is written.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._handle = None

    def handle(self, record: dict) -> None:
        if self._handle is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, separators=(",", ":"), default=str) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def iter_trace(path: str) -> Iterator[dict]:
    """Yield the records of a JSONL trace file in order.

    A truncated trailing line (a run killed mid-append) is tolerated and
    skipped, matching the :class:`~repro.experiments.store.ResultStore`
    loader's behaviour.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue


def read_trace(path: str) -> List[dict]:
    """Load a JSONL trace file written by :class:`JsonlTraceSink`."""
    return list(iter_trace(path))


class QueueSink:
    """Forwards records over a multiprocessing queue, tagged with a task label.

    The parallel runner installs one of these (replacing any inherited sinks)
    in each worker process; the parent drains the queue and dispatches the
    records to its own sinks, preserving each worker's internal order.
    """

    def __init__(self, queue, task: Optional[str] = None) -> None:
        self.queue = queue
        self.task = task

    def handle(self, record: dict) -> None:
        payload = dict(record)
        if self.task is not None:
            payload["task"] = self.task
        try:
            self.queue.put(payload)
        except (OSError, ValueError):  # pragma: no cover - parent went away
            pass


class RingBufferSink:
    """Bounded in-memory record buffer with a monotonic cursor, for long-poll.

    The service tier (:mod:`repro.serve`) keeps one per job: the scheduler
    thread drains the workers' :class:`QueueSink` queue into these, and HTTP
    handler threads read with :meth:`after`, passing back the cursor of the
    last record they saw.  Cursors are global positions, not buffer indexes,
    so a reader that falls behind a full buffer skips the overwritten records
    (and can tell how many, via the returned next-cursor jump) instead of
    re-reading shifted entries.  Thread-safe; :meth:`after` optionally blocks
    until a record past the cursor arrives.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = max(1, capacity)
        self._records: "deque[dict]" = deque()
        self._next = 0  # cursor one past the newest buffered record
        self._closed = False
        self._new = threading.Condition()

    def handle(self, record: dict) -> None:
        with self._new:
            self._records.append(dict(record))
            self._next += 1
            while len(self._records) > self.capacity:
                self._records.popleft()
            self._new.notify_all()

    def close(self) -> None:
        """Wake blocked readers; subsequent :meth:`after` calls never block."""
        with self._new:
            self._closed = True
            self._new.notify_all()

    def after(self, cursor: int, wait: Optional[float] = None):
        """``(records, next_cursor, closed)`` strictly after ``cursor``.

        Blocks up to ``wait`` seconds when nothing newer is buffered (and the
        buffer is still open); ``wait=None`` returns immediately.  Feed
        ``next_cursor`` back in to stream.
        """
        deadline = None if wait is None else time.monotonic() + wait
        with self._new:
            while True:
                oldest = self._next - len(self._records)
                if cursor < self._next:
                    skip = max(cursor, oldest) - oldest
                    records = list(self._records)[skip:]
                    return records, self._next, self._closed
                if self._closed:
                    return [], self._next, True
                if deadline is None:
                    return [], self._next, False
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return [], self._next, False
                self._new.wait(remaining)


class LiveRenderer:
    """Prints compact progress lines from the (parent-side) event stream.

    One line per run start/end and per CEGIS iteration, plus heartbeat lines
    for long-silent workers - enough to see *where* a sweep currently is
    without drowning the terminal.  ``min_interval`` throttles per-run
    iteration lines.
    """

    RENDERED_SPANS = ("iteration",)

    def __init__(self, stream=None, min_interval: float = 1.0) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._last_line_at: Dict[str, float] = {}

    def _label(self, record: dict) -> str:
        return str(record.get("task") or record.get("run") or "?")

    def _print(self, text: str) -> None:
        print(text, file=self.stream, flush=True)

    def handle(self, record: dict) -> None:
        kind = record.get("kind")
        name = record.get("name")
        label = self._label(record)
        if record.get("cat") == "run" and kind == "event":
            if name == "run-start":
                self._print(f"  ~ {label}: started")
            elif name == "run-end":
                data = record.get("data") or {}
                self._print(f"  ~ {label}: {data.get('status', 'done')} "
                            f"after {data.get('iterations', '?')} iteration(s)")
            return
        if name == "heartbeat":
            self._print(f"  ~ {label}: still running (heartbeat)")
            return
        if kind == "span-start" and name in self.RENDERED_SPANS:
            now = time.monotonic()
            if now - self._last_line_at.get(label, 0.0) < self.min_interval:
                return
            self._last_line_at[label] = now
            data = record.get("data") or {}
            detail = f" #{data.get('index')}" if "index" in data else ""
            self._print(f"  ~ {label}: {name}{detail}")


# -- the process-global sink registry ---------------------------------------------

_SINKS: List[object] = []


def install_sink(sink: object) -> object:
    """Register a sink for every emitter constructed after this call."""
    _SINKS.append(sink)
    return sink


def uninstall_sink(sink: object) -> None:
    """Remove a previously installed sink (no-op when absent)."""
    try:
        _SINKS.remove(sink)
    except ValueError:
        pass


def installed_sinks() -> List[object]:
    """The currently installed sinks (a copy; mutating it changes nothing)."""
    return list(_SINKS)


def reset_sinks() -> None:
    """Drop every installed sink (worker initialization, test isolation)."""
    _SINKS.clear()


def emitter_for_run(run: str):
    """A live emitter over the installed sinks, or the shared null emitter.

    Components that have nothing to feed but the sinks (the baselines) call
    this; :class:`~repro.core.hanoi.HanoiInference` rolls its own variant
    because it must keep the legacy event log even with no sinks installed.
    """
    if _SINKS:
        return Emitter(sinks=_SINKS, run=run)
    return NULL_EMITTER
