"""The typed event/span emitter behind all inference tracing.

Every inference run owns one emitter.  Instrumented code reports two things
through it:

* *point events* - ``emit(name, data, cat=...)`` - a single timestamped
  record, e.g. a CEGIS loop decision or a cache milestone;
* *spans* - ``with emitter.span(name, cat=...):`` - a nested, timed region,
  e.g. one synthesis call inside one CEGIS iteration inside one run.

Records are plain JSON-safe dictionaries with a versioned schema
(:data:`SCHEMA_VERSION`):

======== ======================================================================
key      meaning
======== ======================================================================
``v``    schema version (currently 1)
``seq``  per-emitter sequence number, starting at 1, strictly increasing
``ts``   timestamp from the emitter's clock, relative to emitter creation
``run``  run identity (``benchmark``/``mode`` label), same for a whole run
``kind`` ``"event"``, ``"span-start"``, or ``"span-end"``
``cat``  coarse category: ``loop`` (CEGIS decisions, the legacy event log),
         ``phase`` (timed spans), ``cache`` (cache milestones), ``run``
         (run start/end), ``stream`` (runner-level records)
``name`` the event or span name
``span`` id of the enclosing span (``None`` at top level)
``id``   (span records only) the span's own id
``dur``  (span-end only) duration from the span's start, same clock
``data`` free-form JSON-safe payload (omitted when empty)
======== ======================================================================

The clock is injectable.  The default is :func:`time.monotonic` (re-based to
the emitter's creation); tests that need byte-identical traces across runs
pass a :class:`CountingClock`, which makes ``ts`` a deterministic logical
tick.  Nothing else in a trace depends on wall time, so a counting-clock
trace of a deterministic run is byte-identical across processes and
``PYTHONHASHSEED`` values.

Zero-cost-when-off: code that may run with tracing disabled receives
:data:`NULL_EMITTER`, whose ``emit`` returns immediately and whose ``span``
returns a shared no-op context manager; hot call sites additionally guard on
``emitter.enabled`` so no payload dictionary is ever built.  The
:class:`LegacyRecorder` sits in between: it keeps the byte-compatible
``InferenceResult.events`` log that consumers (Figure 5, the fuzzer) rely on,
while behaving like a disabled emitter for every other record.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "SCHEMA_VERSION",
    "CountingClock",
    "Emitter",
    "NullEmitter",
    "NULL_EMITTER",
    "LegacyRecorder",
    "legacy_entry",
]

#: Version stamped on every record; bump when the record shape changes.
SCHEMA_VERSION = 1


class CountingClock:
    """A deterministic logical clock: each call returns the next integer.

    Used by the golden-trace tests so ``ts`` values (and span durations) are
    reproducible byte-for-byte across processes and hash seeds.
    """

    def __init__(self, start: int = 0) -> None:
        self._tick = start

    def __call__(self) -> int:
        self._tick += 1
        return self._tick


def legacy_entry(name: str, data: Optional[Dict[str, object]]) -> Dict[str, object]:
    """The ``InferenceResult.events`` dictionary for one loop event.

    Reproduces the seed's ``HanoiInference._log`` layout exactly - ``event``
    first, then the detail keys in their original order - so stored results
    and every events consumer stay byte-compatible.
    """
    entry: Dict[str, object] = {"event": name}
    if data:
        entry.update(data)
    return entry


class _NullSpan:
    """A reusable no-op context manager (what a disabled emitter's ``span``
    returns)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullEmitter:
    """The disabled emitter: every operation is a no-op.

    ``enabled`` is ``False`` so hot paths can skip building event payloads
    entirely; calls that do land here return immediately.
    """

    __slots__ = ()
    enabled = False

    def emit(self, name: str, data: Optional[Dict[str, object]] = None,
             cat: str = "event", legacy: bool = False) -> None:
        return None

    def span(self, name: str, data: Optional[Dict[str, object]] = None,
             cat: str = "phase") -> _NullSpan:
        return _NULL_SPAN


#: The shared disabled emitter; components default to it.
NULL_EMITTER = NullEmitter()


class LegacyRecorder(NullEmitter):
    """A disabled emitter that still keeps the legacy per-run event log.

    :class:`~repro.core.hanoi.HanoiInference` always needs its loop events
    (they populate ``InferenceResult.events``), but when no trace sink is
    installed there is no reason to pay for spans or sequence/timestamp
    bookkeeping.  This recorder appends exactly the dictionaries the seed's
    ``_log`` built and drops everything else, so a run without tracing does
    the same work it did before the observability layer existed.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []

    def emit(self, name: str, data: Optional[Dict[str, object]] = None,
             cat: str = "event", legacy: bool = False) -> None:
        if legacy:
            self.events.append(legacy_entry(name, data))


class _Span:
    """Handle for an open span; closing records the span-end event."""

    __slots__ = ("_emitter", "_id", "_name", "_cat", "_started")

    def __init__(self, emitter: "Emitter", span_id: int, name: str, cat: str,
                 started: float) -> None:
        self._emitter = emitter
        self._id = span_id
        self._name = name
        self._cat = cat
        self._started = started

    @property
    def id(self) -> int:
        return self._id

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc: object) -> bool:
        self._emitter._close_span(self)
        return False


class Emitter:
    """A live event emitter feeding one or more sinks.

    Parameters
    ----------
    sinks:
        Objects with a ``handle(record: dict)`` method.  Sinks must not
        mutate the record (it is shared between them).
    run:
        Run identity stamped on every record (``benchmark/mode`` label).
        Deterministic by construction - no pids, times, or uuids - so traces
        of deterministic runs stay reproducible.
    clock:
        A zero-argument callable returning a number.  Defaults to
        :func:`time.monotonic`; timestamps are re-based to the emitter's
        creation instant.
    """

    __slots__ = ("sinks", "run", "clock", "enabled", "_origin", "_seq",
                 "_next_span", "_stack")

    def __init__(self, sinks: Sequence[object] = (),
                 run: Optional[str] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.sinks = list(sinks)
        self.run = run
        self.clock = clock if clock is not None else time.monotonic
        self.enabled = True
        self._origin = self.clock()
        self._seq = 0
        self._next_span = 0
        self._stack: List[int] = []

    # -- record plumbing ---------------------------------------------------------

    def _now(self) -> float:
        elapsed = self.clock() - self._origin
        # Monotonic floats carry sub-microsecond noise that bloats traces;
        # integers (a CountingClock) pass through untouched.
        return elapsed if isinstance(elapsed, int) else round(elapsed, 6)

    def _record(self, kind: str, name: str, cat: str,
                data: Optional[Dict[str, object]],
                span_id: Optional[int] = None,
                dur: Optional[float] = None) -> None:
        self._seq += 1
        record: Dict[str, object] = {
            "v": SCHEMA_VERSION,
            "seq": self._seq,
            "ts": self._now(),
            "run": self.run,
            "kind": kind,
            "cat": cat,
            "name": name,
            "span": self._stack[-1] if self._stack else None,
        }
        if span_id is not None:
            record["id"] = span_id
        if dur is not None:
            record["dur"] = dur
        if data:
            record["data"] = data
        for sink in self.sinks:
            sink.handle(record)

    # -- public API --------------------------------------------------------------

    def emit(self, name: str, data: Optional[Dict[str, object]] = None,
             cat: str = "event", legacy: bool = False) -> None:
        """Record one point event.  ``legacy`` marks records that also belong
        in the byte-compatible ``InferenceResult.events`` log (the
        :class:`~repro.obs.sinks.LegacyEventSink` collects them)."""
        self._record("event", name, "loop" if legacy else cat, data)

    def span(self, name: str, data: Optional[Dict[str, object]] = None,
             cat: str = "phase") -> _Span:
        """Open a nested span; use as a context manager."""
        self._next_span += 1
        span_id = self._next_span
        started = self._now()
        self._record("span-start", name, cat, data, span_id=span_id)
        self._stack.append(span_id)
        return _Span(self, span_id, name, cat, started)

    def _close_span(self, span: _Span) -> None:
        # Tolerate mismatched closes (an exception unwinding several spans):
        # pop until this span's id is gone.
        while self._stack:
            popped = self._stack.pop()
            if popped == span._id:
                break
        ended = self._now()
        dur = ended - span._started
        if not isinstance(dur, int):
            dur = round(dur, 6)
        self._record("span-end", span._name, span._cat, None,
                     span_id=span._id, dur=dur)
