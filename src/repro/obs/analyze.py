"""The ``repro trace`` subcommand: make a JSONL trace legible.

Given a trace file written by the :class:`~repro.obs.sinks.JsonlTraceSink`
(``repro run --trace out.jsonl``, ``repro infer --trace ...``), this module
renders:

* a **per-phase time breakdown** - span durations aggregated by span name
  (synthesis, sufficiency-check, inductiveness checks, iterations), with
  call counts, totals, means, and maxima;
* **cache hit-rate tables** derived from the ``cache``-category event stream,
  cross-checked against the final :class:`~repro.core.stats.InferenceStats`
  counters stamped on each ``run-end`` event - a mismatch means the
  instrumentation and the stats layer disagree and is flagged loudly;
* the **slowest spans** of the trace (``--top N``);
* a **Chrome trace-event export** (``--chrome out.json``) loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev - each run becomes a
  process row, spans become complete ("X") slices, point events become
  instants.

Run as a module::

    python -m repro trace out.jsonl --chrome chrome.json
"""

from __future__ import annotations

import argparse
import json
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from .events import SCHEMA_VERSION
from .sinks import read_trace

__all__ = [
    "phase_breakdown",
    "cache_tables",
    "slowest_spans",
    "chrome_trace",
    "validate_trace",
    "add_arguments",
    "run",
    "main",
]

#: ``(cache event name, stats hit counter, stats miss counter)`` triples the
#: cross-check knows about.  Cache events carry per-call ``hits``/``misses``
#: deltas; their sums must reproduce the run's final stats counters.
CACHE_LAYERS: Tuple[Tuple[str, str, Optional[str]], ...] = (
    ("eval-cache", "eval_cache_hits", "eval_cache_misses"),
    ("pool-cache", "pool_cache_hits", "pool_cache_misses"),
    ("synthesis-result-cache", "synthesis_cache_hits", None),
)


def validate_trace(records: Sequence[dict]) -> List[str]:
    """Structural problems in a trace, as human-readable strings.

    Checks the schema version, per-run sequence monotonicity, and span
    start/end pairing.  An empty list means the trace is well-formed.
    """
    problems: List[str] = []
    if not records:
        problems.append("trace contains no records")
        return problems
    last_seq: Dict[str, int] = {}
    open_spans: Dict[Tuple[str, int], str] = {}
    for index, record in enumerate(records):
        where = f"record {index + 1}"
        version = record.get("v")
        if version != SCHEMA_VERSION:
            problems.append(f"{where}: schema version {version!r} (expected {SCHEMA_VERSION})")
            continue
        # In a merged parallel trace the worker's task label (stamped by the
        # QueueSink) is the ordering scope; plain single-process traces fall
        # back to the emitter's run label.
        run = str(record.get("task") or record.get("run"))
        seq = record.get("seq")
        if not isinstance(seq, int):
            problems.append(f"{where}: missing sequence number")
        elif record.get("cat") == "stream":
            # Runner-level records (heartbeats) carry their own counter and
            # share run labels with emitter records; they are outside any
            # emitter's ordered stream.
            pass
        else:
            if seq <= last_seq.get(run, 0):
                problems.append(f"{where}: sequence {seq} not increasing within run {run}")
            last_seq[run] = seq
        kind = record.get("kind")
        if kind == "span-start":
            open_spans[(run, record.get("id"))] = record.get("name")
        elif kind == "span-end":
            if open_spans.pop((run, record.get("id")), None) is None:
                problems.append(f"{where}: span-end without start "
                                f"(run {run}, id {record.get('id')})")
    for (run, span_id), name in open_spans.items():
        problems.append(f"span {name!r} (run {run}, id {span_id}) never ended "
                        f"(interrupted run?)")
    return problems


def phase_breakdown(records: Sequence[dict]) -> List[List[object]]:
    """``[phase, count, total, mean, max]`` rows, longest total first."""
    totals: Dict[str, List[float]] = OrderedDict()
    for record in records:
        if record.get("kind") != "span-end":
            continue
        name = record.get("name", "?")
        dur = float(record.get("dur", 0.0))
        totals.setdefault(name, []).append(dur)
    rows = []
    for name, durations in totals.items():
        total = sum(durations)
        rows.append([name, len(durations), round(total, 6),
                     round(total / len(durations), 6), round(max(durations), 6)])
    rows.sort(key=lambda row: -row[2])
    return rows


def _runs(records: Sequence[dict]) -> "OrderedDict[str, List[dict]]":
    by_run: "OrderedDict[str, List[dict]]" = OrderedDict()
    for record in records:
        by_run.setdefault(str(record.get("run"))
                          if record.get("run") is not None else "?", []).append(record)
    return by_run


def cache_tables(records: Sequence[dict]) -> Tuple[List[List[object]], List[str]]:
    """Per-run cache hit-rate rows plus cross-check failure messages.

    Rows are ``[run, layer, hits, misses, rate]`` with hits/misses summed
    from the event stream; each is compared against the ``run-end`` stats
    counters (when present) and any disagreement is reported.
    """
    rows: List[List[object]] = []
    mismatches: List[str] = []
    for run, run_records in _runs(records).items():
        stats: Dict[str, object] = {}
        for record in run_records:
            if record.get("name") == "run-end" and record.get("kind") == "event":
                stats = (record.get("data") or {}).get("stats", {}) or {}
        for event_name, hits_key, misses_key in CACHE_LAYERS:
            hits = misses = 0
            seen = False
            for record in run_records:
                if record.get("kind") == "event" and record.get("name") == event_name:
                    data = record.get("data") or {}
                    hits += int(data.get("hits", 0))
                    misses += int(data.get("misses", 0))
                    seen = True
            if not seen and not stats:
                continue
            lookups = hits + misses
            rate = f"{hits / lookups:.1%}" if lookups else "-"
            rows.append([run, event_name, hits, misses, rate])
            if stats:
                expected_hits = stats.get(hits_key)
                if expected_hits is not None and int(expected_hits) != hits:
                    mismatches.append(
                        f"{run}: {event_name} hits from events ({hits}) != "
                        f"stats.{hits_key} ({expected_hits})")
                if misses_key is not None:
                    expected_misses = stats.get(misses_key)
                    if expected_misses is not None and int(expected_misses) != misses:
                        mismatches.append(
                            f"{run}: {event_name} misses from events ({misses}) != "
                            f"stats.{misses_key} ({expected_misses})")
    return rows, mismatches


def slowest_spans(records: Sequence[dict], top: int = 10) -> List[List[object]]:
    """``[run, span, ts, dur]`` rows for the ``top`` longest spans."""
    spans = [record for record in records if record.get("kind") == "span-end"]
    spans.sort(key=lambda record: -float(record.get("dur", 0.0)))
    # A span-end's ts is when the span *closed*; subtract dur for its start.
    return [[str(record.get("run")), record.get("name"),
             round(float(record.get("ts", 0.0)) - float(record.get("dur", 0.0)), 6),
             record.get("dur")]
            for record in spans[:top]]


def chrome_trace(records: Sequence[dict]) -> Dict[str, object]:
    """The trace as a Chrome trace-event JSON object (``chrome://tracing``).

    Each run becomes one process row (pid = run index, with a process_name
    metadata event); spans become complete ("X") slices and point events
    become instants ("i").  Timestamps are microseconds, as the format
    requires; a logical-clock trace simply renders each tick as 1us.
    """
    trace_events: List[dict] = []
    pids: Dict[str, int] = {}
    starts: Dict[Tuple[str, object], dict] = {}
    for record in records:
        run = str(record.get("run"))
        if run not in pids:
            pids[run] = len(pids) + 1
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": pids[run], "tid": 0,
                "args": {"name": run},
            })
        pid = pids[run]
        ts_us = float(record.get("ts", 0.0)) * 1e6
        kind = record.get("kind")
        if kind == "span-start":
            starts[(run, record.get("id"))] = record
        elif kind == "span-end":
            start = starts.pop((run, record.get("id")), None)
            event = {
                "name": record.get("name"),
                "cat": record.get("cat", "phase"),
                "ph": "X",
                "pid": pid,
                "tid": 0,
                "ts": (float(start.get("ts", 0.0)) if start is not None
                       else float(record.get("ts", 0.0)) - float(record.get("dur", 0.0))) * 1e6,
                "dur": float(record.get("dur", 0.0)) * 1e6,
            }
            if start is not None and start.get("data"):
                event["args"] = start["data"]
            trace_events.append(event)
        else:
            event = {
                "name": record.get("name"),
                "cat": record.get("cat", "event"),
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": 0,
                "ts": ts_us,
            }
            if record.get("data"):
                event["args"] = record["data"]
            trace_events.append(event)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


# -- CLI ----------------------------------------------------------------------------


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``trace`` arguments, attachable to a standalone parser or the
    ``python -m repro`` subcommand tree."""
    parser.add_argument("trace", metavar="TRACE.jsonl",
                        help="JSONL trace written with --trace")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="slowest spans listed (default: 10)")
    parser.add_argument("--chrome", default=None, metavar="OUT.json",
                        help="also write a Chrome trace-event file "
                             "(chrome://tracing, Perfetto)")


def run(args: argparse.Namespace) -> int:
    from ..experiments.report import format_table

    try:
        records = read_trace(args.trace)
    except OSError as exc:
        raise SystemExit(f"cannot read trace: {exc}")

    problems = validate_trace(records)
    runs = _runs(records)
    print(f"{args.trace}: {len(records)} record(s), {len(runs)} run(s), "
          f"schema v{SCHEMA_VERSION}")
    # Interrupted runs leave dangling spans; report, then analyze what's there.
    for problem in problems:
        print(f"  warning: {problem}")

    rows = phase_breakdown(records)
    if rows:
        print("\nPer-phase time breakdown (span durations, emitter clock units):")
        print(format_table(["Phase", "Calls", "Total", "Mean", "Max"], rows))

    cache_rows, mismatches = cache_tables(records)
    if cache_rows:
        print("\nCache hit rates (derived from the event stream):")
        print(format_table(["Run", "Layer", "Hits", "Misses", "Hit rate"], cache_rows))
    if mismatches:
        print("\nCROSS-CHECK FAILURES (event stream vs InferenceStats):")
        for mismatch in mismatches:
            print(f"  {mismatch}")

    slow = slowest_spans(records, args.top)
    if slow:
        print(f"\nSlowest {len(slow)} span(s):")
        print(format_table(["Run", "Span", "Start", "Duration"], slow))

    if args.chrome:
        payload = chrome_trace(records)
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        print(f"\nwrote Chrome trace ({len(payload['traceEvents'])} event(s)) "
              f"to {args.chrome}; open in chrome://tracing or ui.perfetto.dev")

    return 1 if mismatches else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    raise SystemExit(main())
