"""Result types shared by the verifier and the inductiveness checker."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from ..lang.values import Value

__all__ = ["Valid", "VALID", "SufficiencyCounterexample", "InductivenessCounterexample", "CheckResult"]


@dataclass(frozen=True)
class Valid:
    """The property being checked holds on every structure that was tested.

    The verifier is a bounded enumerative tester (Section 4.3), so ``Valid``
    means "no counterexample found within the bounds", not a proof.
    """

    def __bool__(self) -> bool:
        return True


#: Shared singleton instance.
VALID = Valid()


@dataclass(frozen=True)
class SufficiencyCounterexample:
    """A violation of ``Suf_phi_M[I]``: values of abstract type that satisfy
    the candidate invariant but falsify the specification (the ``z`` of the
    paper's Figure 2)."""

    witnesses: Tuple[Value, ...]

    def __bool__(self) -> bool:
        return False


@dataclass(frozen=True)
class InductivenessCounterexample:
    """A failed conditional-inductiveness check ``v : tau |>_P^Q CEx <S, V>``.

    ``inputs`` is the witness set S (abstract values supplied to the module,
    all satisfying P); ``outputs`` is the witness set V (abstract values the
    module produced that falsify Q).  ``operation`` names the module operation
    whose application produced the counterexample, which the experiment
    reports use for diagnostics.
    """

    operation: str
    inputs: Tuple[Value, ...]
    outputs: Tuple[Value, ...]

    def __bool__(self) -> bool:
        return False


CheckResult = Union[Valid, SufficiencyCounterexample, InductivenessCounterexample]
