"""The size-bounded enumerative verifier (the paper's ``Verify``).

Section 4.3: "To implement Verify, we use a size-bounded enumerative tester,
which is unsound but effective in practice.  To validate a predicate with a
single quantifier, we test the predicate on data structures, from smallest to
largest, until either 3000 data structures have been processed, or the data
structure has over 30 AST nodes, whichever comes first.  To validate
predicates with two or more quantifiers, we instantiate each quantifier with
the smallest 3000 data structures with under 15 AST nodes.  We further limit
the total number of data structures processed to 30000."

The verifier exposes two checks used by the Hanoi loop:

* :meth:`Verifier.check_sufficiency` - does the candidate invariant imply the
  specification (Definition 3.4)?
* :meth:`Verifier.check_predicate` - does a unary predicate hold on every
  enumerated value of a type?  (Used by tests and the experiment harness to
  validate inferred invariants against hand-written oracles.)

Inductiveness checks live in :mod:`repro.inductive`; they share the same
bounds and statistics so that the Figure-7 verification-time columns account
for all checking work.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.config import Deadline, VerifierBounds
from ..core.module import ModuleInstance
from ..core.stats import InferenceStats
from ..enumeration.ordering import diagonal_product
from ..enumeration.values import ValueEnumerator
from ..lang.types import Type, mentions_abstract
from ..lang.values import Value, bool_of_value
from .result import VALID, CheckResult, SufficiencyCounterexample

__all__ = ["Verifier"]


class Verifier:
    """Bounded enumerative testing of specifications and predicates."""

    def __init__(self, instance: ModuleInstance, enumerator: Optional[ValueEnumerator] = None,
                 bounds: VerifierBounds = VerifierBounds(),
                 stats: Optional[InferenceStats] = None,
                 deadline: Optional[Deadline] = None):
        self.instance = instance
        self.enumerator = enumerator or ValueEnumerator(instance.program.types)
        self.bounds = bounds
        self.stats = stats or InferenceStats()
        self.deadline = deadline or Deadline(None)

    # -- quantifier pools ------------------------------------------------------------

    def _pool(self, concrete_type: Type, quantifiers: int) -> List[Value]:
        """The values a quantified variable of the given type ranges over."""
        if quantifiers <= 1:
            max_count = self.bounds.max_structures_single
            max_size = self.bounds.max_nodes_single
        else:
            max_count = self.bounds.max_structures_multi
            max_size = self.bounds.max_nodes_multi
        return list(self.enumerator.enumerate(concrete_type, max_size=max_size, max_count=max_count))

    # -- sufficiency ------------------------------------------------------------------

    def check_sufficiency(self, invariant: Callable[[Value], bool]) -> CheckResult:
        """Check ``forall v. I(v) => phi(v)`` by bounded enumeration.

        The specification may quantify over several abstract values and over
        base-type values (Section 2.2); every quantifier is enumerated.  A
        counterexample reports the abstract-type witnesses only - they are
        what the Hanoi loop adds to V- (or reports as a specification bug when
        they are all known constructible).
        """
        with self.stats.verification():
            return self._check_sufficiency(invariant)

    def _check_sufficiency(self, invariant: Callable[[Value], bool]) -> CheckResult:
        definition = self.instance.definition
        interface_signature = definition.spec_signature
        concrete_signature = self.instance.spec_concrete_signature()
        quantifiers = len(concrete_signature)

        pools: List[List[Value]] = []
        for concrete_type in concrete_signature:
            pools.append(self._pool(concrete_type, quantifiers))

        abstract_positions = [
            index for index, ty in enumerate(interface_signature) if mentions_abstract(ty)
        ]

        processed = 0
        for assignment in diagonal_product(pools, self.bounds.max_total):
            processed += 1
            self.stats.structures_tested += 1
            if processed % 256 == 0:
                self.deadline.check()

            witnesses = tuple(assignment[i] for i in abstract_positions)
            if not all(invariant(w) for w in witnesses):
                continue
            result = self.instance.call_spec(*assignment)
            if not bool_of_value(result):
                return SufficiencyCounterexample(witnesses)
        return VALID

    # -- generic predicate checking ------------------------------------------------------

    def check_predicate(self, predicate: Callable[[Value], bool],
                        concrete_type: Optional[Type] = None) -> CheckResult:
        """Check that ``predicate`` holds on every enumerated value of a type.

        This is the plain ``Verify P`` of Section 3.3; the Hanoi loop itself
        only needs sufficiency and inductiveness, but tests and reports use
        this to compare an inferred invariant against an oracle.
        """
        with self.stats.verification():
            target = concrete_type or self.instance.concrete_type
            pool = self._pool(target, 1)
            for index, value in enumerate(pool):
                self.stats.structures_tested += 1
                if index % 256 == 0:
                    self.deadline.check()
                if not predicate(value):
                    return SufficiencyCounterexample((value,))
            return VALID

    def predicates_agree(self, left: Callable[[Value], bool], right: Callable[[Value], bool],
                         concrete_type: Optional[Type] = None) -> bool:
        """Bounded extensional equality of two predicates (test/report helper)."""
        target = concrete_type or self.instance.concrete_type
        for value in self._pool(target, 1):
            if left(value) != right(value):
                return False
        return True
