"""The size-bounded enumerative verifier (the paper's ``Verify``).

Section 4.3: "To implement Verify, we use a size-bounded enumerative tester,
which is unsound but effective in practice.  To validate a predicate with a
single quantifier, we test the predicate on data structures, from smallest to
largest, until either 3000 data structures have been processed, or the data
structure has over 30 AST nodes, whichever comes first.  To validate
predicates with two or more quantifiers, we instantiate each quantifier with
the smallest 3000 data structures with under 15 AST nodes.  We further limit
the total number of data structures processed to 30000."

The verifier exposes two checks used by the Hanoi loop:

* :meth:`Verifier.check_sufficiency` - does the candidate invariant imply the
  specification (Definition 3.4)?
* :meth:`Verifier.check_predicate` - does a unary predicate hold on every
  enumerated value of a type?  (Used by tests and the experiment harness to
  validate inferred invariants against hand-written oracles.)

Inductiveness checks live in :mod:`repro.inductive`; they share the same
bounds and statistics so that the Figure-7 verification-time columns account
for all checking work.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..core.config import Deadline, VerifierBounds
from ..core.module import ModuleInstance
from ..core.stats import InferenceStats
from ..enumeration.ordering import diagonal_product
from ..enumeration.values import ValueEnumerator
from ..lang.errors import LangError
from ..lang.types import Type, mentions_abstract
from ..lang.values import Value, bool_of_value
from ..obs.events import NULL_EMITTER
from .evalcache import EvaluationCache, SpecEntry
from .result import VALID, CheckResult, SufficiencyCounterexample

__all__ = ["Verifier"]


class Verifier:
    """Bounded enumerative testing of specifications and predicates."""

    def __init__(self, instance: ModuleInstance, enumerator: Optional[ValueEnumerator] = None,
                 bounds: VerifierBounds = VerifierBounds(),
                 stats: Optional[InferenceStats] = None,
                 deadline: Optional[Deadline] = None,
                 eval_cache: Optional[EvaluationCache] = None,
                 emitter: object = NULL_EMITTER):
        self.instance = instance
        self.enumerator = enumerator or ValueEnumerator(instance.program.types)
        self.bounds = bounds
        self.stats = stats or InferenceStats()
        self.deadline = deadline or Deadline(None)
        self.eval_cache = eval_cache
        self.emitter = emitter

    # -- quantifier pools ------------------------------------------------------------

    def _pool(self, concrete_type: Type, quantifiers: int) -> List[Value]:
        """The values a quantified variable of the given type ranges over."""
        if quantifiers <= 1:
            max_count = self.bounds.max_structures_single
            max_size = self.bounds.max_nodes_single
        else:
            max_count = self.bounds.max_structures_multi
            max_size = self.bounds.max_nodes_multi
        return list(self.enumerator.enumerate(concrete_type, max_size=max_size, max_count=max_count))

    def _assignment_budget(self, quantifiers: int) -> int:
        """How many assignments one sufficiency enumeration may process.

        Section 4.3 caps the total number of data *structures* processed
        (30000 at paper bounds), and a multi-quantifier assignment processes
        one structure per quantifier, so the assignment budget is the
        structure cap divided by the quantifier count.
        """
        return max(1, self.bounds.max_total // max(1, quantifiers))

    # -- sufficiency ------------------------------------------------------------------

    def check_sufficiency(self, invariant: Callable[[Value], bool]) -> CheckResult:
        """Check ``forall v. I(v) => phi(v)`` by bounded enumeration.

        The specification may quantify over several abstract values and over
        base-type values (Section 2.2); every quantifier is enumerated.  A
        counterexample reports the abstract-type witnesses only - they are
        what the Hanoi loop adds to V- (or reports as a specification bug when
        they are all known constructible).
        """
        emitter = self.emitter
        if not emitter.enabled:
            with self.stats.verification():
                return self._check_sufficiency(invariant)
        hits_before = self.stats.eval_cache_hits
        misses_before = self.stats.eval_cache_misses
        try:
            with emitter.span("sufficiency-check"):
                with self.stats.verification():
                    return self._check_sufficiency(invariant)
        finally:
            # The delta is emitted even when the check raises (a deadline
            # firing mid-check), so the analyzer's cross-check against the
            # run-end counters stays exact.
            if self.eval_cache is not None:
                emitter.emit("eval-cache",
                             {"hits": self.stats.eval_cache_hits - hits_before,
                              "misses": self.stats.eval_cache_misses - misses_before},
                             cat="cache")

    def _check_sufficiency(self, invariant: Callable[[Value], bool]) -> CheckResult:
        definition = self.instance.definition
        interface_signature = definition.spec_signature
        concrete_signature = self.instance.spec_concrete_signature()
        quantifiers = len(concrete_signature)

        abstract_positions = [
            index for index, ty in enumerate(interface_signature) if mentions_abstract(ty)
        ]

        if self.eval_cache is not None:
            return self._check_sufficiency_cached(
                invariant, concrete_signature, abstract_positions, quantifiers)

        pools: List[List[Value]] = []
        for concrete_type in concrete_signature:
            pools.append(self._pool(concrete_type, quantifiers))

        processed = 0
        for assignment in diagonal_product(pools, self._assignment_budget(quantifiers)):
            processed += 1
            self.stats.structures_tested += len(assignment)
            if processed % 256 == 0:
                self.deadline.check()

            witnesses = tuple(assignment[i] for i in abstract_positions)
            if not all(invariant(w) for w in witnesses):
                continue
            result = self.instance.call_spec(*assignment)
            if not bool_of_value(result):
                return SufficiencyCounterexample(witnesses)
        return VALID

    def _check_sufficiency_cached(self, invariant: Callable[[Value], bool],
                                  concrete_signature: Tuple[Type, ...],
                                  abstract_positions: List[int],
                                  quantifiers: int) -> CheckResult:
        """Sufficiency with the spec-verdict stream of the evaluation cache.

        The spec's verdict per assignment is candidate-independent, so the
        stream materializes the enumeration once and holds one verdict slot
        per assignment.  Verdicts are computed lazily - the spec runs only
        when the current candidate accepts the assignment's witnesses, the
        exact condition the uncached check evaluates under - and replayed by
        every later check: spec-true assignments are skipped outright,
        spec-falsifying ones reduce to predicate evaluations over their
        recorded witnesses.  Verdict and counterexample are identical to the
        uncached enumeration: both scan the same diagonal order and report
        the first falsifying assignment whose witnesses the candidate
        accepts.
        """
        stream = self.eval_cache.spec

        scanned = 0
        for entry in stream.entries:
            scanned += 1
            if scanned % 256 == 0:
                self.deadline.check()
            if entry.verdict is True:
                self.stats.eval_cache_hits += 1
                continue
            if entry.verdict is False:
                self.stats.eval_cache_hits += 1
                if all(invariant(w) for w in entry.witnesses):
                    if entry.error is not None:
                        # The uncached path evaluates the spec only on
                        # accepted assignments; surface the crash at the
                        # same point.
                        raise entry.error
                    return SufficiencyCounterexample(entry.witnesses)
                continue
            # Verdict still unknown: this assignment's witnesses were
            # rejected by every candidate checked so far.
            if not all(invariant(w) for w in entry.witnesses):
                continue
            outcome = self._resolve_spec_entry(entry)
            if outcome is not None:
                return outcome
        if stream.exhausted:
            return VALID

        if stream.iterator is None:
            pools = [self._pool(t, quantifiers) for t in concrete_signature]
            stream.iterator = diagonal_product(pools, self._assignment_budget(quantifiers))
            # Entries restored from a persistent snapshot (serve/diskcache)
            # occupy the first positions of this fresh enumeration; fast-
            # forward past them so the frontier resumes where the snapshot
            # stopped.  The enumeration is deterministic, so position i of a
            # fresh iterator is exactly the assignment entry i recorded.  In
            # a cold run entries is empty here and nothing is skipped.
            for _ in range(len(stream.entries)):
                next(stream.iterator, None)

        for assignment in stream.iterator:
            scanned += 1
            self.stats.structures_tested += len(assignment)
            if scanned % 256 == 0:
                self.deadline.check()

            witnesses = tuple(assignment[i] for i in abstract_positions)
            entry = SpecEntry(assignment, witnesses)
            stream.entries.append(entry)
            if not all(invariant(w) for w in witnesses):
                continue
            outcome = self._resolve_spec_entry(entry)
            if outcome is not None:
                return outcome
        stream.exhausted = True
        stream.iterator = None
        return VALID

    def _resolve_spec_entry(self, entry: SpecEntry) -> Optional[CheckResult]:
        """Evaluate the spec on an accepted assignment and record the verdict.

        Returns the counterexample when the assignment falsifies the spec
        (the caller's candidate accepts its witnesses, so it is the check's
        result), or ``None`` when the spec holds.
        """
        self.stats.eval_cache_misses += 1
        witnesses = entry.witnesses
        error: Optional[LangError] = None
        try:
            holds = bool_of_value(self.instance.call_spec(*entry.assignment))
        except LangError as exc:
            holds = False
            error = exc
        entry.resolve(holds, error)
        if holds:
            return None
        if error is not None:
            raise error
        return SufficiencyCounterexample(witnesses)

    # -- generic predicate checking ------------------------------------------------------

    def check_predicate(self, predicate: Callable[[Value], bool],
                        concrete_type: Optional[Type] = None) -> CheckResult:
        """Check that ``predicate`` holds on every enumerated value of a type.

        This is the plain ``Verify P`` of Section 3.3; the Hanoi loop itself
        only needs sufficiency and inductiveness, but tests and reports use
        this to compare an inferred invariant against an oracle.
        """
        with self.stats.verification():
            target = concrete_type or self.instance.concrete_type
            pool = self._pool(target, 1)
            for index, value in enumerate(pool):
                self.stats.structures_tested += 1
                if index % 256 == 0:
                    self.deadline.check()
                if not predicate(value):
                    return SufficiencyCounterexample((value,))
            return VALID

    def predicates_agree(self, left: Callable[[Value], bool], right: Callable[[Value], bool],
                         concrete_type: Optional[Type] = None) -> bool:
        """Bounded extensional equality of two predicates (test/report helper)."""
        target = concrete_type or self.instance.concrete_type
        for value in self._pool(target, 1):
            if left(value) != right(value):
                return False
        return True
