"""Pluggable verifier backends: the verification ladder.

The paper's ``Verify`` is a size-bounded enumerative tester (Section 4.3).
This module makes that one rung of a ladder (ROADMAP: "pluggable verifier
backends").  A backend answers the Hanoi loop's two obligation families -
sufficiency and conditional inductiveness - through one small interface:

* :class:`EnumerativeBackend` - the paper's behaviour, verbatim: every
  obligation goes to the bounded tester / checker.
* :class:`AbstractBackend` - purely static: obligations are discharged by
  the abstract interpreter (:mod:`repro.analysis.absint`); whatever it can
  neither prove nor refute is *accepted*.  This is a deliberately unsound
  diagnostic mode (the dual of the tester's unsoundness) for measuring the
  static tier in isolation - not for producing trusted invariants.
* :class:`LadderVerifier` - abstract first, enumeration for the rest.  A
  statically ``PROVEN`` obligation skips enumeration outright (sound: the
  abstract semantics over-approximates every concrete execution, so no
  enumerated counterexample can exist).  A ``REFUTED`` or ``UNKNOWN``
  obligation falls through to the enumerative rung, restricted to the
  undischarged operations *in interface order*, so the counterexample the
  loop sees - and therefore the whole inference trajectory - is identical
  to the enumerative backend's.

Static outcomes are tallied in :class:`~repro.core.stats.InferenceStats`
(``static_proofs`` / ``static_refutations`` / ``static_unknowns``) and, when
tracing is on, emitted as ``static-proof`` / ``static-refute`` events inside
a ``static-check`` span.  See docs/verification.md.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.absint import AbstractChecker, PROVEN, REFUTED, TRIVIAL, UNKNOWN
from ..core.predicate import Predicate
from ..core.stats import InferenceStats
from ..obs.events import NULL_EMITTER
from .result import VALID, CheckResult, InductivenessCounterexample

__all__ = [
    "PROVEN",
    "REFUTED",
    "UNKNOWN",
    "TRIVIAL",
    "VerifierBackend",
    "EnumerativeBackend",
    "AbstractBackend",
    "LadderVerifier",
    "BACKEND_NAMES",
    "make_backend",
]


class VerifierBackend:
    """The obligation interface extracted from ``verify.tester`` /
    ``inductive.relation``: what the Hanoi loop needs from verification."""

    name = "backend"

    def check_sufficiency(self, candidate) -> CheckResult:
        raise NotImplementedError

    def check_inductiveness(self, p, q, p_pool=None) -> CheckResult:
        raise NotImplementedError


class EnumerativeBackend(VerifierBackend):
    """The paper's bounded enumerative tier, unchanged."""

    name = "enumerative"

    def __init__(self, verifier, checker):
        self.verifier = verifier
        self.checker = checker

    def check_sufficiency(self, candidate) -> CheckResult:
        return self.verifier.check_sufficiency(candidate)

    def check_inductiveness(self, p, q, p_pool=None) -> CheckResult:
        return self.checker.check(p=p, q=q, p_pool=p_pool)


class _StaticTier:
    """Shared static-consultation machinery of the abstract-first backends."""

    def __init__(self, instance, verifier, checker,
                 stats: Optional[InferenceStats] = None,
                 emitter: object = NULL_EMITTER):
        self.instance = instance
        self.verifier = verifier
        self.checker = checker
        self.stats = stats or InferenceStats()
        self.emitter = emitter
        self._abstract: Optional[AbstractChecker] = None
        self._sufficiency: Optional[str] = None

    @property
    def abstract(self) -> AbstractChecker:
        if self._abstract is None:
            self._abstract = AbstractChecker(self.instance)
        return self._abstract

    # -- consultations (never raise: a static-tier failure means UNKNOWN) -------

    def sufficiency_verdict(self) -> str:
        # The sufficiency obligation is abstracted candidate-independently
        # (the specification over its argument-type tops), so the verdict is
        # computed once per run.
        if self._sufficiency is None:
            try:
                verdict = self.abstract.sufficiency_verdict()
            except Exception:
                verdict = UNKNOWN
            self._sufficiency = verdict
        return self._sufficiency

    def inductiveness_verdicts(self, q, p_pool) -> Optional[Dict[str, str]]:
        if not isinstance(q, Predicate):
            return None  # a membership lambda has no declaration to analyze
        try:
            return self.abstract.inductiveness_verdicts(q.decl, p_pool)
        except Exception:
            return None

    # -- bookkeeping ------------------------------------------------------------

    def _record_sufficiency(self, verdict: str) -> None:
        emitter = self.emitter
        if verdict == PROVEN:
            self.stats.static_proofs += 1
            if emitter.enabled:
                emitter.emit("static-proof", {"obligation": "sufficiency"},
                             cat="analysis")
        else:
            self.stats.static_unknowns += 1

    def _record_operations(self, verdicts: Dict[str, str]) -> None:
        emitter = self.emitter
        for name, verdict in verdicts.items():
            if verdict == PROVEN:
                self.stats.static_proofs += 1
                if emitter.enabled:
                    emitter.emit("static-proof",
                                 {"obligation": "inductiveness",
                                  "operation": name}, cat="analysis")
            elif verdict in (REFUTED, UNKNOWN):
                # A refutation is only *counted* once the enumerative rung
                # confirms it with a concrete witness (see callers).
                self.stats.static_unknowns += 1

    def _record_refutation(self, result: CheckResult,
                           verdicts: Dict[str, str]) -> CheckResult:
        if (isinstance(result, InductivenessCounterexample)
                and verdicts.get(result.operation) == REFUTED):
            self.stats.static_refutations += 1
            self.stats.static_unknowns -= 1  # it was provisionally counted
            if self.emitter.enabled:
                self.emitter.emit("static-refute",
                                  {"obligation": "inductiveness",
                                   "operation": result.operation},
                                  cat="analysis")
        return result

    def _span(self, obligation: str):
        return self.emitter.span("static-check", {"obligation": obligation},
                                 cat="analysis")


class LadderVerifier(_StaticTier, VerifierBackend):
    """Abstract-first with enumerative fallback - the production ladder.

    Sound with respect to the enumerative backend: it skips exactly the
    obligations on which enumeration cannot find a counterexample, and runs
    the enumerative rung on everything else in the original operation order,
    so inference outcomes are identical (pinned by the verifier-diff tests).
    """

    name = "ladder"

    def check_sufficiency(self, candidate) -> CheckResult:
        if self.emitter.enabled:
            with self._span("sufficiency"):
                verdict = self.sufficiency_verdict()
        else:
            verdict = self.sufficiency_verdict()
        self._record_sufficiency(verdict)
        if verdict == PROVEN:
            return VALID
        return self.verifier.check_sufficiency(candidate)

    def check_inductiveness(self, p, q, p_pool=None) -> CheckResult:
        if self.emitter.enabled:
            with self._span("inductiveness"):
                verdicts = self.inductiveness_verdicts(q, p_pool)
        else:
            verdicts = self.inductiveness_verdicts(q, p_pool)
        if verdicts is None:
            return self.checker.check(p=p, q=q, p_pool=p_pool)
        self._record_operations(verdicts)
        remaining = tuple(
            operation for operation in self.instance.operations
            if verdicts.get(operation.name) not in (PROVEN,)
        )
        if not remaining:
            return VALID
        result = self.checker.check(p=p, q=q, p_pool=p_pool,
                                    operations=remaining)
        return self._record_refutation(result, verdicts)


class AbstractBackend(_StaticTier, VerifierBackend):
    """The static tier alone: accepts every obligation it cannot refute.

    ``REFUTED`` obligations are confirmed on the enumerative rung so the
    loop still receives a *concrete* counterexample witness; ``UNKNOWN``
    obligations are accepted outright.  Unsound by design - an ablation for
    measuring what the abstract domains can and cannot see."""

    name = "abstract"

    def check_sufficiency(self, candidate) -> CheckResult:
        if self.emitter.enabled:
            with self._span("sufficiency"):
                verdict = self.sufficiency_verdict()
        else:
            verdict = self.sufficiency_verdict()
        self._record_sufficiency(verdict)
        return VALID  # proven, or unknown-accepted; never refutable statically

    def check_inductiveness(self, p, q, p_pool=None) -> CheckResult:
        if self.emitter.enabled:
            with self._span("inductiveness"):
                verdicts = self.inductiveness_verdicts(q, p_pool)
        else:
            verdicts = self.inductiveness_verdicts(q, p_pool)
        if verdicts is None:
            return self.checker.check(p=p, q=q, p_pool=p_pool)
        self._record_operations(verdicts)
        refuted = tuple(
            operation for operation in self.instance.operations
            if verdicts.get(operation.name) == REFUTED
        )
        if not refuted:
            return VALID
        result = self.checker.check(p=p, q=q, p_pool=p_pool, operations=refuted)
        if isinstance(result, InductivenessCounterexample):
            return self._record_refutation(result, verdicts)
        return VALID  # the bounded rung could not realize the refutation


BACKEND_NAMES: Tuple[str, ...] = ("enumerative", "abstract", "ladder")


def make_backend(name: str, *, instance, verifier, checker,
                 stats: Optional[InferenceStats] = None,
                 emitter: object = NULL_EMITTER) -> VerifierBackend:
    """Construct the backend selected by ``HanoiConfig.verifier_backend``."""
    if name == "enumerative":
        return EnumerativeBackend(verifier, checker)
    if name == "abstract":
        return AbstractBackend(instance, verifier, checker, stats, emitter)
    if name == "ladder":
        return LadderVerifier(instance, verifier, checker, stats, emitter)
    raise ValueError(
        f"unknown verifier backend {name!r} (expected one of {BACKEND_NAMES})")
