"""The unsound, size-bounded enumerative verifier (Section 4.3)."""

from .result import (
    VALID,
    CheckResult,
    InductivenessCounterexample,
    SufficiencyCounterexample,
    Valid,
)
from .tester import Verifier

__all__ = [
    "Verifier",
    "Valid",
    "VALID",
    "CheckResult",
    "SufficiencyCounterexample",
    "InductivenessCounterexample",
]
