"""Cross-iteration verification evaluation caching.

Section 4.4's principle - never throw away work the loop will redo - is
applied by the seed reproduction to *synthesis* (result caching, trace
caching) but not to *verification*, even though the Hanoi loop calls
``Verify`` dozens of times per run and most of each call's work is
candidate-independent:

* In a sufficiency check (Definition 3.4), the specification's truth value on
  a quantifier assignment does not depend on the candidate invariant, so it
  is worth computing at most once per run.  :class:`SpecStream` materializes
  the quantifier enumeration (suspending wherever a check stopped) and holds
  one verdict slot per assignment.  Verdicts stay *lazy* - the spec runs only
  when some candidate accepts the assignment's witnesses, exactly as in the
  uncached check, so a short run never pays for verdicts no check needed.
  Once known, a verdict is final: spec-true assignments are skipped by every
  later check without touching the candidate at all, and spec-falsifying
  ones reduce to predicate evaluations over their recorded witnesses.

* In a (conditional) inductiveness check (Figure 3), applying a module
  operation to an argument assignment - including the abstract values it was
  supplied, the abstract values it produced, the higher-order contract-log
  crossings, and whether it crashed - is likewise candidate-independent; the
  candidate only enters through the cheap ``P``/``Q`` predicate filters.
  :class:`OperationMemo` memoizes one :class:`OperationRecord` per
  ``(operation, assignment)`` pair, so re-checks replay records instead of
  re-interpreting object-language code.

Both stores hang off one per-run :class:`EvaluationCache`, created by
:class:`~repro.core.hanoi.HanoiInference` when
``HanoiConfig.evaluation_caching`` is enabled (the default) and shared by the
:class:`~repro.verify.tester.Verifier` and the
:class:`~repro.inductive.relation.ConditionalInductivenessChecker`.  The
cache changes no verdict: a cached check returns exactly the counterexample
(or ``VALID``) the uncached enumeration would, in the same order - see
``tests/verify/test_evalcache.py`` for the end-to-end equivalence test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..lang.errors import LangError
from ..lang.values import Value, is_first_order, value_order

__all__ = ["EvaluationCache", "SpecStream", "SpecEntry", "OperationMemo", "OperationRecord"]


class SpecEntry:
    """One materialized quantifier assignment and its (lazy) spec verdict.

    ``verdict`` is ``None`` while unknown, then ``True``/``False`` forever
    (the spec is pure).  Once known, the fields later checks cannot need are
    dropped: a spec-true assignment keeps nothing, a spec-falsifying one
    keeps its abstract-type ``witnesses`` (what a counterexample reports) and
    the evaluation ``error`` if the application crashed rather than returning
    ``false`` - re-raised only when a candidate accepts the witnesses,
    mirroring the uncached order of evaluation, where the spec runs only on
    accepted assignments.
    """

    __slots__ = ("assignment", "witnesses", "verdict", "error")

    def __init__(self, assignment: Tuple[Value, ...], witnesses: Tuple[Value, ...]) -> None:
        self.assignment: Optional[Tuple[Value, ...]] = assignment
        self.witnesses: Optional[Tuple[Value, ...]] = witnesses
        self.verdict: Optional[bool] = None
        self.error: Optional[LangError] = None

    def resolve(self, verdict: bool, error: Optional[LangError] = None) -> None:
        """Record the spec's verdict and drop what no later check can need."""
        self.verdict = verdict
        self.error = error
        self.assignment = None
        if verdict:
            self.witnesses = None

    def export(self) -> Tuple[object, object, Optional[bool]]:
        """The entry as a plain ``(assignment, witnesses, verdict)`` tuple.

        Every field is a first-order value tuple or a primitive, so the
        export pickles and unpickles across processes and hash seeds.  The
        stored ``error`` of a crashed resolution is deliberately *not*
        exported (see :meth:`SpecStream.export_entries`).
        """
        return (self.assignment, self.witnesses, self.verdict)

    @classmethod
    def restore(cls, exported: Tuple[object, object, Optional[bool]]) -> "SpecEntry":
        """Rebuild an entry from :meth:`export` output."""
        assignment, witnesses, verdict = exported
        entry = cls.__new__(cls)
        entry.assignment = assignment
        entry.witnesses = witnesses
        entry.verdict = verdict
        entry.error = None
        return entry


class SpecStream:
    """The sufficiency enumeration of one run, materialized at most once.

    ``entries`` holds one :class:`SpecEntry` per assignment in enumeration
    (diagonal) order; ``iterator`` is the suspended enumeration positioned at
    the frontier; ``exhausted`` is set once the enumeration's budget ran dry.
    The :class:`~repro.verify.tester.Verifier` owns the replay/resume logic;
    this class is deliberately dumb storage so the enumeration semantics stay
    in one place.
    """

    def __init__(self) -> None:
        self.entries: List[SpecEntry] = []
        self.iterator: Optional[Iterator[Tuple[Value, ...]]] = None
        self.exhausted = False

    def export_entries(self) -> Tuple[List[Tuple[object, object, Optional[bool]]], bool]:
        """A picklable ``(entries, exhausted)`` snapshot of the stream.

        Entries are exported in enumeration order up to (but excluding) the
        first entry that cannot round-trip: an error-bearing resolution
        (language errors carry positional constructors that do not all
        survive pickling, and a resolved entry has already dropped the
        assignment needed to re-derive its error lazily) or an assignment
        containing function values (identity-hashed, meaningless in another
        process).  Truncating is always safe - a warm run re-enumerates the
        suffix from the suspended iterator exactly as a cold run would - and
        a truncated snapshot is never marked exhausted.
        """
        exported: List[Tuple[object, object, Optional[bool]]] = []
        for entry in self.entries:
            if entry.error is not None:
                return exported, False
            if entry.assignment is not None and \
                    not all(is_first_order(v) for v in entry.assignment):
                return exported, False
            if entry.witnesses is not None and \
                    not all(is_first_order(v) for v in entry.witnesses):
                return exported, False
            exported.append(entry.export())
        return exported, self.exhausted

    def restore_entries(self,
                        exported: List[Tuple[object, object, Optional[bool]]],
                        exhausted: bool) -> None:
        """Adopt an :meth:`export_entries` snapshot into an empty stream.

        Only valid before the stream has been touched (fresh per-run cache):
        restored entries must occupy the positions the enumeration would
        assign them, so the verifier's resume logic can fast-forward the
        suspended iterator past ``len(entries)`` assignments.
        """
        if self.entries or self.iterator is not None:
            raise ValueError("SpecStream.restore_entries on a non-empty stream")
        self.entries = [SpecEntry.restore(item) for item in exported]
        self.exhausted = bool(exhausted)


@dataclass(frozen=True)
class OperationRecord:
    """The candidate-independent outcome of one operation application.

    ``supplied`` are the abstract values found in the argument assignment,
    ``produced`` the abstract values the module emitted (operation result plus
    module-to-client contract crossings), ``client_to_module`` the abstract
    values client-supplied functions returned into the module, and ``crashed``
    whether the application raised (crashing applications of enumerated,
    possibly nonsensical functional arguments carry no evidence).
    """

    supplied: Tuple[Value, ...]
    produced: Tuple[Value, ...]
    client_to_module: Tuple[Value, ...]
    crashed: bool


class OperationMemo:
    """Memoizes :class:`OperationRecord`s per ``(operation, assignment)``.

    Assignments are tuples of first-order values (structural hashing) and
    enumerated function values (identity hashing; the
    :class:`~repro.enumeration.functions.FunctionEnumerator` memoizes its
    pools, so the same function objects recur across checks).  ``max_entries``
    bounds memory: a full memo keeps answering lookups but stops storing new
    records, which only costs speed, never correctness.
    """

    def __init__(self, max_entries: int = 200_000) -> None:
        self.max_entries = max_entries
        self._records: Dict[Tuple[str, Tuple[Value, ...]], OperationRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def get(self, operation: str, assignment: Tuple[Value, ...]) -> Optional[OperationRecord]:
        return self._records.get((operation, assignment))

    def put(self, operation: str, assignment: Tuple[Value, ...],
            record: OperationRecord) -> None:
        if len(self._records) < self.max_entries:
            self._records[(operation, assignment)] = record

    def export_records(self) -> List[Tuple[Tuple[str, Tuple[Value, ...]], OperationRecord]]:
        """Picklable ``(key, record)`` pairs in a hash-seed-independent order.

        Entries whose assignment contains function values are skipped: those
        hash by identity, so a pickled copy in a fresh process would never be
        looked up again.  First-order assignments and records (values are
        frozen ``VCtor``/``VTuple`` trees) round-trip exactly.
        """
        exported = [
            (key, record) for key, record in self._records.items()
            if all(is_first_order(v) for v in key[1])
        ]
        exported.sort(key=lambda item: (item[0][0],
                                        tuple(value_order(v) for v in item[0][1])))
        return exported

    def restore_records(self,
                        items: List[Tuple[Tuple[str, Tuple[Value, ...]],
                                          OperationRecord]]) -> int:
        """Adopt :meth:`export_records` output; returns the number adopted."""
        adopted = 0
        for key, record in items:
            if len(self._records) >= self.max_entries:
                break
            if key not in self._records:
                self._records[key] = record
                adopted += 1
        return adopted


class EvaluationCache:
    """Per-run store of candidate-independent verification work.

    One instance is shared by the verifier (``spec``) and the inductiveness
    checker (``operations``) of a run; ablation modes simply never create one.
    Hit/miss counters live in :class:`~repro.core.stats.InferenceStats`
    (``eval_cache_hits`` / ``eval_cache_misses``), incremented at the use
    sites so the cache itself stays a pure store.
    """

    def __init__(self, max_operation_entries: int = 200_000,
                 content_key: str = "") -> None:
        self.spec = SpecStream()
        self.operations = OperationMemo(max_operation_entries)
        #: Canonical content hash of the module the cached work belongs to
        #: (``repro.analysis.canon.canonical_hash``).  Alpha-equivalent
        #: modules share a key, so persisted or cross-run reuse is keyed by
        #: behaviour rather than source spelling.  Empty when unknown.
        self.content_key = content_key

    def snapshot(self) -> Dict[str, object]:
        """Deterministic occupancy counts, stamped on ``cache-snapshot`` trace
        events so ``repro trace`` can report cache growth per run."""
        snapshot: Dict[str, object] = {
            "spec_entries": len(self.spec.entries),
            "spec_exhausted": self.spec.exhausted,
            "operation_entries": len(self.operations),
        }
        if self.content_key:
            snapshot["content_key"] = self.content_key
        return snapshot
