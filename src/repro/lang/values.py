"""Runtime values of the object language.

Values are the closed normal forms of the call-by-value semantics:

* :class:`VCtor` - a constructor applied to an optional payload value
  (booleans, Peano naturals, lists, trees, options, ...);
* :class:`VTuple` - a tuple of values;
* :class:`VClosure` - a (possibly recursive) function closure;
* :class:`VNative` - a function implemented in Python.  Native values never
  appear in user programs; they are used by the synthesizer (to interpret a
  recursive call against an example oracle), by the higher-order contract
  machinery (Section 4.2), and by the enumerator of functional arguments.

First-order values (constructors and tuples of them) are hashable and
structurally comparable, which the Hanoi loop relies on to maintain the
example sets V+ and V- as Python sets.  Closures compare by identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from .ast import Expr
from .types import Type

__all__ = [
    "Value",
    "VCtor",
    "VTuple",
    "VClosure",
    "VNative",
    "value_size",
    "value_order",
    "is_first_order",
    "nat_of_int",
    "int_of_nat",
    "v_bool",
    "bool_of_value",
    "v_list",
    "list_of_value",
]


class Value:
    """Base class for runtime values."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return str(self)


@dataclass(frozen=True)
class VCtor(Value):
    """A data constructor value with an optional payload."""

    ctor: str
    payload: Optional[Value] = None

    def __str__(self) -> str:
        rendered = _render_sugar(self)
        if rendered is not None:
            return rendered
        if self.payload is None:
            return self.ctor
        return f"{self.ctor} ({self.payload})"


@dataclass(frozen=True)
class VTuple(Value):
    """A tuple value."""

    items: Tuple[Value, ...]

    def __str__(self) -> str:
        return "(" + ", ".join(str(v) for v in self.items) + ")"


@dataclass(frozen=True, eq=False)
class VClosure(Value):
    """A function closure.

    ``rec_name`` is the name under which the closure refers to itself for
    recursive definitions; the evaluator re-binds it on every application.
    """

    param: str
    param_type: Optional[Type]
    body: Expr
    env: Dict[str, Value] = field(repr=False)
    rec_name: Optional[str] = None

    def __str__(self) -> str:
        return f"<fun {self.param}>"

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


@dataclass(frozen=True, eq=False)
class VNative(Value):
    """A function value implemented by a Python callable of one argument."""

    fn: Callable[[Value], Value]
    name: str = "<native>"

    def __str__(self) -> str:
        return f"<native {self.name}>"

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


# ---------------------------------------------------------------------------
# Measurement and classification
# ---------------------------------------------------------------------------


def value_size(value: Value) -> int:
    """The number of constructor/tuple nodes of a first-order value.

    This is the "AST nodes" size used by the verifier bounds in Section 4.3
    (for example, the Peano natural ``3`` has size 4: ``S (S (S O))``).
    Function values count as a single node.
    """
    if isinstance(value, VCtor):
        return 1 + (value_size(value.payload) if value.payload is not None else 0)
    if isinstance(value, VTuple):
        return 1 + sum(value_size(v) for v in value.items)
    return 1


def value_order(value: Value):
    """A hash-seed-independent total order on first-order values.

    Sorting by :func:`value_size` alone leaves equal-size values in whatever
    order the source container iterates - for Python sets, an order that
    varies with the interpreter's hash seed.  Everything that sorts example
    values (the synthesizer's oracle, the result cache's example logs) uses
    this key so runs are reproducible across seeds.
    """
    return (value_size(value), str(value))


def is_first_order(value: Value) -> bool:
    """True when the value contains no function values."""
    if isinstance(value, VCtor):
        return value.payload is None or is_first_order(value.payload)
    if isinstance(value, VTuple):
        return all(is_first_order(v) for v in value.items)
    return False


# ---------------------------------------------------------------------------
# Conversions between Python data and prelude values
# ---------------------------------------------------------------------------

TRUE = VCtor("True")
FALSE = VCtor("False")


def v_bool(flag: bool) -> VCtor:
    """The prelude boolean value for a Python bool."""
    return TRUE if flag else FALSE


def bool_of_value(value: Value) -> bool:
    """Interpret a prelude ``bool`` value as a Python bool."""
    if isinstance(value, VCtor):
        if value.ctor == "True":
            return True
        if value.ctor == "False":
            return False
    raise ValueError(f"not a boolean value: {value}")


def nat_of_int(n: int) -> VCtor:
    """The Peano natural ``S (S (... O))`` for a non-negative Python int."""
    if n < 0:
        raise ValueError("naturals cannot be negative")
    value = VCtor("O")
    for _ in range(n):
        value = VCtor("S", value)
    return value


def int_of_nat(value: Value) -> int:
    """The Python int denoted by a Peano natural value."""
    count = 0
    while isinstance(value, VCtor) and value.ctor == "S":
        count += 1
        value = value.payload
    if not (isinstance(value, VCtor) and value.ctor == "O"):
        raise ValueError("not a natural number value")
    return count


def v_list(items, nil: str = "Nil", cons: str = "Cons") -> VCtor:
    """Build a prelude-style list value from an iterable of values."""
    result = VCtor(nil)
    for item in reversed(list(items)):
        result = VCtor(cons, VTuple((item, result)))
    return result


def list_of_value(value: Value, nil: str = "Nil", cons: str = "Cons"):
    """Flatten a prelude-style list value into a Python list of values."""
    items = []
    while isinstance(value, VCtor) and value.ctor == cons:
        payload = value.payload
        if not (isinstance(payload, VTuple) and len(payload.items) == 2):
            raise ValueError("malformed list value")
        items.append(payload.items[0])
        value = payload.items[1]
    if not (isinstance(value, VCtor) and value.ctor == nil):
        raise ValueError("not a list value")
    return items


# ---------------------------------------------------------------------------
# Pretty-printing sugar for common prelude shapes
# ---------------------------------------------------------------------------


def _render_sugar(value: VCtor) -> Optional[str]:
    """Render naturals as digits and lists with bracket notation when possible."""
    if value.ctor in ("O", "S"):
        try:
            return str(int_of_nat(value))
        except ValueError:
            return None
    if value.ctor in ("Nil", "Cons"):
        try:
            items = list_of_value(value)
        except ValueError:
            return None
        return "[" + "; ".join(str(v) for v in items) + "]"
    return None
