"""Types of the object language.

The paper's type grammar (Section 3.1)::

    (0-types) sigma ::= beta | alpha | (sigma * sigma)
    (1-types) tau   ::= sigma | sigma -> tau | (tau * tau)

In the implementation (Section 4.1) the base types are user-declared recursive
algebraic data types (booleans, Peano naturals, lists, trees, ...), so our
representation is:

* :class:`TData` - a named algebraic data type declared with ``type``;
* :class:`TAbstract` - the single designated abstract type ``alpha`` used in
  module interfaces and specifications;
* :class:`TProd` - n-ary products;
* :class:`TArrow` - function types.

Interface signatures (``tau_m``) mention :class:`TAbstract`; module code and
values never do - they use the concrete type.  :func:`substitute_abstract`
performs the substitution ``tau[alpha -> tau_c]`` from the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = [
    "Type",
    "TData",
    "TAbstract",
    "TProd",
    "TArrow",
    "substitute_abstract",
    "mentions_abstract",
    "arrow_args",
    "arrow_result",
    "prod",
    "arrow",
]


class Type:
    """Base class of all object-language types.  Instances are immutable."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return str(self)


@dataclass(frozen=True)
class TData(Type):
    """A named, user-declared algebraic data type (``nat``, ``bool``, ``list``...)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TAbstract(Type):
    """The designated abstract type ``alpha`` of a module interface."""

    def __str__(self) -> str:
        return "'t"


@dataclass(frozen=True)
class TProd(Type):
    """An n-ary product type ``t1 * t2 * ... * tn`` (n >= 2)."""

    items: Tuple[Type, ...]

    def __post_init__(self) -> None:
        if len(self.items) < 2:
            raise ValueError("TProd requires at least two components")

    def __str__(self) -> str:
        return "(" + " * ".join(str(t) for t in self.items) + ")"


@dataclass(frozen=True)
class TArrow(Type):
    """A function type ``arg -> result``."""

    arg: Type
    result: Type

    def __str__(self) -> str:
        return f"({self.arg} -> {self.result})"


def prod(*items: Type) -> Type:
    """Build a product type; with a single component, return it unchanged."""
    if len(items) == 1:
        return items[0]
    return TProd(tuple(items))


def arrow(*types: Type) -> Type:
    """Build a right-nested curried arrow ``t1 -> t2 -> ... -> tn``."""
    if not types:
        raise ValueError("arrow requires at least one type")
    result = types[-1]
    for t in reversed(types[:-1]):
        result = TArrow(t, result)
    return result


def substitute_abstract(ty: Type, concrete: Type) -> Type:
    """Return ``ty`` with every occurrence of the abstract type replaced.

    This is the paper's ``tau[alpha -> tau_c]`` substitution.
    """
    if isinstance(ty, TAbstract):
        return concrete
    if isinstance(ty, TData):
        return ty
    if isinstance(ty, TProd):
        return TProd(tuple(substitute_abstract(t, concrete) for t in ty.items))
    if isinstance(ty, TArrow):
        return TArrow(
            substitute_abstract(ty.arg, concrete),
            substitute_abstract(ty.result, concrete),
        )
    raise TypeError(f"unknown type node: {ty!r}")


def mentions_abstract(ty: Type) -> bool:
    """True when ``ty`` contains an occurrence of the abstract type."""
    if isinstance(ty, TAbstract):
        return True
    if isinstance(ty, TData):
        return False
    if isinstance(ty, TProd):
        return any(mentions_abstract(t) for t in ty.items)
    if isinstance(ty, TArrow):
        return mentions_abstract(ty.arg) or mentions_abstract(ty.result)
    raise TypeError(f"unknown type node: {ty!r}")


def arrow_args(ty: Type) -> Iterator[Type]:
    """Yield the argument types of a curried arrow type, in order."""
    while isinstance(ty, TArrow):
        yield ty.arg
        ty = ty.result


def arrow_result(ty: Type) -> Type:
    """Return the final result type of a curried arrow type."""
    while isinstance(ty, TArrow):
        ty = ty.result
    return ty
