"""Call-by-value evaluator for the object language.

The evaluator is a straightforward environment-passing interpreter with a
*fuel* budget.  Fuel bounds the number of evaluation steps so that the Hanoi
loop can safely run synthesized candidates and enumerated functional
arguments without risking non-termination (all benchmark code is structurally
recursive, but the budget also protects against pathological inputs).

Native function values (:class:`~repro.lang.values.VNative`) are applied by
calling their Python callable; this is how the synthesizer's example oracle
and the higher-order contract wrappers participate in evaluation.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, Optional

from .ast import (
    ECtor,
    EFun,
    ELet,
    EMatch,
    EProj,
    ETuple,
    EVar,
    EApp,
    Expr,
    PCtor,
    PTuple,
    PVar,
    PWild,
    Pattern,
)
from .errors import EvalError, FuelExhausted, MatchFailure
from .values import Value, VClosure, VCtor, VNative, VTuple

__all__ = ["Evaluator", "EvalBudget", "DEFAULT_FUEL"]

DEFAULT_FUEL = 500_000

# The interpreter recurses on expression and data depth; benchmark values are
# small, but deep Peano naturals in stress tests need head-room.
if sys.getrecursionlimit() < 20_000:
    sys.setrecursionlimit(20_000)


@dataclass
class EvalBudget:
    """A mutable step counter shared across nested evaluations."""

    remaining: int = DEFAULT_FUEL

    def spend(self, amount: int = 1) -> None:
        self.remaining -= amount
        if self.remaining < 0:
            raise FuelExhausted("evaluation step budget exhausted")


class Evaluator:
    """Evaluates expressions in a global environment of top-level values."""

    def __init__(self, globals_: Optional[Dict[str, Value]] = None, fuel: int = DEFAULT_FUEL):
        self.globals: Dict[str, Value] = globals_ if globals_ is not None else {}
        self.default_fuel = fuel

    # -- public API -----------------------------------------------------------

    def eval(self, expr: Expr, env: Optional[Dict[str, Value]] = None,
             budget: Optional[EvalBudget] = None) -> Value:
        """Evaluate ``expr`` to a value in local environment ``env``."""
        if budget is None:
            budget = EvalBudget(self.default_fuel)
        return self._eval(expr, env or {}, budget)

    def apply(self, fn: Value, *args: Value, budget: Optional[EvalBudget] = None) -> Value:
        """Apply a function value to arguments, left to right."""
        if budget is None:
            budget = EvalBudget(self.default_fuel)
        result = fn
        for arg in args:
            result = self._apply(result, arg, budget)
        return result

    # -- core evaluation --------------------------------------------------------

    def _eval(self, expr: Expr, env: Dict[str, Value], budget: EvalBudget) -> Value:
        budget.spend()

        if isinstance(expr, EVar):
            if expr.name in env:
                return env[expr.name]
            if expr.name in self.globals:
                return self.globals[expr.name]
            raise EvalError(f"unbound variable at runtime: {expr.name}")

        if isinstance(expr, ECtor):
            payload = self._eval(expr.payload, env, budget) if expr.payload is not None else None
            return VCtor(expr.ctor, payload)

        if isinstance(expr, ETuple):
            return VTuple(tuple(self._eval(e, env, budget) for e in expr.items))

        if isinstance(expr, EProj):
            value = self._eval(expr.expr, env, budget)
            if not isinstance(value, VTuple) or expr.index >= len(value.items):
                raise EvalError(f"invalid projection from {value}")
            return value.items[expr.index]

        if isinstance(expr, EApp):
            fn = self._eval(expr.fn, env, budget)
            arg = self._eval(expr.arg, env, budget)
            return self._apply(fn, arg, budget)

        if isinstance(expr, EFun):
            return VClosure(expr.param, expr.param_type, expr.body, dict(env))

        if isinstance(expr, ELet):
            value = self._eval(expr.value, env, budget)
            inner = dict(env)
            inner[expr.name] = value
            return self._eval(expr.body, inner, budget)

        if isinstance(expr, EMatch):
            scrutinee = self._eval(expr.scrutinee, env, budget)
            for branch in expr.branches:
                bindings = match_pattern(branch.pattern, scrutinee)
                if bindings is not None:
                    inner = dict(env)
                    inner.update(bindings)
                    return self._eval(branch.body, inner, budget)
            raise MatchFailure(f"no branch matched value {scrutinee}")

        raise EvalError(f"unknown expression node: {expr!r}")

    def _apply(self, fn: Value, arg: Value, budget: EvalBudget) -> Value:
        budget.spend()
        if isinstance(fn, VClosure):
            env = dict(fn.env)
            env[fn.param] = arg
            if fn.rec_name is not None:
                env[fn.rec_name] = fn
            return self._eval(fn.body, env, budget)
        if isinstance(fn, VNative):
            return fn.fn(arg)
        raise EvalError(f"application of non-function value {fn}")


def match_pattern(pattern: Pattern, value: Value) -> Optional[Dict[str, Value]]:
    """Return the bindings produced by matching ``value`` against ``pattern``,
    or ``None`` when the pattern does not match."""
    if isinstance(pattern, PWild):
        return {}
    if isinstance(pattern, PVar):
        return {pattern.name: value}
    if isinstance(pattern, PCtor):
        if not isinstance(value, VCtor) or value.ctor != pattern.ctor:
            return None
        if pattern.payload is None:
            return {}
        if value.payload is None:
            return None
        return match_pattern(pattern.payload, value.payload)
    if isinstance(pattern, PTuple):
        if not isinstance(value, VTuple) or len(value.items) != len(pattern.items):
            return None
        bindings: Dict[str, Value] = {}
        for sub_pattern, sub_value in zip(pattern.items, value.items):
            sub_bindings = match_pattern(sub_pattern, sub_value)
            if sub_bindings is None:
                return None
            bindings.update(sub_bindings)
        return bindings
    raise EvalError(f"unknown pattern node: {pattern!r}")
