"""Abstract syntax of the object language.

The expression grammar follows Section 3.1 of the paper extended with the
constructs of the implemented language of Section 4.1: recursive data type
constructors, pattern matching, and (recursive) let definitions.

Design notes
------------
* Constructors carry at most one payload expression.  A multi-argument
  constructor such as ``Cons of nat * list`` takes a single tuple payload,
  mirroring OCaml's representation.
* ``if`` is desugared by the parser into a ``match`` over the ``bool`` data
  type, so there is no ``EIf`` node.
* AST nodes are frozen dataclasses: they are hashable and comparable, which
  the synthesizer relies on for caching and deduplication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .types import Type

__all__ = [
    "Expr",
    "EVar",
    "ECtor",
    "ETuple",
    "EProj",
    "EApp",
    "EFun",
    "ELet",
    "EMatch",
    "Pattern",
    "PWild",
    "PVar",
    "PCtor",
    "PTuple",
    "Branch",
    "Decl",
    "CtorDecl",
    "TypeDecl",
    "FunDecl",
    "expr_size",
    "app",
    "free_vars",
]


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


class Pattern:
    """Base class for match patterns."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return str(self)


@dataclass(frozen=True)
class PWild(Pattern):
    """The wildcard pattern ``_``."""

    def __str__(self) -> str:
        return "_"


@dataclass(frozen=True)
class PVar(Pattern):
    """A variable pattern binding the matched value."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PCtor(Pattern):
    """A constructor pattern, optionally matching a payload sub-pattern."""

    ctor: str
    payload: Optional[Pattern] = None

    def __str__(self) -> str:
        if self.payload is None:
            return self.ctor
        return f"{self.ctor} {self.payload}"


@dataclass(frozen=True)
class PTuple(Pattern):
    """A tuple pattern ``(p1, ..., pn)``."""

    items: Tuple[Pattern, ...]

    def __str__(self) -> str:
        return "(" + ", ".join(str(p) for p in self.items) + ")"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expressions."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return str(self)


@dataclass(frozen=True)
class EVar(Expr):
    """A variable reference."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ECtor(Expr):
    """A constructor application with an optional payload expression."""

    ctor: str
    payload: Optional[Expr] = None

    def __str__(self) -> str:
        if self.payload is None:
            return self.ctor
        return f"({self.ctor} {self.payload})"


@dataclass(frozen=True)
class ETuple(Expr):
    """A tuple expression ``(e1, ..., en)``."""

    items: Tuple[Expr, ...]

    def __str__(self) -> str:
        return "(" + ", ".join(str(e) for e in self.items) + ")"


@dataclass(frozen=True)
class EProj(Expr):
    """Projection ``pi_i e`` of the i-th component (0-based) of a tuple."""

    index: int
    expr: Expr

    def __str__(self) -> str:
        return f"(proj {self.index} {self.expr})"


@dataclass(frozen=True)
class EApp(Expr):
    """Function application ``fn arg`` (curried)."""

    fn: Expr
    arg: Expr

    def __str__(self) -> str:
        return f"({self.fn} {self.arg})"


@dataclass(frozen=True)
class EFun(Expr):
    """An anonymous function ``fun (x : t) -> body``."""

    param: str
    param_type: Type
    body: Expr

    def __str__(self) -> str:
        return f"(fun ({self.param} : {self.param_type}) -> {self.body})"


@dataclass(frozen=True)
class ELet(Expr):
    """A local binding ``let x = value in body``."""

    name: str
    value: Expr
    body: Expr

    def __str__(self) -> str:
        return f"(let {self.name} = {self.value} in {self.body})"


@dataclass(frozen=True)
class Branch:
    """A single ``pattern -> expr`` arm of a match expression."""

    pattern: Pattern
    body: Expr

    def __str__(self) -> str:
        return f"| {self.pattern} -> {self.body}"


@dataclass(frozen=True)
class EMatch(Expr):
    """A match expression over a scrutinee with one or more branches.

    ``line`` is the source line of the ``match`` (or desugared ``if``)
    keyword when the expression came from the parser, ``None`` for
    programmatically built nodes.  It is excluded from equality and hashing:
    the synthesizer's caches and dedup sets compare expressions structurally.
    """

    scrutinee: Expr
    branches: Tuple[Branch, ...]
    line: Optional[int] = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        arms = " ".join(str(b) for b in self.branches)
        return f"(match {self.scrutinee} with {arms})"


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CtorDecl:
    """A constructor declaration ``Name [of payload_type]``."""

    name: str
    payload: Optional[Type] = None


@dataclass(frozen=True)
class TypeDecl:
    """A data type declaration ``type name = C1 [of t1] | C2 [of t2] | ...``.

    ``line`` is the declaration's starting source line when parsed from
    source (``None`` for programmatic declarations); it is excluded from
    equality and hashing so structural comparison is position-independent.
    """

    name: str
    ctors: Tuple[CtorDecl, ...]
    line: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class FunDecl:
    """A top-level (possibly recursive) function or value definition.

    ``params`` is a tuple of ``(name, type)`` pairs; a definition with no
    parameters is a plain value binding.  ``return_type`` may be ``None`` when
    omitted in the source, in which case the type checker infers it.

    ``line`` is the declaration's starting source line when parsed from
    source (``None`` for programmatic declarations); it is excluded from
    equality and hashing so structural comparison is position-independent.
    """

    name: str
    params: Tuple[Tuple[str, Type], ...]
    return_type: Optional[Type]
    body: Expr
    recursive: bool = False
    line: Optional[int] = field(default=None, compare=False, repr=False)


Decl = object  # TypeDecl | FunDecl; kept loose for Python 3.9 compatibility.


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def app(fn: Expr, *args: Expr) -> Expr:
    """Build a curried application ``fn a1 a2 ... an``."""
    result = fn
    for a in args:
        result = EApp(result, a)
    return result


def expr_size(expr: Expr) -> int:
    """Number of AST nodes in an expression.

    This is the size metric reported in the paper's Figure 7 ("Size is the
    size of the inferred invariant" in AST nodes).  Patterns count one node
    per pattern constructor/variable.
    """
    if isinstance(expr, EVar):
        return 1
    if isinstance(expr, ECtor):
        return 1 + (expr_size(expr.payload) if expr.payload is not None else 0)
    if isinstance(expr, ETuple):
        return 1 + sum(expr_size(e) for e in expr.items)
    if isinstance(expr, EProj):
        return 1 + expr_size(expr.expr)
    if isinstance(expr, EApp):
        return 1 + expr_size(expr.fn) + expr_size(expr.arg)
    if isinstance(expr, EFun):
        return 1 + expr_size(expr.body)
    if isinstance(expr, ELet):
        return 1 + expr_size(expr.value) + expr_size(expr.body)
    if isinstance(expr, EMatch):
        total = 1 + expr_size(expr.scrutinee)
        for branch in expr.branches:
            total += _pattern_size(branch.pattern) + expr_size(branch.body)
        return total
    raise TypeError(f"unknown expression node: {expr!r}")


def _pattern_size(pattern: Pattern) -> int:
    if isinstance(pattern, (PWild, PVar)):
        return 1
    if isinstance(pattern, PCtor):
        return 1 + (_pattern_size(pattern.payload) if pattern.payload else 0)
    if isinstance(pattern, PTuple):
        return 1 + sum(_pattern_size(p) for p in pattern.items)
    raise TypeError(f"unknown pattern node: {pattern!r}")


def _pattern_vars(pattern: Pattern) -> frozenset:
    if isinstance(pattern, PWild):
        return frozenset()
    if isinstance(pattern, PVar):
        return frozenset({pattern.name})
    if isinstance(pattern, PCtor):
        return _pattern_vars(pattern.payload) if pattern.payload else frozenset()
    if isinstance(pattern, PTuple):
        result = frozenset()
        for p in pattern.items:
            result |= _pattern_vars(p)
        return result
    raise TypeError(f"unknown pattern node: {pattern!r}")


def free_vars(expr: Expr) -> frozenset:
    """The set of free variable names of an expression."""
    if isinstance(expr, EVar):
        return frozenset({expr.name})
    if isinstance(expr, ECtor):
        return free_vars(expr.payload) if expr.payload is not None else frozenset()
    if isinstance(expr, ETuple):
        result = frozenset()
        for e in expr.items:
            result |= free_vars(e)
        return result
    if isinstance(expr, EProj):
        return free_vars(expr.expr)
    if isinstance(expr, EApp):
        return free_vars(expr.fn) | free_vars(expr.arg)
    if isinstance(expr, EFun):
        return free_vars(expr.body) - {expr.param}
    if isinstance(expr, ELet):
        return free_vars(expr.value) | (free_vars(expr.body) - {expr.name})
    if isinstance(expr, EMatch):
        result = free_vars(expr.scrutinee)
        for branch in expr.branches:
            result |= free_vars(branch.body) - _pattern_vars(branch.pattern)
        return result
    raise TypeError(f"unknown expression node: {expr!r}")
