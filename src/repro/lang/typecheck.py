"""Type checker for the object language.

The checker validates declarations in order and produces a
:class:`TypeEnvironment` that records:

* data type declarations and their constructors,
* the (curried) type of every top-level definition.

Expressions are checked bidirectionally enough for our needs: the object
language is explicitly annotated at binders (function parameters, top-level
parameters), so checking is mostly synthesis with equality checks at
application and match sites.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .ast import (
    ECtor,
    EFun,
    ELet,
    EMatch,
    EProj,
    ETuple,
    EVar,
    EApp,
    Expr,
    FunDecl,
    PCtor,
    PTuple,
    PVar,
    PWild,
    Pattern,
    TypeDecl,
)
from .errors import TypeError_
from .types import TAbstract, TArrow, TData, TProd, Type, arrow

__all__ = ["TypeEnvironment", "TypeChecker", "CtorInfo"]


@dataclass(frozen=True)
class CtorInfo:
    """Information about a declared constructor."""

    name: str
    datatype: str
    payload: Optional[Type]


@dataclass
class TypeEnvironment:
    """The global typing context produced by checking a program's declarations."""

    datatypes: Dict[str, TypeDecl] = field(default_factory=dict)
    ctors: Dict[str, CtorInfo] = field(default_factory=dict)
    globals: Dict[str, Type] = field(default_factory=dict)

    def declare_datatype(self, decl: TypeDecl) -> None:
        if decl.name in self.datatypes:
            raise TypeError_(f"duplicate type declaration: {decl.name}")
        self.datatypes[decl.name] = decl
        for ctor in decl.ctors:
            if ctor.name in self.ctors:
                raise TypeError_(f"duplicate constructor: {ctor.name}")
            self.ctors[ctor.name] = CtorInfo(ctor.name, decl.name, ctor.payload)

    def ctor_info(self, name: str) -> CtorInfo:
        try:
            return self.ctors[name]
        except KeyError:
            raise TypeError_(f"unknown constructor: {name}") from None

    def datatype_ctors(self, name: str) -> Tuple[CtorInfo, ...]:
        try:
            decl = self.datatypes[name]
        except KeyError:
            raise TypeError_(f"unknown data type: {name}") from None
        return tuple(self.ctors[c.name] for c in decl.ctors)

    def is_datatype(self, ty: Type) -> bool:
        return isinstance(ty, TData) and ty.name in self.datatypes

    def copy(self) -> "TypeEnvironment":
        return TypeEnvironment(dict(self.datatypes), dict(self.ctors), dict(self.globals))


class TypeChecker:
    """Checks declarations and expressions against a :class:`TypeEnvironment`."""

    def __init__(self, env: Optional[TypeEnvironment] = None):
        self.env = env if env is not None else TypeEnvironment()

    # -- declarations --------------------------------------------------------

    def check_declarations(self, decls) -> TypeEnvironment:
        """Check a batch of declarations.

        Data type declarations are processed first (in order), then the
        signatures of fully annotated function declarations are registered so
        that mutually recursive definitions within the same batch can refer
        to each other, and finally every function body is checked in order.
        """
        decls = list(decls)
        for decl in decls:
            if isinstance(decl, TypeDecl):
                with self._positioned(decl):
                    self._check_type_decl(decl)
            elif not isinstance(decl, FunDecl):
                raise TypeError_(f"unknown declaration: {decl!r}")
        for decl in decls:
            if isinstance(decl, FunDecl) and decl.params and decl.return_type is not None:
                with self._positioned(decl):
                    for _, param_type in decl.params:
                        self._check_wellformed(param_type)
                    self._check_wellformed(decl.return_type)
                self.env.globals.setdefault(
                    decl.name, arrow(*[t for _, t in decl.params], decl.return_type)
                )
        for decl in decls:
            if isinstance(decl, FunDecl):
                with self._positioned(decl):
                    self._check_fun_decl(decl)
        return self.env

    @contextmanager
    def _positioned(self, decl):
        """Anchor any :class:`TypeError_` escaping the block to ``decl``'s line."""
        try:
            yield
        except TypeError_ as exc:
            anchored = exc.with_line(getattr(decl, "line", None))
            if anchored is exc:
                raise
            raise anchored from None

    def _check_type_decl(self, decl: TypeDecl) -> None:
        self.env.declare_datatype(decl)
        for ctor in decl.ctors:
            if ctor.payload is not None:
                self._check_wellformed(ctor.payload)

    def _check_wellformed(self, ty: Type) -> None:
        if isinstance(ty, TData):
            if ty.name not in self.env.datatypes:
                raise TypeError_(f"unknown type name: {ty.name}")
            return
        if isinstance(ty, TAbstract):
            return
        if isinstance(ty, TProd):
            for item in ty.items:
                self._check_wellformed(item)
            return
        if isinstance(ty, TArrow):
            self._check_wellformed(ty.arg)
            self._check_wellformed(ty.result)
            return
        raise TypeError_(f"unknown type node: {ty!r}")

    def _check_fun_decl(self, decl: FunDecl) -> None:
        for _, param_type in decl.params:
            self._check_wellformed(param_type)
        if decl.return_type is not None:
            self._check_wellformed(decl.return_type)

        locals_: Dict[str, Type] = dict(decl.params)
        if decl.recursive:
            if decl.return_type is None:
                raise TypeError_(
                    f"recursive definition {decl.name!r} needs a return type annotation"
                )
            self_type = arrow(*[t for _, t in decl.params], decl.return_type)
            locals_with_self = dict(locals_)
            locals_with_self[decl.name] = self_type
            body_type = self.infer(decl.body, locals_with_self)
        else:
            body_type = self.infer(decl.body, locals_)

        if decl.return_type is not None and body_type != decl.return_type:
            raise TypeError_(
                f"definition {decl.name!r}: body has type {body_type} "
                f"but was annotated {decl.return_type}"
            )
        final_return = decl.return_type if decl.return_type is not None else body_type
        self.env.globals[decl.name] = arrow(*[t for _, t in decl.params], final_return)

    # -- expressions -----------------------------------------------------------

    def infer(self, expr: Expr, locals_: Dict[str, Type]) -> Type:
        """Infer the type of an expression in the given local context."""
        if isinstance(expr, EVar):
            if expr.name in locals_:
                return locals_[expr.name]
            if expr.name in self.env.globals:
                return self.env.globals[expr.name]
            raise TypeError_(f"unbound variable: {expr.name}")

        if isinstance(expr, ECtor):
            info = self.env.ctor_info(expr.ctor)
            if info.payload is None:
                if expr.payload is not None:
                    raise TypeError_(f"constructor {expr.ctor} takes no payload")
            else:
                if expr.payload is None:
                    raise TypeError_(f"constructor {expr.ctor} requires a payload")
                payload_type = self.infer(expr.payload, locals_)
                if payload_type != info.payload:
                    raise TypeError_(
                        f"constructor {expr.ctor}: payload has type {payload_type} "
                        f"but expected {info.payload}"
                    )
            return TData(info.datatype)

        if isinstance(expr, ETuple):
            return TProd(tuple(self.infer(e, locals_) for e in expr.items))

        if isinstance(expr, EProj):
            inner = self.infer(expr.expr, locals_)
            if not isinstance(inner, TProd):
                raise TypeError_(f"projection from non-tuple type {inner}")
            if not (0 <= expr.index < len(inner.items)):
                raise TypeError_(f"projection index {expr.index} out of range for {inner}")
            return inner.items[expr.index]

        if isinstance(expr, EApp):
            fn_type = self.infer(expr.fn, locals_)
            if not isinstance(fn_type, TArrow):
                raise TypeError_(f"application of non-function type {fn_type}")
            arg_type = self.infer(expr.arg, locals_)
            if arg_type != fn_type.arg:
                raise TypeError_(
                    f"application argument has type {arg_type} but expected {fn_type.arg}"
                )
            return fn_type.result

        if isinstance(expr, EFun):
            self._check_wellformed(expr.param_type)
            inner_locals = dict(locals_)
            inner_locals[expr.param] = expr.param_type
            return TArrow(expr.param_type, self.infer(expr.body, inner_locals))

        if isinstance(expr, ELet):
            value_type = self.infer(expr.value, locals_)
            inner_locals = dict(locals_)
            inner_locals[expr.name] = value_type
            return self.infer(expr.body, inner_locals)

        if isinstance(expr, EMatch):
            return self._infer_match(expr, locals_)

        raise TypeError_(f"unknown expression node: {expr!r}")

    def _infer_match(self, expr: EMatch, locals_: Dict[str, Type]) -> Type:
        scrutinee_type = self.infer(expr.scrutinee, locals_)
        result_type: Optional[Type] = None
        for branch in expr.branches:
            bindings = self._check_pattern(branch.pattern, scrutinee_type)
            inner_locals = dict(locals_)
            inner_locals.update(bindings)
            branch_type = self.infer(branch.body, inner_locals)
            if result_type is None:
                result_type = branch_type
            elif branch_type != result_type:
                raise TypeError_(
                    f"match branches disagree: {result_type} versus {branch_type}"
                )
        if result_type is None:
            raise TypeError_("match expression with no branches")
        return result_type

    def _check_pattern(self, pattern: Pattern, ty: Type) -> Dict[str, Type]:
        if isinstance(pattern, PWild):
            return {}
        if isinstance(pattern, PVar):
            return {pattern.name: ty}
        if isinstance(pattern, PCtor):
            info = self.env.ctor_info(pattern.ctor)
            if not isinstance(ty, TData) or ty.name != info.datatype:
                raise TypeError_(
                    f"pattern constructor {pattern.ctor} of type {info.datatype} "
                    f"does not match scrutinee type {ty}"
                )
            if info.payload is None:
                if pattern.payload is not None:
                    raise TypeError_(f"constructor pattern {pattern.ctor} takes no payload")
                return {}
            if pattern.payload is None:
                raise TypeError_(f"constructor pattern {pattern.ctor} requires a payload")
            return self._check_pattern(pattern.payload, info.payload)
        if isinstance(pattern, PTuple):
            if not isinstance(ty, TProd) or len(ty.items) != len(pattern.items):
                raise TypeError_(f"tuple pattern does not match type {ty}")
            bindings: Dict[str, Type] = {}
            for sub, sub_type in zip(pattern.items, ty.items):
                sub_bindings = self._check_pattern(sub, sub_type)
                overlap = set(bindings) & set(sub_bindings)
                if overlap:
                    raise TypeError_(f"duplicate pattern variables: {sorted(overlap)}")
                bindings.update(sub_bindings)
            return bindings
        raise TypeError_(f"unknown pattern node: {pattern!r}")
