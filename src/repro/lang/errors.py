"""Exception hierarchy for the object language.

Every failure raised by the lexer, parser, type checker, or evaluator derives
from :class:`LangError`, so callers that treat the object language as a black
box (the synthesizer, the verifier, the Hanoi loop) can catch a single type.
"""

from __future__ import annotations


class LangError(Exception):
    """Base class for all object-language errors."""


class LexError(LangError):
    """Raised when the lexer encounters an invalid character or token."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(LangError):
    """Raised when the parser encounters an unexpected token."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        if line:
            super().__init__(f"{message} (line {line}, column {column})")
        else:
            super().__init__(message)
        self.line = line
        self.column = column


class TypeError_(LangError):
    """Raised when an expression or declaration fails to type check.

    Named with a trailing underscore to avoid shadowing the Python builtin.

    ``line`` is the source line of the declaration the error was raised in,
    when known (the checker anchors errors to the enclosing declaration's
    position recorded by the parser).  ``bare_message`` is the message
    without the position suffix, for callers such as the ``.hanoi`` loader
    that render positions themselves.
    """

    def __init__(self, message: str, line=None):
        self.bare_message = message
        self.line = line
        if line is not None:
            super().__init__(f"{message} (line {line})")
        else:
            super().__init__(message)

    def with_line(self, line) -> "TypeError_":
        """A copy anchored at ``line``; returns ``self`` if already anchored."""
        if self.line is not None or line is None:
            return self
        return TypeError_(self.bare_message, line)


class EvalError(LangError):
    """Raised when evaluation gets stuck (ill-typed application, no match...)."""


class FuelExhausted(EvalError):
    """Raised when evaluation exceeds the configured step budget.

    The step budget guards against accidental non-termination in synthesized
    candidates or user-provided module code; the Hanoi loop treats a fuel
    failure on a candidate invariant as the candidate being rejected.
    """


class MatchFailure(EvalError):
    """Raised when a ``match`` expression has no branch covering the value."""
