"""Lexer for the ML-like surface syntax of the object language.

Token kinds:

* ``LIDENT`` - lowercase identifiers (variables, function names, type names);
* ``UIDENT`` - capitalized identifiers (data constructors);
* ``INT`` - non-negative integer literals (sugar for Peano naturals);
* ``STRING`` - double-quoted string literals (used only by the ``.hanoi``
  benchmark-definition directives, never by object-language expressions);
* ``KEYWORD`` - ``type of let rec in match with fun if then else``;
* punctuation - ``( ) , | * -> = : _``.

Comments use OCaml syntax ``(* ... *)`` and may nest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .errors import LexError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    ["type", "of", "let", "rec", "in", "match", "with", "fun", "if", "then", "else"]
)

_PUNCTUATION = {
    "->": "ARROW",
    "(": "LPAREN",
    ")": "RPAREN",
    ",": "COMMA",
    "|": "BAR",
    "*": "STAR",
    "=": "EQUAL",
    ":": "COLON",
    "_": "UNDERSCORE",
}

#: Escape sequences accepted inside string literals.
_STRING_ESCAPES = {
    "\\": "\\",
    '"': '"',
    "n": "\n",
    "r": "\r",
    "t": "\t",
}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    kind: str
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text})"


def tokenize(source: str) -> List[Token]:
    """Tokenize a complete source string, raising :class:`LexError` on failure."""
    tokens: List[Token] = []
    index = 0
    line = 1
    column = 1
    length = len(source)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and source[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        ch = source[index]

        if ch in " \t\r\n":
            advance(1)
            continue

        if source.startswith("(*", index):
            depth = 1
            start_line, start_col = line, column
            advance(2)
            while depth > 0:
                if index >= length:
                    raise LexError("unterminated comment", start_line, start_col)
                if source.startswith("(*", index):
                    depth += 1
                    advance(2)
                elif source.startswith("*)", index):
                    depth -= 1
                    advance(2)
                else:
                    advance(1)
            continue

        if ch == '"':
            start_line, start_col = line, column
            advance(1)
            chars: List[str] = []
            while True:
                if index >= length or source[index] == "\n":
                    raise LexError("unterminated string literal", start_line, start_col)
                current = source[index]
                if current == '"':
                    advance(1)
                    break
                if current == "\\":
                    if index + 1 >= length or source[index + 1] == "\n":
                        raise LexError("unterminated string literal", start_line, start_col)
                    escape = source[index + 1]
                    if escape not in _STRING_ESCAPES:
                        raise LexError(f"unknown string escape \\{escape}", line, column)
                    chars.append(_STRING_ESCAPES[escape])
                    advance(2)
                    continue
                chars.append(current)
                advance(1)
            tokens.append(Token("STRING", "".join(chars), start_line, start_col))
            continue

        if source.startswith("->", index):
            tokens.append(Token("ARROW", "->", line, column))
            advance(2)
            continue

        if ch in _PUNCTUATION:
            # ``_`` is only an underscore token when not part of an identifier.
            if ch == "_" and index + 1 < length and (source[index + 1].isalnum() or source[index + 1] == "_"):
                pass  # fall through to identifier handling below
            else:
                tokens.append(Token(_PUNCTUATION[ch], ch, line, column))
                advance(1)
                continue

        if ch.isdigit():
            start = index
            start_line, start_col = line, column
            while index < length and source[index].isdigit():
                advance(1)
            tokens.append(Token("INT", source[start:index], start_line, start_col))
            continue

        if ch.isalpha() or ch == "_":
            start = index
            start_line, start_col = line, column
            while index < length and (source[index].isalnum() or source[index] in "_'"):
                advance(1)
            text = source[start:index]
            if text in KEYWORDS:
                kind = "KEYWORD"
            elif text[0].isupper():
                kind = "UIDENT"
            else:
                kind = "LIDENT"
            tokens.append(Token(kind, text, start_line, start_col))
            continue

        raise LexError(f"unexpected character {ch!r}", line, column)

    tokens.append(Token("EOF", "", line, column))
    return tokens
