"""The standard prelude shared by every benchmark module.

Following the paper's implementation (Section 4.1): "Numbers are implemented
as a recursive data type, where a number is either 0 or the successor of a
number.  Each program includes a prelude that may contain data type
declarations and functions over those data types."

The prelude declares booleans, Peano naturals, natural options, a three-way
comparison type, and the arithmetic/comparison/boolean helpers the benchmark
modules and specifications use.  Benchmark modules declare their own
container types (lists, trees, tries, ...) on top of this prelude.
"""

from __future__ import annotations

PRELUDE_SOURCE = """
type bool = True | False

type nat = O | S of nat

type natoption = NoneN | SomeN of nat

type cmp = LT | EQ | GT

let notb (b : bool) : bool =
  match b with
  | True -> False
  | False -> True

let andb (a : bool) (b : bool) : bool =
  match a with
  | True -> b
  | False -> False

let orb (a : bool) (b : bool) : bool =
  match a with
  | True -> True
  | False -> b

let implb (a : bool) (b : bool) : bool =
  match a with
  | True -> b
  | False -> True

let rec nat_eq (a : nat) (b : nat) : bool =
  match a with
  | O -> (match b with | O -> True | S y -> False)
  | S x -> (match b with | O -> False | S y -> nat_eq x y)

let rec nat_leq (a : nat) (b : nat) : bool =
  match a with
  | O -> True
  | S x -> (match b with | O -> False | S y -> nat_leq x y)

let nat_lt (a : nat) (b : nat) : bool =
  nat_leq (S a) b

let nat_geq (a : nat) (b : nat) : bool =
  nat_leq b a

let nat_gt (a : nat) (b : nat) : bool =
  nat_lt b a

let rec nat_compare (a : nat) (b : nat) : cmp =
  match a with
  | O -> (match b with | O -> EQ | S y -> LT)
  | S x -> (match b with | O -> GT | S y -> nat_compare x y)

let rec plus (a : nat) (b : nat) : nat =
  match a with
  | O -> b
  | S x -> S (plus x b)

let rec minus (a : nat) (b : nat) : nat =
  match b with
  | O -> a
  | S y -> (match a with | O -> O | S x -> minus x y)

let nat_max (a : nat) (b : nat) : nat =
  if nat_leq a b then b else a

let nat_min (a : nat) (b : nat) : nat =
  if nat_leq a b then a else b

let succ (a : nat) : nat = S a

let pred (a : nat) : nat =
  match a with
  | O -> O
  | S x -> x

let is_zero (a : nat) : bool =
  match a with
  | O -> True
  | S x -> False

let is_someN (o : natoption) : bool =
  match o with
  | NoneN -> False
  | SomeN x -> True

let optionN_eq (a : natoption) (b : natoption) : bool =
  match a with
  | NoneN -> (match b with | NoneN -> True | SomeN y -> False)
  | SomeN x -> (match b with | NoneN -> False | SomeN y -> nat_eq x y)
"""

#: Names of prelude functions that synthesizers may use as components by
#: default.  Benchmarks add their own module operations and helpers on top.
DEFAULT_SYNTHESIS_COMPONENTS = (
    "notb",
    "andb",
    "orb",
    "nat_eq",
    "nat_leq",
    "nat_lt",
)
