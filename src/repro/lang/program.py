"""Programs: parsed, type-checked, and evaluated collections of declarations.

A :class:`Program` bundles together

* the :class:`~repro.lang.typecheck.TypeEnvironment` produced by checking the
  declarations,
* the global runtime environment mapping every top-level name to its value,
* an :class:`~repro.lang.eval.Evaluator` for running code against that
  environment.

Benchmark modules are built by parsing the shared prelude followed by the
benchmark's own source; the synthesizer and the Hanoi loop then interact with
the resulting :class:`Program` (looking up operation closures, evaluating
candidate invariants, enumerating values of declared types).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .ast import EFun, Expr, FunDecl, TypeDecl, expr_size
from .errors import TypeError_
from .eval import DEFAULT_FUEL, EvalBudget, Evaluator
from .parser import parse_program
from .prelude import PRELUDE_SOURCE
from .typecheck import TypeChecker, TypeEnvironment
from .types import Type
from .values import Value, VClosure

__all__ = ["Program"]


class Program:
    """A type-checked, evaluated program (prelude plus module source)."""

    def __init__(self, fuel: int = DEFAULT_FUEL):
        self.types = TypeEnvironment()
        self.evaluator = Evaluator({}, fuel=fuel)
        self.declarations: List[object] = []
        self._checker = TypeChecker(self.types)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_source(cls, source: str, include_prelude: bool = True,
                    fuel: int = DEFAULT_FUEL) -> "Program":
        """Parse, check, and load a program.

        When ``include_prelude`` is true (the default) the shared prelude is
        loaded first, exactly as every benchmark program in the paper includes
        the standard prelude.
        """
        program = cls(fuel=fuel)
        if include_prelude:
            program.extend(PRELUDE_SOURCE)
        program.extend(source)
        return program

    def extend(self, source: str) -> None:
        """Parse and load additional declarations on top of this program."""
        self.extend_declarations(parse_program(source))

    def extend_declarations(self, decls: List[object]) -> None:
        """Type check and install already-parsed declarations.

        This is the parse-free half of :meth:`extend`; the ``.hanoi`` spec-file
        loader uses it to check declarations one at a time so type errors can
        be anchored to the declaration's source line.
        """
        self._checker.check_declarations(decls)
        for decl in decls:
            self.declarations.append(decl)
            if isinstance(decl, FunDecl):
                self.evaluator.globals[decl.name] = self._compile_fun(decl)

    def define_function(self, decl: FunDecl) -> Value:
        """Type check and install a programmatically-built function declaration."""
        self._checker.check_declarations([decl])
        self.declarations.append(decl)
        value = self._compile_fun(decl)
        self.evaluator.globals[decl.name] = value
        return value

    def _compile_fun(self, decl: FunDecl) -> Value:
        """Turn a top-level definition into a runtime value.

        Definitions with parameters become curried closures; recursion is
        resolved through the global environment (the evaluator falls back to
        globals for unbound names), so mutually recursive top-level functions
        work without extra machinery.
        """
        if not decl.params:
            return self.evaluator.eval(decl.body)
        body: Expr = decl.body
        for name, ty in reversed(decl.params[1:]):
            body = EFun(name, ty, body)
        first_name, first_type = decl.params[0]
        return VClosure(first_name, first_type, body, {})

    # -- queries ------------------------------------------------------------------

    def global_value(self, name: str) -> Value:
        try:
            return self.evaluator.globals[name]
        except KeyError:
            raise TypeError_(f"unknown global: {name}") from None

    def global_type(self, name: str) -> Type:
        try:
            return self.types.globals[name]
        except KeyError:
            raise TypeError_(f"unknown global: {name}") from None

    def has_global(self, name: str) -> bool:
        return name in self.evaluator.globals

    def datatype(self, name: str) -> TypeDecl:
        try:
            return self.types.datatypes[name]
        except KeyError:
            raise TypeError_(f"unknown data type: {name}") from None

    # -- execution -------------------------------------------------------------------

    def call(self, name: str, *args: Value, fuel: Optional[int] = None) -> Value:
        """Apply a top-level function to argument values."""
        fn = self.global_value(name)
        budget = EvalBudget(fuel if fuel is not None else self.evaluator.default_fuel)
        return self.evaluator.apply(fn, *args, budget=budget)

    def apply(self, fn: Value, *args: Value, fuel: Optional[int] = None) -> Value:
        """Apply an arbitrary function value to argument values."""
        budget = EvalBudget(fuel if fuel is not None else self.evaluator.default_fuel)
        return self.evaluator.apply(fn, *args, budget=budget)

    def eval_expr(self, expr: Expr, env: Optional[Dict[str, Value]] = None,
                  fuel: Optional[int] = None) -> Value:
        """Evaluate an expression against the program's globals."""
        budget = EvalBudget(fuel if fuel is not None else self.evaluator.default_fuel)
        return self.evaluator.eval(expr, env, budget)

    # -- reporting ---------------------------------------------------------------------

    def function_size(self, name: str) -> int:
        """AST size of a top-level definition (body plus one node per parameter)."""
        for decl in self.declarations:
            if isinstance(decl, FunDecl) and decl.name == name:
                return expr_size(decl.body) + len(decl.params) + 1
        raise TypeError_(f"unknown global: {name}")
