"""Recursive-descent parser for the object language.

Grammar (informal)::

    program   := decl*
    decl      := typedecl | letdecl
    typedecl  := 'type' LIDENT '=' ['|'] ctor ('|' ctor)*
    ctor      := UIDENT ['of' type]
    letdecl   := 'let' ['rec'] LIDENT param* [':' type] '=' expr
    param     := '(' LIDENT ':' type ')'

    type      := prodtype ['->' type]
    prodtype  := atomtype ('*' atomtype)*
    atomtype  := LIDENT | '(' type ')'

    expr      := 'fun' param '->' expr
               | 'let' LIDENT '=' expr 'in' expr
               | 'match' expr 'with' ['|'] branch ('|' branch)*
               | 'if' expr 'then' expr 'else' expr
               | appexpr
    branch    := pattern '->' expr
    appexpr   := atom atom*            (constructor heads take one payload atom)
    atom      := LIDENT | UIDENT | INT | '(' expr (',' expr)* ')'

    pattern   := patatom | UIDENT [patatom]
    patatom   := LIDENT | '_' | UIDENT | '(' pattern (',' pattern)* ')'

Notes
-----
* ``if c then a else b`` desugars to ``match c with True -> a | False -> b``.
* Integer literals desugar to Peano naturals built from ``S``/``O``.
* As in OCaml, a ``match`` swallows the following ``|`` branches; nested
  matches therefore need parentheses around the inner match when the outer
  one has further branches.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast import (
    Branch,
    CtorDecl,
    ECtor,
    EFun,
    ELet,
    EMatch,
    ETuple,
    EVar,
    EApp,
    Expr,
    FunDecl,
    PCtor,
    PTuple,
    PVar,
    PWild,
    Pattern,
    TypeDecl,
)
from .errors import ParseError
from .lexer import Token, tokenize
from .types import TArrow, TData, TProd, Type

__all__ = ["Parser", "parse_program", "parse_expression", "parse_type"]


class Parser:
    """A recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token utilities ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._peek()
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def _match(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if not self._check(kind, text):
            expected = text or kind
            raise ParseError(
                f"expected {expected!r} but found {token.text!r}", token.line, token.column
            )
        return self._advance()

    # -- programs and declarations ------------------------------------------

    def parse_program(self) -> List[object]:
        decls: List[object] = []
        while not self._check("EOF"):
            decls.append(self.parse_decl())
        return decls

    def parse_decl(self) -> object:
        if self._check("KEYWORD", "type"):
            return self._parse_type_decl()
        if self._check("KEYWORD", "let"):
            return self._parse_let_decl()
        token = self._peek()
        raise ParseError(
            f"expected a declaration but found {token.text!r}", token.line, token.column
        )

    def _parse_type_decl(self) -> TypeDecl:
        keyword = self._expect("KEYWORD", "type")
        name = self._expect("LIDENT").text
        self._expect("EQUAL")
        self._match("BAR")
        ctors = [self._parse_ctor_decl()]
        while self._match("BAR"):
            ctors.append(self._parse_ctor_decl())
        return TypeDecl(name, tuple(ctors), line=keyword.line)

    def _parse_ctor_decl(self) -> CtorDecl:
        name = self._expect("UIDENT").text
        payload: Optional[Type] = None
        if self._match("KEYWORD", "of"):
            payload = self.parse_type()
        return CtorDecl(name, payload)

    def _parse_let_decl(self) -> FunDecl:
        keyword = self._expect("KEYWORD", "let")
        recursive = self._match("KEYWORD", "rec") is not None
        name = self._expect("LIDENT").text
        params: List[Tuple[str, Type]] = []
        while self._check("LPAREN") and self._peek(1).kind == "LIDENT" and self._peek(2).kind == "COLON":
            self._expect("LPAREN")
            param_name = self._expect("LIDENT").text
            self._expect("COLON")
            param_type = self.parse_type()
            self._expect("RPAREN")
            params.append((param_name, param_type))
        return_type: Optional[Type] = None
        if self._match("COLON"):
            return_type = self.parse_type()
        self._expect("EQUAL")
        body = self.parse_expr()
        return FunDecl(name, tuple(params), return_type, body, recursive, line=keyword.line)

    # -- types ---------------------------------------------------------------

    def parse_type(self) -> Type:
        left = self._parse_prod_type()
        if self._match("ARROW"):
            return TArrow(left, self.parse_type())
        return left

    def _parse_prod_type(self) -> Type:
        items = [self._parse_atom_type()]
        while self._match("STAR"):
            items.append(self._parse_atom_type())
        if len(items) == 1:
            return items[0]
        return TProd(tuple(items))

    def _parse_atom_type(self) -> Type:
        if self._check("LIDENT"):
            return TData(self._advance().text)
        if self._match("LPAREN"):
            inner = self.parse_type()
            self._expect("RPAREN")
            return inner
        token = self._peek()
        raise ParseError(f"expected a type but found {token.text!r}", token.line, token.column)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> Expr:
        if self._check("KEYWORD", "fun"):
            return self._parse_fun()
        if self._check("KEYWORD", "let"):
            return self._parse_let_in()
        if self._check("KEYWORD", "match"):
            return self._parse_match()
        if self._check("KEYWORD", "if"):
            return self._parse_if()
        return self._parse_app()

    def _parse_fun(self) -> Expr:
        self._expect("KEYWORD", "fun")
        self._expect("LPAREN")
        name = self._expect("LIDENT").text
        self._expect("COLON")
        param_type = self.parse_type()
        self._expect("RPAREN")
        self._expect("ARROW")
        body = self.parse_expr()
        return EFun(name, param_type, body)

    def _parse_let_in(self) -> Expr:
        self._expect("KEYWORD", "let")
        name = self._expect("LIDENT").text
        self._expect("EQUAL")
        value = self.parse_expr()
        self._expect("KEYWORD", "in")
        body = self.parse_expr()
        return ELet(name, value, body)

    def _parse_match(self) -> Expr:
        keyword = self._expect("KEYWORD", "match")
        scrutinee = self.parse_expr()
        self._expect("KEYWORD", "with")
        self._match("BAR")
        branches = [self._parse_branch()]
        while self._match("BAR"):
            branches.append(self._parse_branch())
        return EMatch(scrutinee, tuple(branches), line=keyword.line)

    def _parse_branch(self) -> Branch:
        pattern = self.parse_pattern()
        self._expect("ARROW")
        body = self.parse_expr()
        return Branch(pattern, body)

    def _parse_if(self) -> Expr:
        keyword = self._expect("KEYWORD", "if")
        condition = self.parse_expr()
        self._expect("KEYWORD", "then")
        then_branch = self.parse_expr()
        self._expect("KEYWORD", "else")
        else_branch = self.parse_expr()
        return EMatch(
            condition,
            (
                Branch(PCtor("True"), then_branch),
                Branch(PCtor("False"), else_branch),
            ),
            line=keyword.line,
        )

    def _parse_app(self) -> Expr:
        atoms = [self._parse_atom()]
        while self._starts_atom():
            atoms.append(self._parse_atom())
        head = atoms[0]
        rest = atoms[1:]
        # A capitalized head is a constructor and takes at most one payload.
        if isinstance(head, ECtor) and head.payload is None and rest:
            if len(rest) > 1:
                token = self._peek()
                raise ParseError(
                    f"constructor {head.ctor} applied to more than one argument; "
                    "wrap the payload in parentheses",
                    token.line,
                    token.column,
                )
            return ECtor(head.ctor, rest[0])
        result = head
        for arg in rest:
            result = EApp(result, arg)
        return result

    def _starts_atom(self) -> bool:
        return self._peek().kind in ("LIDENT", "UIDENT", "INT", "LPAREN")

    def _parse_atom(self) -> Expr:
        token = self._peek()
        if token.kind == "LIDENT":
            self._advance()
            return EVar(token.text)
        if token.kind == "UIDENT":
            self._advance()
            return ECtor(token.text)
        if token.kind == "INT":
            self._advance()
            return _nat_literal(int(token.text))
        if token.kind == "LPAREN":
            self._advance()
            items = [self.parse_expr()]
            while self._match("COMMA"):
                items.append(self.parse_expr())
            self._expect("RPAREN")
            if len(items) == 1:
                return items[0]
            return ETuple(tuple(items))
        raise ParseError(
            f"expected an expression but found {token.text!r}", token.line, token.column
        )

    # -- patterns --------------------------------------------------------------

    def parse_pattern(self) -> Pattern:
        token = self._peek()
        if token.kind == "UIDENT":
            self._advance()
            payload: Optional[Pattern] = None
            if self._peek().kind in ("LIDENT", "UIDENT", "UNDERSCORE", "LPAREN"):
                payload = self._parse_pattern_atom()
            return PCtor(token.text, payload)
        return self._parse_pattern_atom()

    def _parse_pattern_atom(self) -> Pattern:
        token = self._peek()
        if token.kind == "LIDENT":
            self._advance()
            return PVar(token.text)
        if token.kind == "UNDERSCORE":
            self._advance()
            return PWild()
        if token.kind == "UIDENT":
            self._advance()
            return PCtor(token.text)
        if token.kind == "LPAREN":
            self._advance()
            items = [self.parse_pattern()]
            while self._match("COMMA"):
                items.append(self.parse_pattern())
            self._expect("RPAREN")
            if len(items) == 1:
                return items[0]
            return PTuple(tuple(items))
        raise ParseError(
            f"expected a pattern but found {token.text!r}", token.line, token.column
        )


def _nat_literal(n: int) -> Expr:
    """Expand an integer literal into a Peano natural expression."""
    expr: Expr = ECtor("O")
    for _ in range(n):
        expr = ECtor("S", expr)
    return expr


def parse_program(source: str) -> List[object]:
    """Parse a complete program source into a list of declarations."""
    return Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> Expr:
    """Parse a single expression (useful for tests and the REPL-style API)."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expr()
    token = parser._peek()
    if token.kind != "EOF":
        raise ParseError(f"trailing input at {token.text!r}", token.line, token.column)
    return expr


def parse_type(source: str) -> Type:
    """Parse a single type expression."""
    parser = Parser(tokenize(source))
    ty = parser.parse_type()
    token = parser._peek()
    if token.kind != "EOF":
        raise ParseError(f"trailing input at {token.text!r}", token.line, token.column)
    return ty
