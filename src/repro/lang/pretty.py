"""Human-readable pretty printing of declarations, expressions, and values.

The dataclass ``__str__`` methods already render compact single-line forms;
this module adds the multi-line OCaml-like rendering used by the examples,
the experiment reports, and EXPERIMENTS.md (for example when printing an
inferred invariant the way the paper presents them).
"""

from __future__ import annotations

from .ast import (
    ECtor,
    EFun,
    ELet,
    EMatch,
    EProj,
    ETuple,
    EVar,
    EApp,
    Expr,
    FunDecl,
    TypeDecl,
)
from .types import TArrow, TProd, Type

__all__ = ["pretty_expr", "pretty_fun_decl", "pretty_type_decl", "pretty_type"]

_INDENT = "  "


def pretty_type(ty: Type) -> str:
    """Render a type with minimal parentheses."""
    if isinstance(ty, TArrow):
        left = pretty_type(ty.arg)
        if isinstance(ty.arg, TArrow):
            left = f"({left})"
        return f"{left} -> {pretty_type(ty.result)}"
    if isinstance(ty, TProd):
        parts = []
        for item in ty.items:
            rendered = pretty_type(item)
            if isinstance(item, (TArrow, TProd)):
                rendered = f"({rendered})"
            parts.append(rendered)
        return " * ".join(parts)
    return str(ty)


def pretty_expr(expr: Expr, indent: int = 0) -> str:
    """Render an expression over multiple lines with indentation."""
    pad = _INDENT * indent

    if isinstance(expr, EMatch):
        lines = [f"match {_inline(expr.scrutinee)} with"]
        for branch in expr.branches:
            body = pretty_expr(branch.body, indent + 1)
            if "\n" in body:
                lines.append(f"{pad}| {branch.pattern} ->\n{_INDENT * (indent + 1)}{body.lstrip()}")
            else:
                lines.append(f"{pad}| {branch.pattern} -> {body.strip()}")
        return "\n".join(lines)

    if isinstance(expr, EFun):
        body = pretty_expr(expr.body, indent + 1)
        if "\n" in body:
            return f"fun ({expr.param} : {pretty_type(expr.param_type)}) ->\n{_INDENT * (indent + 1)}{body.lstrip()}"
        return f"fun ({expr.param} : {pretty_type(expr.param_type)}) -> {body.strip()}"

    if isinstance(expr, ELet):
        return (
            f"let {expr.name} = {_inline(expr.value)} in\n"
            f"{pad}{pretty_expr(expr.body, indent).lstrip()}"
        )

    return _inline(expr)


def _inline(expr: Expr) -> str:
    """Render an expression on one line, with lighter parenthesisation than __str__."""
    if isinstance(expr, EVar):
        return expr.name
    if isinstance(expr, ECtor):
        if expr.payload is None:
            return expr.ctor
        return f"{expr.ctor} {_atom(expr.payload)}"
    if isinstance(expr, ETuple):
        return "(" + ", ".join(_inline(e) for e in expr.items) + ")"
    if isinstance(expr, EProj):
        return f"proj {expr.index} {_atom(expr.expr)}"
    if isinstance(expr, EApp):
        head, args = _uncurry(expr)
        return " ".join([_atom(head)] + [_atom(a) for a in args])
    if isinstance(expr, (EFun, ELet, EMatch)):
        return "(" + " ".join(pretty_expr(expr).split()) + ")"
    return str(expr)


def _atom(expr: Expr) -> str:
    rendered = _inline(expr)
    if isinstance(expr, (EVar,)) or (isinstance(expr, ECtor) and expr.payload is None):
        return rendered
    if rendered.startswith("("):
        return rendered
    return f"({rendered})"


def _uncurry(expr: EApp):
    args = []
    head: Expr = expr
    while isinstance(head, EApp):
        args.append(head.arg)
        head = head.fn
    return head, list(reversed(args))


def pretty_fun_decl(decl: FunDecl) -> str:
    """Render a top-level definition the way the paper prints invariants."""
    keyword = "let rec" if decl.recursive else "let"
    params = " ".join(f"({n} : {pretty_type(t)})" for n, t in decl.params)
    annot = f" : {pretty_type(decl.return_type)}" if decl.return_type is not None else ""
    header = f"{keyword} {decl.name}" + (f" {params}" if params else "") + f"{annot} ="
    body = pretty_expr(decl.body, 1)
    if "\n" in body:
        return f"{header}\n{_INDENT}{body.lstrip()}"
    return f"{header} {body.strip()}"


def pretty_type_decl(decl: TypeDecl) -> str:
    """Render a data type declaration."""
    ctors = []
    for ctor in decl.ctors:
        if ctor.payload is None:
            ctors.append(ctor.name)
        else:
            ctors.append(f"{ctor.name} of {pretty_type(ctor.payload)}")
    return f"type {decl.name} = " + " | ".join(ctors)
