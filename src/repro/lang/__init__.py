"""The object language in which benchmark modules, specifications, and
inferred invariants are written.

This package implements the "pure, simply-typed, call-by-value functional
language with recursive data types" of Section 4.1 of the paper: abstract
syntax, an ML-like surface syntax with lexer and parser, a type checker, a
fuel-bounded evaluator, a pretty printer, and the standard prelude (booleans,
Peano naturals, options, comparisons).
"""

from .ast import (
    Branch,
    CtorDecl,
    ECtor,
    EFun,
    ELet,
    EMatch,
    EProj,
    ETuple,
    EVar,
    EApp,
    Expr,
    FunDecl,
    PCtor,
    PTuple,
    PVar,
    PWild,
    Pattern,
    TypeDecl,
    app,
    expr_size,
    free_vars,
)
from .errors import (
    EvalError,
    FuelExhausted,
    LangError,
    LexError,
    MatchFailure,
    ParseError,
    TypeError_,
)
from .eval import EvalBudget, Evaluator, match_pattern
from .lexer import Token, tokenize
from .parser import parse_expression, parse_program, parse_type
from .pretty import pretty_expr, pretty_fun_decl, pretty_type, pretty_type_decl
from .prelude import DEFAULT_SYNTHESIS_COMPONENTS, PRELUDE_SOURCE
from .program import Program
from .typecheck import CtorInfo, TypeChecker, TypeEnvironment
from .types import (
    TAbstract,
    TArrow,
    TData,
    TProd,
    Type,
    arrow,
    arrow_args,
    arrow_result,
    mentions_abstract,
    prod,
    substitute_abstract,
)
from .values import (
    Value,
    VClosure,
    VCtor,
    VNative,
    VTuple,
    bool_of_value,
    int_of_nat,
    is_first_order,
    list_of_value,
    nat_of_int,
    v_bool,
    v_list,
    value_size,
)

__all__ = [name for name in dir() if not name.startswith("_")]
