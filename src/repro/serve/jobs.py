"""Job queue and worker pool for the inference service.

The scheduler runs submitted modules through the exact experiment pipeline
sweeps use: every job becomes an
:class:`~repro.experiments.runner.ExperimentTask`, executes in its own
worker process via the :class:`~repro.experiments.parallel.WorkerHandle`
lifecycle (same payload protocol, same hard-timeout and dead-worker
semantics as the :class:`~repro.experiments.parallel.ParallelRunner`), and
lands as an ``InferenceResult.to_dict()`` row in an append-only
:class:`~repro.experiments.store.ResultStore`.

Three service-specific behaviours sit on top:

* **Dedup against the store.**  A job's resume key is the store's own
  ``(benchmark, mode, pack, variant)`` scheme with ``pack="serve"`` and
  ``variant=`` the module's canonical content hash, so re-submitting an
  identical (even just alpha-equivalent) module answers from the store
  without running anything - while a same-named module with *different*
  content gets a different variant and runs.  (``force=True`` bypasses
  the check; the row it produces supersedes the old one.)

* **Retries on worker crash.**  A worker that dies without delivering a
  payload is re-queued up to ``max_retries`` times; a worker that exceeds
  its hard budget is killed and recorded as a timeout (retrying it would
  time out again).

* **Event streaming.**  Each worker streams its structured trace records
  over a per-job queue (the parallel runner's ``QueueSink`` transport); the
  scheduler drains them into a per-job
  :class:`~repro.obs.sinks.RingBufferSink` that the HTTP layer long-polls.

State lives under one directory: ``results.jsonl`` (the store),
``modules/`` (one pack directory per distinct module content, which is what
workers register), and - when persistence is enabled - ``cache/`` (the
:mod:`repro.serve.diskcache` store threaded into every job's config).
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.canon import canonical_hash
from ..core.config import HanoiConfig
from ..core.result import InferenceResult, Status
from ..experiments.parallel import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_TIMEOUT_GRACE,
    WorkerHandle,
    _default_context,
    _result_payload,
)
from ..experiments.runner import MODES, ExperimentTask
from ..experiments.store import ResultStore
from ..obs.sinks import RingBufferSink
from ..spec.errors import SpecFileError
from ..spec.loader import load_module_text
from ..suite.registry import all_benchmark_names

__all__ = ["Job", "JobScheduler", "SERVICE_PACK_TAG", "JOB_STATES"]

#: The ``pack`` tag stamped on every service result row; part of the dedup
#: key, so service rows never collide with built-in or pack sweep rows.
SERVICE_PACK_TAG = "serve"

#: queued -> running -> done | failed (failed = no result row was produced;
#: an inference that *ran* and reported timeout/failure still ends ``done``
#: with that status in its row).
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One submission: a module, a mode, and its lifecycle bookkeeping."""

    id: str
    benchmark: str
    mode: str
    content_key: str
    task: ExperimentTask
    state: str = "queued"
    attempts: int = 0
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    message: str = ""
    #: True when the result was answered from the store without running.
    deduplicated: bool = False
    #: The ``InferenceResult.to_dict()`` row, once the job is done.
    result: Optional[dict] = None
    events: RingBufferSink = field(default_factory=RingBufferSink)

    def to_dict(self) -> dict:
        """The JSON shape of the ``/v1/jobs`` endpoints (no result row)."""
        return {
            "id": self.id,
            "benchmark": self.benchmark,
            "mode": self.mode,
            "content_key": self.content_key,
            "state": self.state,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "message": self.message,
            "deduplicated": self.deduplicated,
            "status": (self.result or {}).get("status"),
        }


class JobScheduler:
    """A long-lived worker pool fed by :meth:`submit`.

    Thread model: HTTP handler threads call :meth:`submit` / the read
    accessors; one background scheduler thread owns worker processes and
    drives the queue.  One lock guards all job state.
    """

    def __init__(self, state_dir: str, config: Optional[HanoiConfig] = None,
                 jobs: int = 2, max_retries: int = 1,
                 cache_dir: Optional[str] = None,
                 poll_interval: float = 0.05,
                 timeout_grace: float = DEFAULT_TIMEOUT_GRACE,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 mp_context=None) -> None:
        self.state_dir = os.path.abspath(state_dir)
        self.modules_dir = os.path.join(self.state_dir, "modules")
        os.makedirs(self.modules_dir, exist_ok=True)
        base = config or HanoiConfig()
        if cache_dir is None:
            cache_dir = os.path.join(self.state_dir, "cache")
        #: The per-job config: the persistent cache tier defaults to living
        #: inside the state directory.  Pass ``cache_dir=""`` to disable
        #: persistence entirely.
        self.config = base.with_cache_dir(cache_dir or None)
        self.jobs = max(1, jobs)
        self.max_retries = max(0, max_retries)
        self.poll_interval = poll_interval
        self.timeout_grace = timeout_grace
        self.heartbeat_interval = heartbeat_interval
        self.store = ResultStore(os.path.join(self.state_dir, "results.jsonl"),
                                 pack=SERVICE_PACK_TAG)
        self._ctx = mp_context if mp_context is not None else _default_context()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._queue: List[str] = []  # job ids, FIFO
        self._live: Dict[str, tuple] = {}  # job id -> (WorkerHandle, events queue)
        self._stopping = False
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="repro-serve-scheduler")
        self._thread.start()

    # -- submission ---------------------------------------------------------

    def submit(self, text: str, mode: str = "hanoi",
               force: bool = False) -> Job:
        """Validate, dedup, and enqueue one ``.hanoi`` module submission.

        Raises :class:`~repro.spec.errors.SpecFileError` on malformed input,
        an unknown mode, or a declared name that collides with a registry
        benchmark (workers could not register the module's pack).
        """
        if mode not in MODES:
            raise SpecFileError(
                f"unknown mode {mode!r} (expected one of {', '.join(sorted(MODES))})",
                "<submission>")
        definition = load_module_text(text)
        if definition.name in all_benchmark_names():
            raise SpecFileError(
                f"declared name {definition.name!r} collides with a "
                "registered benchmark; rename the module", "<submission>")
        content_key = canonical_hash(definition)
        pack_dir = self._materialize(text, content_key)
        task = ExperimentTask(
            benchmark=definition.name,
            mode=mode,
            config=self.config,
            pack=pack_dir,
            pack_name=SERVICE_PACK_TAG,
            variant=content_key,
        )
        job = Job(
            id=uuid.uuid4().hex[:12],
            benchmark=definition.name,
            mode=mode,
            content_key=content_key,
            task=task,
        )
        stored = None if force else self._stored_result(task)
        with self._lock:
            self._jobs[job.id] = job
            if stored is not None:
                job.state = "done"
                job.deduplicated = True
                job.finished_at = time.time()
                job.message = "answered from the result store"
                job.result = stored
                job.events.close()
            else:
                self._queue.append(job.id)
                self._wakeup.notify()
        return job

    def _materialize(self, text: str, content_key: str) -> str:
        """One pack directory per distinct module content.

        The directory name embeds the content key, so an edited module gets
        a fresh pack (and a worker registering it sees no name collision
        with other submissions' packs - each worker registers only its own).
        Alpha-equivalent re-submissions reuse the existing directory.
        """
        pack_dir = os.path.join(self.modules_dir, f"m-{content_key[:16]}")
        path = os.path.join(pack_dir, "module.hanoi")
        if not os.path.exists(path):
            os.makedirs(pack_dir, exist_ok=True)
            tmp = f"{path}.{uuid.uuid4().hex[:8]}.tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        return pack_dir

    def _stored_result(self, task: ExperimentTask) -> Optional[dict]:
        """The stored row matching the task's resume key, if any."""
        if task.resume_key not in self.store.completed_keys():
            return None
        for result in self.store.load():
            if (result.benchmark, result.mode, result.pack,
                    result.variant) == task.resume_key:
                return result.to_dict()
        return None

    # -- accessors ----------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_at)

    # -- scheduler loop -----------------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._lock:
                if self._stopping and not self._live:
                    return
                while (not self._stopping and self._queue
                       and len(self._live) < self.jobs):
                    job = self._jobs[self._queue.pop(0)]
                    self._start_job(job)
                live = dict(self._live)
            for job_id, (handle, events) in live.items():
                self._drain(job_id, events)
                self._poll(job_id, handle)
            time.sleep(self.poll_interval)

    def _start_job(self, job: Job) -> None:
        """Spawn a worker (caller holds the lock)."""
        events = self._ctx.Queue()
        handle = WorkerHandle.spawn(self._ctx, job.task, events,
                                    self.heartbeat_interval)
        job.state = "running"
        job.attempts += 1
        job.started_at = time.time()
        self._live[job.id] = (handle, events)

    def _drain(self, job_id: str, events) -> None:
        """Move queued worker records into the job's ring buffer."""
        job = self._jobs[job_id]
        while True:
            try:
                record = events.get_nowait()
            except Exception:  # Empty, or queue already closed
                return
            job.events.handle(record)

    def _budget(self, job: Job) -> Optional[float]:
        timeout = self.config.timeout_seconds
        if timeout is None:
            return None
        return timeout + self.timeout_grace

    def _poll(self, job_id: str, handle: WorkerHandle) -> None:
        job = self._jobs[job_id]
        payload = handle.poll_payload()
        if payload is not None:
            self._finish(job, handle, payload)
            return
        budget = self._budget(job)
        if budget is not None and handle.elapsed > budget:
            handle.terminate()
            payload = handle.poll_payload() or _result_payload(
                job.task, Status.TIMEOUT,
                f"killed by the pool after {handle.elapsed:.1f}s "
                f"(hard budget {budget:.1f}s)", handle.elapsed)
            self._finish(job, handle, payload)
            return
        if not handle.is_alive():
            payload = handle.poll_payload()
            if payload is not None:
                self._finish(job, handle, payload)
                return
            self._worker_died(job, handle)

    def _finish(self, job: Job, handle: WorkerHandle, payload: dict) -> None:
        result = InferenceResult.from_dict(payload)
        self.store.append(result)
        with self._lock:
            entry = self._live.pop(job.id, None)
            job.state = "done"
            job.finished_at = time.time()
            job.message = result.message
            # Re-read so the row carries the store's pack tag, exactly what
            # a later dedup lookup would return.
            row = result.to_dict()
            row.setdefault("pack", SERVICE_PACK_TAG)
            job.result = row
        handle.reap()
        if entry is not None:
            self._drain(job.id, entry[1])
        job.events.close()

    def _worker_died(self, job: Job, handle: WorkerHandle) -> None:
        with self._lock:
            entry = self._live.pop(job.id, None)
            if job.attempts <= self.max_retries:
                job.state = "queued"
                job.message = (f"worker died with exit code {handle.exitcode}; "
                               f"retry {job.attempts}/{self.max_retries}")
                self._queue.append(job.id)
            else:
                job.state = "failed"
                job.finished_at = time.time()
                job.message = (f"worker died with exit code {handle.exitcode} "
                               f"after {job.attempts} attempts")
        handle.reap()
        if entry is not None:
            self._drain(job.id, entry[1])
        if job.state == "failed":
            job.events.close()

    # -- shutdown -----------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting work, kill live workers, join the scheduler."""
        with self._lock:
            self._stopping = True
            self._queue.clear()
            for handle, _ in self._live.values():
                handle.terminate()
            self._wakeup.notify_all()
        self._thread.join(timeout=timeout)
        with self._lock:
            for job_id, (handle, _) in list(self._live.items()):
                handle.reap()
                self._live.pop(job_id, None)
            for job in self._jobs.values():
                if job.state in ("queued", "running"):
                    job.state = "failed"
                    job.message = job.message or "service shut down"
                    job.events.close()
