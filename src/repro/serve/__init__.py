"""Inference-as-a-service: persistent caching, job queue, HTTP API.

The service tier (docs/service.md) turns per-run inference into a long-lived
deployment shape:

* :mod:`repro.serve.diskcache` - a versioned, crash-tolerant,
  content-addressed disk store that persists the evaluation and synthesis
  caches across processes, keyed by per-declaration dependency hashes so an
  edited module warm-starts from everything the edit didn't invalidate;
* :mod:`repro.serve.jobs` - a job queue and worker pool over the
  experiment-runner task model, with retries and hard timeouts;
* :mod:`repro.serve.api` - a stdlib-only HTTP/JSON daemon (``repro serve``)
  plus the ``repro submit`` / ``repro jobs`` client entry points.

This package init stays import-light on purpose: the core loop imports
:mod:`repro.serve.diskcache` for the persistence binding, and must not drag
the HTTP layer in with it.
"""
