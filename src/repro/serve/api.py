"""Stdlib-only HTTP/JSON API for the inference service (``repro serve``).

Endpoints (all JSON; see docs/service.md for the full reference):

========================== ============================================
``GET  /v1/health``        liveness, job counts, disk-cache entry counts
``POST /v1/jobs``          submit ``{"module": text, "mode": ..., "force": ...}``
``GET  /v1/jobs``          list jobs (newest last)
``GET  /v1/jobs/<id>``     one job's lifecycle record
``GET  /v1/jobs/<id>/result``  the ``InferenceResult.to_dict()`` row (404
                           until the job is done)
``GET  /v1/jobs/<id>/events``  long-poll: ``?after=<cursor>&wait=<secs>``
``GET  /v1/jobs/<id>/stream``  the same records as Server-Sent Events
========================== ============================================

The daemon is deliberately boring: a ``ThreadingHTTPServer`` over the
:class:`~repro.serve.jobs.JobScheduler`, one thread per request, no
dependencies outside the standard library.  The client half of this module
(:func:`submit_module`, :func:`wait_for_job`, ...) is what ``repro submit``
and ``repro jobs`` call; it speaks plain ``urllib``.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.error import HTTPError
from urllib.parse import parse_qs, urlparse
from urllib.request import Request, urlopen

from ..spec.errors import SpecFileError
from .diskcache import DiskCacheStore
from .jobs import JobScheduler

__all__ = [
    "ServiceServer",
    "make_server",
    "ServiceError",
    "submit_module",
    "fetch_job",
    "fetch_jobs",
    "fetch_result",
    "fetch_events",
    "fetch_health",
    "wait_for_job",
]

#: Cap on a single long-poll's server-side wait, seconds.
MAX_LONG_POLL_WAIT = 30.0


class ServiceServer(ThreadingHTTPServer):
    """The daemon: an HTTP server owning one :class:`JobScheduler`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], scheduler: JobScheduler):
        super().__init__(address, _Handler)
        self.scheduler = scheduler

    def shutdown(self) -> None:  # pragma: no cover - exercised via CLI
        super().shutdown()
        self.scheduler.close()


def make_server(host: str, port: int, scheduler: JobScheduler) -> ServiceServer:
    return ServiceServer((host, port), scheduler)


class _Handler(BaseHTTPRequestHandler):
    server: ServiceServer

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the scheduler's event stream is the observable surface

    def _json(self, status: int, payload: object) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._json(status, {"error": message})

    def _job_or_404(self, job_id: str):
        job = self.server.scheduler.get(job_id)
        if job is None:
            self._error(404, f"no such job: {job_id}")
        return job

    # -- routes -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        try:
            if parts == ["v1", "health"]:
                return self._health()
            if parts == ["v1", "jobs"]:
                return self._json(200, {
                    "jobs": [job.to_dict()
                             for job in self.server.scheduler.list()]})
            if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                job = self._job_or_404(parts[2])
                if job is not None:
                    self._json(200, job.to_dict())
                return
            if len(parts) == 4 and parts[:2] == ["v1", "jobs"]:
                job = self._job_or_404(parts[2])
                if job is None:
                    return
                if parts[3] == "result":
                    if job.result is None:
                        return self._error(404,
                                           f"job {job.id} has no result yet "
                                           f"(state: {job.state})")
                    return self._json(200, job.result)
                if parts[3] == "events":
                    return self._events(job, query)
                if parts[3] == "stream":
                    return self._stream(job, query)
            self._error(404, f"unknown path: {url.path}")
        except BrokenPipeError:  # pragma: no cover - client went away
            pass

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts != ["v1", "jobs"]:
            return self._error(404, f"unknown path: {url.path}")
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError):
            return self._error(400, "request body must be a JSON object")
        if not isinstance(payload, dict) or "module" not in payload:
            return self._error(400, 'missing required field "module"')
        try:
            job = self.server.scheduler.submit(
                str(payload["module"]),
                mode=str(payload.get("mode", "hanoi")),
                force=bool(payload.get("force", False)),
            )
        except SpecFileError as error:
            return self._error(400, str(error))
        self._json(201, job.to_dict())

    # -- route bodies -------------------------------------------------------

    def _health(self) -> None:
        scheduler = self.server.scheduler
        jobs = scheduler.list()
        counts: Dict[str, int] = {}
        for job in jobs:
            counts[job.state] = counts.get(job.state, 0) + 1
        cache_dir = scheduler.config.cache_dir
        cache = (DiskCacheStore(cache_dir).stats()
                 if cache_dir else {})
        self._json(200, {
            "ok": True,
            "jobs": counts,
            "cache_dir": cache_dir,
            "cache_entries": cache,
        })

    @staticmethod
    def _float_param(query: dict, name: str, default: float,
                     maximum: float) -> float:
        try:
            value = float(query.get(name, [default])[0])
        except (TypeError, ValueError):
            value = default
        return max(0.0, min(value, maximum))

    def _events(self, job, query: dict) -> None:
        after = 0
        try:
            after = int(query.get("after", [0])[0])
        except (TypeError, ValueError):
            pass
        wait = self._float_param(query, "wait", 0.0, MAX_LONG_POLL_WAIT)
        records, cursor, closed = job.events.after(after, wait=wait or None)
        self._json(200, {"records": records, "next": cursor, "closed": closed})

    def _stream(self, job, query: dict) -> None:
        """Server-Sent Events: one ``data:`` line per trace record."""
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        cursor = 0
        try:
            cursor = int(query.get("after", [0])[0])
        except (TypeError, ValueError):
            pass
        while True:
            records, cursor, closed = job.events.after(
                cursor, wait=MAX_LONG_POLL_WAIT)
            for record in records:
                data = json.dumps(record, default=str)
                self.wfile.write(f"data: {data}\n\n".encode("utf-8"))
            self.wfile.flush()
            if closed:
                self.wfile.write(b"event: end\ndata: {}\n\n")
                return


# ---------------------------------------------------------------------------
# Client (used by ``repro submit`` / ``repro jobs``)
# ---------------------------------------------------------------------------


class ServiceError(RuntimeError):
    """An error response from the service, with its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _request(url: str, payload: Optional[dict] = None,
             timeout: float = 60.0) -> dict:
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = Request(url, data=data, headers=headers)
    try:
        with urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except HTTPError as error:
        try:
            detail = json.loads(error.read().decode("utf-8")).get("error", "")
        except Exception:
            detail = ""
        raise ServiceError(error.code,
                           detail or f"HTTP {error.code}") from error


def submit_module(base_url: str, text: str, mode: str = "hanoi",
                  force: bool = False) -> dict:
    return _request(f"{base_url.rstrip('/')}/v1/jobs",
                    payload={"module": text, "mode": mode, "force": force})


def fetch_job(base_url: str, job_id: str) -> dict:
    return _request(f"{base_url.rstrip('/')}/v1/jobs/{job_id}")


def fetch_jobs(base_url: str) -> List[dict]:
    return _request(f"{base_url.rstrip('/')}/v1/jobs")["jobs"]


def fetch_result(base_url: str, job_id: str) -> dict:
    return _request(f"{base_url.rstrip('/')}/v1/jobs/{job_id}/result")


def fetch_events(base_url: str, job_id: str, after: int = 0,
                 wait: float = 0.0) -> dict:
    return _request(f"{base_url.rstrip('/')}/v1/jobs/{job_id}/events"
                    f"?after={after}&wait={wait}",
                    timeout=max(60.0, wait + 30.0))


def fetch_health(base_url: str) -> dict:
    return _request(f"{base_url.rstrip('/')}/v1/health")


def wait_for_job(base_url: str, job_id: str, timeout: Optional[float] = None,
                 poll_interval: float = 0.5) -> dict:
    """Poll until the job leaves the queue; returns its final job record."""
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        job = fetch_job(base_url, job_id)
        if job["state"] in ("done", "failed"):
            return job
        if deadline is not None and time.monotonic() > deadline:
            raise ServiceError(408, f"timed out waiting for job {job_id} "
                                    f"(state: {job['state']})")
        time.sleep(poll_interval)
