"""Persistent content-addressed disk store for the evaluation caches.

The in-memory caches (:mod:`repro.verify.evalcache`,
:mod:`repro.synth.poolcache`) replay candidate-independent work across CEGIS
*iterations*; this module replays it across *processes*.  Two pieces:

* :class:`DiskCacheStore` - a dumb, versioned, crash-tolerant blob store.
  Every entry is ``magic | version | sha256(payload) | payload`` written
  atomically (temp file + ``os.replace``), so a reader can always tell a
  complete entry from a truncated, corrupted, or foreign one *before*
  unpickling it.  Anything suspicious is reported through the ``warn``
  callback and treated as a miss - corruption costs speed, never
  correctness, and never a crash.

* :class:`PersistentCacheBinding` - the policy layer.  It computes one
  content key per cache *section* from the per-declaration dependency
  hashes of :func:`repro.analysis.canon.declaration_dependency_hashes`:

  ======= ============================== ===================================
  section one file per                   key covers
  ======= ============================== ===================================
  $spec$  module (spec stream)           spec dep-hash, concrete signature,
                                         verifier bounds, eval fuel
  $op$    operation (operation memo)     operation dep-hash, concrete
                                         signature, eval fuel
  $apps$  synthesis component (app memo) component dep-hash, eval fuel
  ======= ============================== ===================================

  The file name *is* the hash of everything its content depends on, so
  incremental invalidation needs no diffing: editing one operation changes
  only the keys of the declarations that transitively call it, and every
  other section warm-starts.  A stale entry is simply never looked up again
  (and is eventually re-written under its new key).

Only first-order data is persisted.  Entries keyed by identity-hashed
function values are re-bound by module-global *name* where possible
(synthesis components) and skipped otherwise (the synthesizer's per-call
oracle, enumerated function arguments); see the ``export_*`` seams on the
cache classes.  Restores change no verdict: the memos are pure replay
stores and every semantic input is part of the key, so a warm run's outcome
fingerprint is byte-identical to a cold run's
(``tests/serve/test_diskcache.py``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
from dataclasses import astuple
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.canon import (
    PRELUDE_HASH,
    canonical_hash,
    declaration_dependency_hashes,
)
from ..core.config import HanoiConfig
from ..core.module import ModuleDefinition, ModuleInstance
from ..core.stats import InferenceStats
from ..lang.pretty import pretty_type
from ..synth.poolcache import SynthesisEvaluationCache
from ..verify.evalcache import EvaluationCache

__all__ = ["DiskCacheStore", "PersistentCacheBinding", "STORE_VERSION"]

#: Store format version.  Bump on any incompatible change to the entry
#: layout *or* the pickled payload shapes; old entries then fail the header
#: check and are skipped (and eventually re-written) rather than misread.
STORE_VERSION = 1

#: Leading bytes of every entry file - rejects foreign files instantly.
MAGIC = b"HANC"

_HEADER = struct.Struct(">4sI")
_DIGEST_SIZE = hashlib.sha256().digest_size

#: Payload format tag folded into every section key.  Changing what a
#: section stores (not how it is framed) bumps this instead of
#: :data:`STORE_VERSION`, invalidating by key rather than by header.
ENTRY_FORMAT = "fmt1"

WarnFn = Callable[[str, Dict[str, object]], None]


class DiskCacheStore:
    """Content-addressed blob store: ``root/v<N>/<section>/<k[:2]>/<k>.bin``.

    The store never raises on bad data.  A missing entry is a silent miss;
    a malformed one (wrong magic, wrong version, checksum mismatch, pickle
    failure) is a miss reported through ``warn`` so the caller can emit a
    ``disk-cache-warning`` event.  Writes are atomic and best-effort: an
    unwritable store degrades to a cache that never hits.
    """

    def __init__(self, root: str, warn: Optional[WarnFn] = None) -> None:
        self.root = os.path.abspath(root)
        self._warn = warn

    def entry_path(self, section: str, key: str) -> str:
        return os.path.join(self.root, f"v{STORE_VERSION}", section,
                            key[:2], f"{key}.bin")

    def _report(self, message: str, **detail: object) -> None:
        if self._warn is not None:
            self._warn(message, dict(detail))

    def get(self, section: str, key: str) -> Optional[object]:
        """The stored object, or ``None`` on miss or any form of damage."""
        path = self.entry_path(section, key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return None  # plain miss: never written (or unreadable store)
        if len(blob) < _HEADER.size + _DIGEST_SIZE:
            self._report("truncated disk-cache entry skipped",
                         section=section, key=key, size=len(blob))
            return None
        magic, version = _HEADER.unpack_from(blob)
        if magic != MAGIC:
            self._report("foreign disk-cache entry skipped",
                         section=section, key=key)
            return None
        if version != STORE_VERSION:
            self._report("wrong-version disk-cache entry skipped",
                         section=section, key=key, version=version)
            return None
        digest = blob[_HEADER.size:_HEADER.size + _DIGEST_SIZE]
        payload = blob[_HEADER.size + _DIGEST_SIZE:]
        if hashlib.sha256(payload).digest() != digest:
            self._report("corrupt disk-cache entry skipped (checksum mismatch)",
                         section=section, key=key)
            return None
        try:
            # The checksum already proved the payload is byte-for-byte what
            # this process family wrote, so unpickling it is as safe as
            # having produced it locally.
            return pickle.loads(payload)
        except Exception as error:  # stale class layout, interrupted write
            self._report("unreadable disk-cache entry skipped",
                         section=section, key=key, error=repr(error))
            return None

    def put(self, section: str, key: str, obj: object) -> bool:
        """Atomically write one entry; ``False`` (with a warning) on failure."""
        path = self.entry_path(section, key)
        try:
            payload = pickle.dumps(obj, protocol=4)
            blob = (_HEADER.pack(MAGIC, STORE_VERSION)
                    + hashlib.sha256(payload).digest() + payload)
            directory = os.path.dirname(path)
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
            return True
        except Exception as error:
            self._report("disk-cache write failed",
                         section=section, key=key, error=repr(error))
            return False

    def stats(self) -> Dict[str, int]:
        """Entry counts per section (for the service's cache endpoint)."""
        counts: Dict[str, int] = {}
        version_root = os.path.join(self.root, f"v{STORE_VERSION}")
        try:
            sections = sorted(os.listdir(version_root))
        except OSError:
            return counts
        for section in sections:
            section_root = os.path.join(version_root, section)
            total = 0
            for _, _, files in os.walk(section_root):
                total += sum(1 for name in files if name.endswith(".bin"))
            counts[section] = total
        return counts


class PersistentCacheBinding:
    """Binds one run's in-memory caches to a :class:`DiskCacheStore`.

    Constructed by :class:`~repro.core.hanoi.HanoiInference` when
    ``HanoiConfig.cache_dir`` is set; :meth:`restore` runs right after the
    caches are created, :meth:`persist` right after the loop finishes.  Both
    are best-effort - any failure downgrades to cold-start behaviour.
    """

    def __init__(self, store: DiskCacheStore, definition: ModuleDefinition,
                 instance: ModuleInstance, config: HanoiConfig) -> None:
        self.store = store
        self.definition = definition
        self.instance = instance
        self.config = config
        # Per-declaration dependency hashes are the invalidation unit; the
        # whole-module canonical hash backstops names the analysis cannot
        # see (it only ever over-invalidates, never under-invalidates).
        self._dep = declaration_dependency_hashes(definition)
        self._fallback = canonical_hash(definition)
        self._bounds = repr(astuple(config.verifier_bounds))
        self._fuel = str(config.eval_fuel)

    # -- keys ---------------------------------------------------------------

    def _hash_of(self, name: str) -> str:
        dep = self._dep.get(name)
        if dep is not None:
            return dep
        if self.instance.program.has_global(name) and name not in self._dep:
            # A prelude definition: its behaviour depends on the prelude
            # alone, so key it off the prelude hash and survive module edits.
            return hashlib.sha256(
                f"prelude\n{PRELUDE_HASH}\n{name}".encode("utf-8")).hexdigest()
        return self._fallback

    @staticmethod
    def _key(*parts: str) -> str:
        return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()

    def spec_key(self) -> str:
        signature = ", ".join(pretty_type(t)
                              for t in self.instance.spec_concrete_signature())
        return self._key(ENTRY_FORMAT, "spec",
                         self._hash_of(self.definition.spec_name),
                         signature, self._bounds, self._fuel)

    def operation_keys(self) -> Dict[str, str]:
        keys: Dict[str, str] = {}
        for op in self.definition.operations:
            signature = pretty_type(self.instance.operation_concrete_signature(op))
            keys[op.name] = self._key(ENTRY_FORMAT, "op",
                                      self._hash_of(op.name),
                                      signature, self._fuel)
        return keys

    def component_keys(self) -> Dict[str, str]:
        return {
            name: self._key(ENTRY_FORMAT, "apps", self._hash_of(name), self._fuel)
            for name in self.definition.synthesis_components
        }

    def _component_values(self) -> Dict[str, object]:
        program = self.instance.program
        return {name: program.global_value(name)
                for name in self.definition.synthesis_components
                if program.has_global(name)}

    # -- restore / persist --------------------------------------------------

    def restore(self, eval_cache: Optional[EvaluationCache],
                pool_cache: Optional[SynthesisEvaluationCache],
                stats: InferenceStats) -> None:
        """Warm the in-memory caches from disk, counting section hits/misses."""
        if eval_cache is not None:
            payload = self.store.get("spec", self.spec_key())
            if isinstance(payload, dict) and "entries" in payload:
                eval_cache.spec.restore_entries(payload["entries"],
                                                payload.get("exhausted", False))
                stats.disk_cache_hits += 1
            else:
                stats.disk_cache_misses += 1
            for key in self.operation_keys().values():
                records = self.store.get("op", key)
                if isinstance(records, list):
                    eval_cache.operations.restore_records(records)
                    stats.disk_cache_hits += 1
                else:
                    stats.disk_cache_misses += 1
        if pool_cache is not None:
            values = self._component_values()
            for name, key in sorted(self.component_keys().items()):
                triples = self.store.get("apps", key)
                if isinstance(triples, list):
                    pool_cache.applications.restore_outcomes(triples, values)
                    stats.disk_cache_hits += 1
                else:
                    stats.disk_cache_misses += 1

    def persist(self, eval_cache: Optional[EvaluationCache],
                pool_cache: Optional[SynthesisEvaluationCache]) -> int:
        """Write the caches back; returns the number of sections written.

        Every section the run looked up is (re-)written: restored entries
        plus whatever the run added, so repeated warm runs keep growing one
        merged snapshot per content key.
        """
        written = 0
        if eval_cache is not None:
            entries, exhausted = eval_cache.spec.export_entries()
            written += self.store.put("spec", self.spec_key(),
                                      {"entries": entries, "exhausted": exhausted})
            grouped: Dict[str, List[Tuple[tuple, object]]] = {}
            for key_pair, record in eval_cache.operations.export_records():
                grouped.setdefault(key_pair[0], []).append((key_pair, record))
            for name, key in sorted(self.operation_keys().items()):
                written += self.store.put("op", key, grouped.get(name, []))
        if pool_cache is not None:
            names = {id(value): name
                     for name, value in sorted(self._component_values().items())}
            by_component: Dict[str, List[Tuple[str, tuple, object]]] = {}
            for triple in pool_cache.applications.export_outcomes(names):
                by_component.setdefault(triple[0], []).append(triple)
            for name, key in sorted(self.component_keys().items()):
                written += self.store.put("apps", key, by_component.get(name, []))
        return written
