"""An abstract interpreter for the object language, and the static verdicts
built on it.

This is the proof tier of the verification ladder (docs/verification.md):
where the paper's ``Verify`` tests candidate obligations by bounded
enumeration (Section 4.3, "unsound but effective"), this module *evaluates
the obligation abstractly* over the domains of :mod:`repro.analysis.domains`
and reports one of three verdicts:

* ``PROVEN`` - the abstract post-state entails the predicate on every
  completing execution, so enumeration cannot find a counterexample;
* ``REFUTED`` - every completing execution violates the predicate, so
  enumeration will find a counterexample as soon as one application
  completes (callers confirm with a concrete evaluation);
* ``UNKNOWN`` - the abstraction is too coarse to decide; fall through.

Design notes
------------
Evaluation produces an :class:`AbsResult`: an abstract value (``None`` =
bottom, i.e. no completing execution) plus a ``may_fail`` bit tracking
whether evaluation may raise a :class:`~repro.lang.errors.LangError`
(unmatched ``match``, fuel exhaustion, unknown application).  The bit
matters because :class:`~repro.core.predicate.Predicate` maps evaluation
errors to ``False``: a ``PROVEN`` verdict therefore requires both a
definitely-``True`` abstract value *and* crash-freedom.

Function calls go through per-``(function, abstract arguments)`` summaries
with an assumption-based fixpoint: a recursive self-call returns the
current assumption (starting at bottom) and the frame iterates until the
result is stable, widening (:func:`~repro.analysis.domains.widen`) after a
few rounds so the chain is finite.  Call keys reached *under* someone
else's in-progress assumption are not memoized (the outer fixpoint
recomputes them), which keeps mutual recursion sound without a full
worklist.  Summary iteration order follows the bottom-up SCC order of
:func:`repro.analysis.callgraph.strongly_connected_components` implicitly -
callees stabilize (and memoize) before their callers' frames close.

Termination is *not* assumed: a frame whose own assumption was hit (a real
recursive cycle in the abstraction) is marked ``may_fail`` unless
:func:`repro.analysis.callgraph.check_structural_recursion` proves the
function structurally decreasing and it is not mutually recursive -
concretely, unproven recursion may burn evaluation fuel, which surfaces as
a :class:`~repro.lang.errors.LangError`.  Pure expressions
(:func:`repro.analysis.canon.is_pure`) skip the fixpoint entirely: they
cannot crash, diverge, or recurse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..lang.ast import (
    EApp,
    ECtor,
    EFun,
    ELet,
    EMatch,
    EProj,
    ETuple,
    EVar,
    Expr,
    FunDecl,
    Pattern,
    PCtor,
    PTuple,
    PVar,
    PWild,
    free_vars,
)
from ..lang.typecheck import CtorInfo
from ..lang.types import TAbstract, TArrow, Type, mentions_abstract
from .callgraph import (
    build_call_graph,
    check_structural_recursion,
    strongly_connected_components,
)
from .canon import is_pure
from .domains import (
    ABS_FUN,
    ABS_TOP,
    AbsData,
    AbsNat,
    AbsTuple,
    AbsValue,
    Interval,
    NAT,
    PARITY_EVEN,
    abs_data,
    abs_nat,
    alpha,
    definitely_false,
    definitely_true,
    interval_meet,
    join,
    nat_const,
    parity_flip,
    size_of,
    top_of,
    widen,
)

__all__ = [
    "PROVEN",
    "REFUTED",
    "UNKNOWN",
    "TRIVIAL",
    "AbsResult",
    "AbstractInterpreter",
    "AbstractChecker",
]

#: Static verdicts on one verification obligation.
PROVEN = "proven"
REFUTED = "refuted"
UNKNOWN = "unknown"
#: The obligation is vacuous (the enumerative checker's own pre-filter
#: returns VALID without doing any work), so it is not a static *proof*.
TRIVIAL = "trivial"


@dataclass(frozen=True)
class AbsResult:
    """One abstract evaluation outcome.

    ``value`` over-approximates the results of every *completing* concrete
    execution (``None`` = no execution completes); ``may_fail`` is set
    unless no concrete execution can raise a :class:`LangError`.
    """

    value: Optional[AbsValue]
    may_fail: bool


_BOTTOM = AbsResult(None, False)
_TOP_FAIL = AbsResult(ABS_TOP, True)


class _Budget(Exception):
    """Internal: the per-query node budget is exhausted (result: unknown)."""


class _Frame:
    __slots__ = ("result", "hit", "external")

    def __init__(self) -> None:
        self.result: AbsResult = _BOTTOM
        self.hit = False          # this frame's own assumption was used
        self.external = False     # evaluated under another frame's assumption


class AbstractInterpreter:
    """Abstract evaluation of one program's declarations."""

    MAX_ITERS = 8        # fixpoint rounds per call frame before giving up
    WIDEN_AFTER = 3      # rounds of plain join before widening kicks in
    MAX_DEPTH = 32       # active call frames (distinct abstract call keys)
    MAX_MEMO = 4096      # persistent summary entries
    NODE_BUDGET = 200_000  # expression nodes visited per public query

    def __init__(self, program, extra_decls: Sequence[FunDecl] = ()) -> None:
        self.program = program
        self.types = program.types
        self._decls: Dict[str, FunDecl] = {
            decl.name: decl for decl in program.declarations
            if isinstance(decl, FunDecl)
        }
        for decl in extra_decls:
            self._decls[decl.name] = decl
        # Mutual-recursion detection reuses the call graph's SCCs: a name in
        # a multi-member component has no structural-termination certificate.
        graph = build_call_graph(list(self._decls.values()))
        self._mutual = set()
        for component in strongly_connected_components(graph):
            if len(component) > 1:
                self._mutual |= component
        self._terminating: Dict[str, bool] = {}
        self._memo: Dict[tuple, AbsResult] = {}
        self._active: Dict[tuple, _Frame] = {}
        self._stack: List[tuple] = []
        self._nodes = 0

    # -- public API -------------------------------------------------------------

    def call_function(self, name: str, args: Tuple[AbsValue, ...]) -> AbsResult:
        """Abstractly apply a program global to fully-applied arguments."""
        decl = self._decls.get(name)
        if decl is None or len(decl.params) != len(args):
            return _TOP_FAIL
        return self._query(decl, args, self._memo)

    def apply_decl(self, decl: FunDecl, args: Tuple[AbsValue, ...]) -> AbsResult:
        """Abstractly apply a declaration that is *not* part of the program
        (a candidate invariant, an oracle).  Its summaries are ephemeral -
        the declaration's name may be reused by a different body later."""
        if len(decl.params) != len(args):
            return _TOP_FAIL
        local_memo: Dict[tuple, AbsResult] = {}
        saved = self._local
        self._local = (decl, local_memo)
        try:
            return self._query(decl, args, local_memo)
        finally:
            self._local = saved

    _local: Optional[Tuple[FunDecl, Dict[tuple, AbsResult]]] = None

    # -- call summaries ---------------------------------------------------------

    def _query(self, decl: FunDecl, args: Tuple[AbsValue, ...],
               memo: Dict[tuple, AbsResult]) -> AbsResult:
        self._nodes = 0
        try:
            return self._call(decl, args, memo)
        except _Budget:
            return _TOP_FAIL
        finally:
            # A budget abort unwinds through open frames; drop them all.
            self._active.clear()
            del self._stack[:]

    def _terminates(self, decl: FunDecl) -> bool:
        cached = self._terminating.get(decl.name)
        if cached is None:
            cached = (decl.name not in self._mutual
                      and check_structural_recursion(decl) is None)
            self._terminating[decl.name] = cached
        return cached

    def _call(self, decl: FunDecl, args: Tuple[AbsValue, ...],
              memo: Dict[tuple, AbsResult]) -> AbsResult:
        # Pure bodies cannot crash, diverge, or recurse: one evaluation.
        if is_pure(decl.body):
            key = (decl.name, args)
            cached = memo.get(key)
            if cached is None:
                env = {name: value for (name, _), value in zip(decl.params, args)}
                result = self._eval(decl.body, env)
                cached = AbsResult(result.value, False)
                if len(memo) < self.MAX_MEMO:
                    memo[key] = cached
            return cached

        key = (decl.name, args)
        cached = memo.get(key)
        if cached is not None:
            return cached
        frame = self._active.get(key)
        if frame is not None:
            # An in-progress assumption: everything above it on the stack now
            # depends on it and must not be memoized until it stabilizes.
            frame.hit = True
            index = self._stack.index(key)
            for above in self._stack[index + 1:]:
                self._active[above].external = True
            return frame.result
        if len(self._active) >= self.MAX_DEPTH:
            return _TOP_FAIL

        frame = _Frame()
        self._active[key] = frame
        self._stack.append(key)
        try:
            env_base = [name for name, _ in decl.params]
            for iteration in range(self.MAX_ITERS):
                frame.hit = False
                env = dict(zip(env_base, args))
                latest = self._eval(decl.body, env)
                merged_value = join(frame.result.value, latest.value)
                if iteration >= self.WIDEN_AFTER:
                    merged_value = widen(frame.result.value, merged_value)
                merged = AbsResult(merged_value,
                                   frame.result.may_fail or latest.may_fail)
                if merged == frame.result:
                    break  # stable (with or without a recursion hit)
                frame.result = merged
                if not frame.hit:
                    break  # no self-dependence: one pass is exact
            else:
                frame.result = _TOP_FAIL
        finally:
            self._stack.pop()
            del self._active[key]

        result = frame.result
        if frame.hit and not self._terminates(decl):
            # Real recursion without a termination certificate: concretely it
            # may burn evaluation fuel, which raises.
            result = AbsResult(result.value, True)
        if not frame.external and len(memo) < self.MAX_MEMO:
            memo[key] = result
        return result

    def _resolve_decl(self, name: str) -> Optional[FunDecl]:
        if self._local is not None and self._local[0].name == name:
            return self._local[0]
        return self._decls.get(name)

    def _memo_for(self, decl: FunDecl) -> Dict[tuple, AbsResult]:
        if self._local is not None and self._local[0] is decl:
            return self._local[1]
        return self._memo

    # -- transfer functions -----------------------------------------------------

    def _eval(self, expr: Expr, env: Dict[str, AbsValue]) -> AbsResult:
        self._nodes += 1
        if self._nodes > self.NODE_BUDGET:
            raise _Budget()

        if isinstance(expr, EVar):
            value = env.get(expr.name)
            if value is not None:
                return AbsResult(value, False)
            decl = self._resolve_decl(expr.name)
            if decl is None:
                return _TOP_FAIL  # unknown global (native); stay sound
            if decl.params:
                return AbsResult(ABS_FUN, False)
            return self._call(decl, (), self._memo_for(decl))

        if isinstance(expr, ECtor):
            return self._eval_ctor(expr, env)

        if isinstance(expr, ETuple):
            items: List[AbsValue] = []
            may_fail = False
            for item in expr.items:
                result = self._eval(item, env)
                may_fail = may_fail or result.may_fail
                if result.value is None:
                    return AbsResult(None, may_fail)
                items.append(result.value)
            return AbsResult(AbsTuple(tuple(items)), may_fail)

        if isinstance(expr, EProj):
            result = self._eval(expr.expr, env)
            if result.value is None:
                return result
            if isinstance(result.value, AbsTuple) and \
                    expr.index < len(result.value.items):
                return AbsResult(result.value.items[expr.index], result.may_fail)
            return AbsResult(ABS_TOP, result.may_fail)

        if isinstance(expr, EFun):
            return AbsResult(ABS_FUN, False)

        if isinstance(expr, ELet):
            # Dead pure bindings evaluate to nothing observable.
            if expr.name not in free_vars(expr.body) and is_pure(expr.value):
                return self._eval(expr.body, env)
            bound = self._eval(expr.value, env)
            if bound.value is None:
                return bound
            body_env = dict(env)
            body_env[expr.name] = bound.value
            result = self._eval(expr.body, body_env)
            return AbsResult(result.value, bound.may_fail or result.may_fail)

        if isinstance(expr, EApp):
            return self._eval_app(expr, env)

        if isinstance(expr, EMatch):
            return self._eval_match(expr, env)

        return _TOP_FAIL  # unforeseen node: stay sound

    def _eval_ctor(self, expr: ECtor, env: Dict[str, AbsValue]) -> AbsResult:
        info = self.types.ctors.get(expr.ctor)
        if expr.payload is None:
            if info is not None and info.datatype == NAT:
                return AbsResult(nat_const(0), False)
            datatype = info.datatype if info is not None else "?"
            return AbsResult(
                AbsData(datatype, frozenset((expr.ctor,)), Interval(1, 1)), False)
        payload = self._eval(expr.payload, env)
        if payload.value is None:
            return payload
        if info is not None and info.datatype == NAT:  # S payload
            if isinstance(payload.value, AbsNat):
                value = abs_nat(payload.value.interval.shift(1),
                                parity_flip(payload.value.parity))
                value = value if value is not None else AbsNat(Interval(1, None))
            else:
                value = AbsNat(Interval(1, None))
            return AbsResult(value, payload.may_fail)
        datatype = info.datatype if info is not None else "?"
        size = size_of(payload.value).shift(1)
        return AbsResult(AbsData(datatype, frozenset((expr.ctor,)), size),
                         payload.may_fail)

    def _eval_app(self, expr: EApp, env: Dict[str, AbsValue]) -> AbsResult:
        head: Expr = expr
        arg_exprs: List[Expr] = []
        while isinstance(head, EApp):
            arg_exprs.append(head.arg)
            head = head.fn
        arg_exprs.reverse()

        may_fail = False
        args: List[AbsValue] = []
        for arg_expr in arg_exprs:
            result = self._eval(arg_expr, env)
            may_fail = may_fail or result.may_fail
            if result.value is None:
                return AbsResult(None, may_fail)
            args.append(result.value)

        decl = None
        if isinstance(head, EVar) and head.name not in env:
            decl = self._resolve_decl(head.name)
        if decl is None or not decl.params:
            # A higher-order argument, a lambda, a native, or a zero-param
            # global somehow applied: opaque application.
            return _TOP_FAIL
        arity = len(decl.params)
        if len(args) < arity:
            return AbsResult(ABS_FUN, may_fail)  # partial application
        result = self._call(decl, tuple(args[:arity]), self._memo_for(decl))
        may_fail = may_fail or result.may_fail
        if result.value is None or len(args) == arity:
            return AbsResult(result.value, may_fail)
        return _TOP_FAIL  # applying a returned closure: opaque

    # -- match ------------------------------------------------------------------

    def _eval_match(self, expr: EMatch, env: Dict[str, AbsValue]) -> AbsResult:
        scrutinee = self._eval(expr.scrutinee, env)
        if scrutinee.value is None:
            return scrutinee
        may_fail = scrutinee.may_fail
        remaining: Optional[AbsValue] = scrutinee.value
        value: Optional[AbsValue] = None
        for branch in expr.branches:
            if remaining is None:
                break  # dead branch: earlier patterns must have matched
            outcome = self._match(branch.pattern, remaining)
            if outcome is not None:
                bindings, must = outcome
                branch_env = dict(env)
                branch_env.update(bindings)
                result = self._eval(branch.body, branch_env)
                may_fail = may_fail or result.may_fail
                value = join(value, result.value)
                remaining = (None if must
                             else self._subtract(remaining, branch.pattern))
        if remaining is not None:
            may_fail = True  # some value may fall off the end of the match
        return AbsResult(value, may_fail)

    def _match(self, pattern: Pattern, abs_value: AbsValue,
               ) -> Optional[Tuple[Dict[str, AbsValue], bool]]:
        """``None`` when the pattern cannot match ``abs_value``; otherwise
        the variable bindings and whether the match is guaranteed."""
        if isinstance(pattern, PWild):
            return {}, True
        if isinstance(pattern, PVar):
            return {pattern.name: abs_value}, True
        if isinstance(pattern, PTuple):
            items: Sequence[AbsValue]
            if isinstance(abs_value, AbsTuple) and \
                    len(abs_value.items) == len(pattern.items):
                items = abs_value.items
            else:
                items = (ABS_TOP,) * len(pattern.items)
            bindings: Dict[str, AbsValue] = {}
            must = True
            for sub, item in zip(pattern.items, items):
                outcome = self._match(sub, item)
                if outcome is None:
                    return None
                sub_bindings, sub_must = outcome
                bindings.update(sub_bindings)
                must = must and sub_must
            return bindings, must
        if isinstance(pattern, PCtor):
            return self._match_ctor(pattern, abs_value)
        return {}, False  # unforeseen pattern: assume it may match

    def _match_ctor(self, pattern: PCtor, abs_value: AbsValue,
                    ) -> Optional[Tuple[Dict[str, AbsValue], bool]]:
        info = self.types.ctors.get(pattern.ctor)

        if isinstance(abs_value, AbsNat):
            if pattern.ctor == "O":
                if not abs_value.interval.contains(0) or \
                        not abs_value.parity & PARITY_EVEN:
                    return None
                return {}, abs_value.interval.hi == 0
            if pattern.ctor == "S":
                refined = interval_meet(abs_value.interval, Interval(1, None))
                if refined is None:
                    return None
                predecessor = abs_nat(refined.shift(-1),
                                      parity_flip(abs_value.parity))
                if predecessor is None:
                    return None
                must = abs_value.interval.lo >= 1
                if pattern.payload is None:
                    return {}, must
                outcome = self._match(pattern.payload, predecessor)
                if outcome is None:
                    return None
                bindings, sub_must = outcome
                return bindings, must and sub_must
            return None  # a non-nat constructor against a nat: ill-typed

        if isinstance(abs_value, AbsData):
            if pattern.ctor not in abs_value.ctors:
                return None
            must = abs_value.ctors == frozenset((pattern.ctor,))
            if pattern.payload is None:
                return {}, must
            payload_abs = self._payload_abs(info, abs_value.size)
            outcome = self._match(pattern.payload, payload_abs)
            if outcome is None:
                return None
            bindings, sub_must = outcome
            return bindings, must and sub_must

        # ABS_TOP (or an ill-typed shape): the match may or may not happen.
        if pattern.payload is None:
            return {}, False
        payload_abs = self._payload_abs(info, Interval(1, None))
        outcome = self._match(pattern.payload, payload_abs)
        if outcome is None:
            return None
        bindings, _ = outcome
        return bindings, False

    def _payload_abs(self, info: Optional[CtorInfo],
                     parent_size: Interval) -> AbsValue:
        """The abstraction of a constructor payload, refined by the parent's
        size interval (payload size = parent size - 1)."""
        if info is None or info.payload is None:
            return ABS_TOP
        top = top_of(info.payload, self.types)
        payload_size = parent_size.shift(-1)
        if isinstance(top, AbsNat):
            # A nat of size s has value s - 1.
            refined = abs_nat(payload_size.shift(-1), top.parity)
            return refined if refined is not None else top
        if isinstance(top, AbsData):
            size = interval_meet(top.size, Interval(max(1, payload_size.lo),
                                                    payload_size.hi))
            refined = abs_data(top.datatype, top.ctors, size)
            return refined if refined is not None else top
        return top

    def _subtract(self, abs_value: AbsValue,
                  pattern: Pattern) -> Optional[AbsValue]:
        """What remains of ``abs_value`` after ``pattern`` failed to match.

        Only head constructors of patterns with irrefutable payloads are
        subtracted; anything finer conservatively keeps the abstraction."""
        if not isinstance(pattern, PCtor):
            return abs_value
        payload_irrefutable = (pattern.payload is None
                               or _irrefutable(pattern.payload))
        if not payload_irrefutable:
            return abs_value
        if isinstance(abs_value, AbsNat):
            if pattern.ctor == "O":
                return abs_nat(interval_meet(abs_value.interval, Interval(1, None)),
                               abs_value.parity)
            if pattern.ctor == "S":
                return abs_nat(interval_meet(abs_value.interval, Interval(0, 0)),
                               abs_value.parity & PARITY_EVEN)
            return abs_value
        if isinstance(abs_value, AbsData):
            return abs_data(abs_value.datatype,
                            abs_value.ctors - frozenset((pattern.ctor,)),
                            abs_value.size)
        return abs_value


def _irrefutable(pattern: Pattern) -> bool:
    if isinstance(pattern, (PWild, PVar)):
        return True
    if isinstance(pattern, PTuple):
        return all(_irrefutable(item) for item in pattern.items)
    return False


# -- obligation verdicts ---------------------------------------------------------


class AbstractChecker:
    """Static PROVEN / REFUTED / UNKNOWN verdicts on the two obligation
    families of the Hanoi loop (sufficiency, per-operation conditional
    inductiveness), for one module instance."""

    def __init__(self, instance,
                 extra_decls: Sequence[FunDecl] = ()) -> None:
        self.instance = instance
        self.interpreter = AbstractInterpreter(instance.program,
                                               extra_decls=extra_decls)
        self.types = instance.program.types

    # -- abstract inputs --------------------------------------------------------

    def abstract_input(self, p_pool: Optional[Sequence] = None) -> AbsValue:
        """The abstraction of the values assumed to satisfy ``P``.

        The visible check supplies V+ explicitly (an exact finite join);
        the full check quantifies over every value satisfying the candidate,
        which the top of the concrete type over-approximates soundly."""
        if p_pool is None:
            return top_of(self.instance.concrete_type, self.types)
        value: Optional[AbsValue] = None
        for concrete in p_pool:
            value = join(value, alpha(concrete, self.types))
        return value if value is not None else top_of(
            self.instance.concrete_type, self.types)

    # -- predicate application --------------------------------------------------

    def predicate_verdict(self, q_decl: FunDecl,
                          produced: AbsValue) -> str:
        """Does ``q`` definitely hold / definitely fail on ``produced``?

        ``Predicate.__call__`` maps evaluation errors to ``False``, so
        ``PROVEN`` needs a crash-free definitely-``True`` result, while
        ``REFUTED`` only needs that no execution returns ``True``."""
        result = self.interpreter.apply_decl(q_decl, (produced,))
        if not result.may_fail and definitely_true(result.value):
            return PROVEN
        if result.value is None or definitely_false(result.value):
            return REFUTED
        return UNKNOWN

    # -- obligations ------------------------------------------------------------

    def operation_verdict(self, operation, q_decl: FunDecl,
                          abstract_abs: AbsValue) -> str:
        """One operation's conditional-inductiveness obligation.

        Mirrors the enumerative :meth:`ConditionalInductivenessChecker
        ._check_operation` skip conditions: crashing applications are not
        counterexamples there, so a crash-possible operation can still be
        PROVEN as long as every *completing* result satisfies ``q``."""
        argument_types = operation.argument_types
        if not operation.produces_abstract and not any(
            isinstance(t, TArrow) and mentions_abstract(t)
            for t in argument_types
        ):
            return TRIVIAL  # the enumerative pre-filter is VALID for free
        if any(isinstance(t, TArrow) for t in argument_types):
            return UNKNOWN  # contract instrumentation is not modeled
        args: List[AbsValue] = []
        for interface_type in argument_types:
            if isinstance(interface_type, TAbstract):
                args.append(abstract_abs)
            elif mentions_abstract(interface_type):
                return UNKNOWN  # mixed positions: enumerative raises too
            else:
                args.append(top_of(interface_type, self.types))
        result = self.interpreter.call_function(operation.name, tuple(args))
        if result.value is None:
            return PROVEN  # no application completes; all are skipped
        produced = _abstract_parts(result.value, operation.result_type)
        if not produced:
            return PROVEN
        verdicts = {self.predicate_verdict(q_decl, part) for part in produced}
        if verdicts == {PROVEN}:
            return PROVEN
        if verdicts == {REFUTED} and not result.may_fail:
            # Every completing application definitely violates; refutation
            # still needs a concrete witness (the abstraction cannot show an
            # application *exists*), which the caller confirms by evaluation.
            return REFUTED
        return UNKNOWN

    def inductiveness_verdicts(self, q_decl: FunDecl,
                               p_pool: Optional[Sequence] = None,
                               ) -> Dict[str, str]:
        """Per-operation verdicts for one inductiveness check."""
        abstract_abs = self.abstract_input(p_pool)
        return {
            operation.name: self.operation_verdict(operation, q_decl, abstract_abs)
            for operation in self.instance.operations
        }

    def sufficiency_verdict(self, q_decl: Optional[FunDecl] = None) -> str:
        """The sufficiency obligation ``forall v. I(v) => phi(v)``.

        The specification's quantifiers are abstracted by their type tops -
        a sound over-approximation of the invariant-filtered enumeration -
        so only PROVEN and UNKNOWN are reachable (a refutation would need a
        witness *satisfying* the invariant, which tops cannot exhibit)."""
        definition = self.instance.definition
        signature = self.instance.spec_concrete_signature()
        args = tuple(top_of(ty, self.types) for ty in signature)
        result = self.interpreter.call_function(definition.spec_name, args)
        if not result.may_fail and definitely_true(result.value):
            return PROVEN
        return UNKNOWN


def _abstract_parts(abs_value: AbsValue, interface_type: Type) -> List[AbsValue]:
    """Abstract counterpart of :func:`repro.contracts.firstorder
    .collect_abstract`: the components of a result at abstract positions."""
    if isinstance(interface_type, TAbstract):
        return [abs_value]
    if not mentions_abstract(interface_type):
        return []
    # A product mentioning the abstract type: descend component-wise.
    parts: List[AbsValue] = []
    items = getattr(interface_type, "items", ())
    if isinstance(abs_value, AbsTuple) and len(abs_value.items) == len(items):
        for item_value, item_type in zip(abs_value.items, items):
            parts.extend(_abstract_parts(item_value, item_type))
    else:
        for item_type in items:
            if mentions_abstract(item_type):
                parts.append(ABS_TOP)
    return parts
