"""Canonicalizing rewrites and content hashing for module definitions.

Three behaviour-preserving rewrites bring a module's declarations to a
canonical form:

* **constant folding** — projections out of tuple literals, matches whose
  scrutinee is a constructor literal (which covers the desugared
  ``if True/if False``), and ``let`` bindings whose variable is unused; all
  folds are purity-guarded so a discarded sub-expression can never have
  been the one that crashed or diverged;
* **dead-branch elimination** — match branches proven unreachable by the
  usefulness analysis (:mod:`repro.analysis.matches`) are removed;
* **alpha-normalization** — local binders (parameters, ``fun``/``let``
  bindings, pattern variables) are renamed to a fixed sequence, so
  definitions differing only in local naming become identical.  Top-level
  names are *not* renamed: they are the module interface.

:func:`canonical_hash` hashes the alpha-normalized canonical declarations
together with the module interface (concrete type, operation and
specification signatures, component list) into a **content key**:
trivially-different modules — renamed locals, dead branches, folded
constants — collide, behaviourally different modules do not.  The key is
stamped on the evaluation and synthesis caches
(:mod:`repro.verify.evalcache`, :mod:`repro.synth.poolcache`) so a future
persistent cache tier can index entries by module content.

:func:`canonicalize_definition` additionally renders the canonical
declarations back to loadable surface syntax (with legal fresh names), so
a canonicalized module can be re-run end to end; the differential fuzzer
checks it produces byte-identical inference outcomes to the original.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.module import ModuleDefinition
from ..lang.ast import (
    Branch,
    ECtor,
    EFun,
    ELet,
    EMatch,
    EProj,
    ETuple,
    EVar,
    EApp,
    Expr,
    FunDecl,
    PCtor,
    PTuple,
    PVar,
    PWild,
    Pattern,
    TypeDecl,
    free_vars,
)
from ..lang.parser import parse_program
from ..lang.prelude import PRELUDE_SOURCE
from ..lang.pretty import pretty_type, pretty_type_decl
from ..lang.program import Program
from ..lang.typecheck import TypeChecker
from ..lang.types import Type, arrow
from .callgraph import build_call_graph
from .matches import unreachable_branches

__all__ = [
    "canonicalize_expr",
    "canonicalize_fun_decl",
    "canonical_declarations",
    "canonical_hash",
    "canonicalize_definition",
    "declaration_dependency_hashes",
    "is_pure",
    "render_fun_decl",
    "PRELUDE_HASH",
]

#: Content hash of the prelude every module extends.  Folded into every
#: per-declaration dependency hash: a prelude change invalidates every
#: persisted cache entry, exactly as it should.
PRELUDE_HASH = hashlib.sha256(PRELUDE_SOURCE.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Purity
# ---------------------------------------------------------------------------


def _pure(expr: Expr) -> bool:
    """Conservatively: evaluating ``expr`` cannot crash, diverge, or burn
    observable fuel — so dropping it preserves behaviour exactly."""
    if isinstance(expr, (EVar, EFun)):
        return True
    if isinstance(expr, ECtor):
        return expr.payload is None or _pure(expr.payload)
    if isinstance(expr, ETuple):
        return all(_pure(item) for item in expr.items)
    if isinstance(expr, EProj):
        # Well-typed projection out of a pure tuple value cannot fail.
        return _pure(expr.expr)
    return False


#: Public alias: the abstract interpreter uses the same purity facts to skip
#: its crash/divergence tracking on expressions that cannot need it.
is_pure = _pure


# ---------------------------------------------------------------------------
# Folding + dead-branch elimination (typed, bottom-up)
# ---------------------------------------------------------------------------


class _Canonicalizer:
    def __init__(self, checker: TypeChecker):
        self.checker = checker

    def fun_decl(self, decl: FunDecl) -> FunDecl:
        locals_: Dict[str, Type] = dict(decl.params)
        if decl.recursive and decl.return_type is not None:
            locals_[decl.name] = arrow(*[t for _, t in decl.params],
                                       decl.return_type)
        body = self.expr(decl.body, locals_)
        return FunDecl(decl.name, decl.params, decl.return_type, body,
                       decl.recursive, line=decl.line)

    def expr(self, expr: Expr, locals_: Dict[str, Type]) -> Expr:
        if isinstance(expr, EVar):
            return expr
        if isinstance(expr, ECtor):
            if expr.payload is None:
                return expr
            return ECtor(expr.ctor, self.expr(expr.payload, locals_))
        if isinstance(expr, ETuple):
            return ETuple(tuple(self.expr(item, locals_)
                                for item in expr.items))
        if isinstance(expr, EProj):
            inner = self.expr(expr.expr, locals_)
            if isinstance(inner, ETuple) and 0 <= expr.index < len(inner.items):
                discarded = [item for i, item in enumerate(inner.items)
                             if i != expr.index]
                if all(_pure(item) for item in discarded):
                    return inner.items[expr.index]
            return EProj(expr.index, inner)
        if isinstance(expr, EApp):
            return EApp(self.expr(expr.fn, locals_),
                        self.expr(expr.arg, locals_))
        if isinstance(expr, EFun):
            inner = dict(locals_)
            inner[expr.param] = expr.param_type
            return EFun(expr.param, expr.param_type,
                        self.expr(expr.body, inner))
        if isinstance(expr, ELet):
            value = self.expr(expr.value, locals_)
            inner = dict(locals_)
            inner[expr.name] = self.checker.infer(value, locals_)
            body = self.expr(expr.body, inner)
            if expr.name not in free_vars(body) and _pure(value):
                return body
            return ELet(expr.name, value, body)
        if isinstance(expr, EMatch):
            return self._match(expr, locals_)
        raise TypeError(f"unknown expression node: {expr!r}")

    def _match(self, expr: EMatch, locals_: Dict[str, Type]) -> Expr:
        scrutinee = self.expr(expr.scrutinee, locals_)
        scrutinee_type = self.checker.infer(scrutinee, locals_)
        env = self.checker.env

        branches = list(expr.branches)
        dead = set(unreachable_branches(branches, scrutinee_type, env))
        if dead:
            branches = [b for i, b in enumerate(branches) if i not in dead]

        folded = self._fold_known_scrutinee(scrutinee, branches, locals_)
        if folded is not None:
            return folded

        new_branches: List[Branch] = []
        for branch in branches:
            bindings = self.checker._check_pattern(branch.pattern,
                                                   scrutinee_type)
            inner = dict(locals_)
            inner.update(bindings)
            new_branches.append(Branch(branch.pattern,
                                       self.expr(branch.body, inner)))
        return EMatch(scrutinee, tuple(new_branches), line=expr.line)

    def _fold_known_scrutinee(self, scrutinee: Expr,
                              branches: Sequence[Branch],
                              locals_: Dict[str, Type]) -> Optional[Expr]:
        """Reduce a match over a literal constructor or tuple, when the
        first matching branch lets us do so without duplicating or
        discarding impure work.  Returns ``None`` when no fold applies."""
        if isinstance(scrutinee, ECtor):
            for branch in branches:
                pattern = branch.pattern
                if isinstance(pattern, PWild):
                    if _pure(scrutinee):
                        return self.expr(branch.body, locals_)
                    return None
                if isinstance(pattern, PVar):
                    return self.expr(
                        ELet(pattern.name, scrutinee, branch.body), locals_)
                if isinstance(pattern, PCtor):
                    if pattern.ctor != scrutinee.ctor:
                        continue  # provably different constructor: skip
                    if pattern.payload is None:
                        return self.expr(branch.body, locals_)
                    if isinstance(pattern.payload, PVar):
                        assert scrutinee.payload is not None
                        return self.expr(
                            ELet(pattern.payload.name, scrutinee.payload,
                                 branch.body), locals_)
                    if isinstance(pattern.payload, PWild):
                        if scrutinee.payload is None or _pure(scrutinee.payload):
                            return self.expr(branch.body, locals_)
                    return None  # nested payload pattern: leave the match
                return None
            return None  # no branch matches: preserve the runtime failure
        if isinstance(scrutinee, ETuple) and branches:
            pattern = branches[0].pattern
            if isinstance(pattern, PTuple) and \
                    len(pattern.items) == len(scrutinee.items):
                body: Expr = branches[0].body
                rewritten = body
                bindings: List[Tuple[str, Expr]] = []
                for sub, item in zip(pattern.items, scrutinee.items):
                    if isinstance(sub, PVar):
                        bindings.append((sub.name, item))
                    elif isinstance(sub, PWild):
                        if not _pure(item):
                            return None
                    else:
                        return None  # nested pattern: leave the match
                for name, item in reversed(bindings):
                    rewritten = ELet(name, item, rewritten)
                return self.expr(rewritten, locals_)
        return None


def canonicalize_expr(expr: Expr, checker: TypeChecker,
                      locals_: Dict[str, Type]) -> Expr:
    """Fold constants and eliminate dead branches in one expression."""
    return _Canonicalizer(checker).expr(expr, dict(locals_))


def canonicalize_fun_decl(decl: FunDecl, checker: TypeChecker) -> FunDecl:
    return _Canonicalizer(checker).fun_decl(decl)


# ---------------------------------------------------------------------------
# Alpha-normalization
# ---------------------------------------------------------------------------


def _rename_pattern(pattern: Pattern, mapping: Dict[str, str],
                    names: Iterator[str]) -> Pattern:
    if isinstance(pattern, PVar):
        fresh = next(names)
        mapping[pattern.name] = fresh
        return PVar(fresh)
    if isinstance(pattern, PCtor):
        if pattern.payload is None:
            return pattern
        return PCtor(pattern.ctor,
                     _rename_pattern(pattern.payload, mapping, names))
    if isinstance(pattern, PTuple):
        return PTuple(tuple(_rename_pattern(item, mapping, names)
                            for item in pattern.items))
    return pattern


def _rename(expr: Expr, mapping: Dict[str, str],
            names: Iterator[str]) -> Expr:
    if isinstance(expr, EVar):
        return EVar(mapping.get(expr.name, expr.name))
    if isinstance(expr, ECtor):
        if expr.payload is None:
            return expr
        return ECtor(expr.ctor, _rename(expr.payload, mapping, names))
    if isinstance(expr, ETuple):
        return ETuple(tuple(_rename(item, mapping, names)
                            for item in expr.items))
    if isinstance(expr, EProj):
        return EProj(expr.index, _rename(expr.expr, mapping, names))
    if isinstance(expr, EApp):
        return EApp(_rename(expr.fn, mapping, names),
                    _rename(expr.arg, mapping, names))
    if isinstance(expr, EFun):
        fresh = next(names)
        inner = dict(mapping)
        inner[expr.param] = fresh
        return EFun(fresh, expr.param_type,
                    _rename(expr.body, inner, names))
    if isinstance(expr, ELet):
        value = _rename(expr.value, mapping, names)
        fresh = next(names)
        inner = dict(mapping)
        inner[expr.name] = fresh
        return ELet(fresh, value, _rename(expr.body, inner, names))
    if isinstance(expr, EMatch):
        scrutinee = _rename(expr.scrutinee, mapping, names)
        branches = []
        for branch in expr.branches:
            inner = dict(mapping)
            pattern = _rename_pattern(branch.pattern, inner, names)
            branches.append(Branch(pattern, _rename(branch.body, inner, names)))
        return EMatch(scrutinee, tuple(branches), line=expr.line)
    raise TypeError(f"unknown expression node: {expr!r}")


def alpha_rename_decl(decl: FunDecl, names: Iterator[str]) -> FunDecl:
    """Rename every local binder of ``decl`` from the ``names`` stream.

    The declaration's own name is left alone (it is a global, and recursive
    references must keep resolving to it)."""
    mapping: Dict[str, str] = {}
    params = []
    for param, param_type in decl.params:
        fresh = next(names)
        mapping[param] = fresh
        params.append((fresh, param_type))
    mapping.pop(decl.name, None)  # a param shadowing the decl name keeps it
    body = _rename(decl.body, mapping, names)
    return FunDecl(decl.name, tuple(params), decl.return_type, body,
                   decl.recursive, line=decl.line)


def _hash_names() -> Iterator[str]:
    """Binder names for the hash-only canonical form.  ``%N`` is not a
    legal identifier, so these can never collide with source names."""
    return (f"%{i}" for i in itertools.count())


def _fresh_legal_names(forbidden: frozenset) -> Iterator[str]:
    for i in itertools.count():
        name = f"x{i}"
        if name not in forbidden:
            yield name


# ---------------------------------------------------------------------------
# Rendering back to surface syntax
# ---------------------------------------------------------------------------


def _render_pattern_atom(pattern: Pattern) -> str:
    text = _render_pattern(pattern)
    if isinstance(pattern, PCtor) and pattern.payload is not None:
        return f"({text})"
    return text


def _render_pattern(pattern: Pattern) -> str:
    if isinstance(pattern, PWild):
        return "_"
    if isinstance(pattern, PVar):
        return pattern.name
    if isinstance(pattern, PCtor):
        if pattern.payload is None:
            return pattern.ctor
        return f"{pattern.ctor} {_render_pattern_atom(pattern.payload)}"
    if isinstance(pattern, PTuple):
        return "(" + ", ".join(_render_pattern(item)
                               for item in pattern.items) + ")"
    raise TypeError(f"unknown pattern node: {pattern!r}")


def _render_expr(expr: Expr) -> str:
    """Fully parenthesized single-line surface syntax that re-parses to a
    structurally identical expression."""
    if isinstance(expr, EVar):
        return expr.name
    if isinstance(expr, ECtor):
        if expr.payload is None:
            return expr.ctor
        return f"({expr.ctor} {_render_expr(expr.payload)})"
    if isinstance(expr, ETuple):
        return "(" + ", ".join(_render_expr(item) for item in expr.items) + ")"
    if isinstance(expr, EApp):
        return f"({_render_expr(expr.fn)} {_render_expr(expr.arg)})"
    if isinstance(expr, EFun):
        return (f"(fun ({expr.param} : {pretty_type(expr.param_type)}) -> "
                f"{_render_expr(expr.body)})")
    if isinstance(expr, ELet):
        return (f"(let {expr.name} = {_render_expr(expr.value)} in "
                f"{_render_expr(expr.body)})")
    if isinstance(expr, EMatch):
        arms = " ".join(f"| {_render_pattern(b.pattern)} -> "
                        f"{_render_expr(b.body)}" for b in expr.branches)
        return f"(match {_render_expr(expr.scrutinee)} with {arms})"
    if isinstance(expr, EProj):
        raise ValueError("projection has no surface syntax; "
                         "fold it away before rendering")
    raise TypeError(f"unknown expression node: {expr!r}")


def render_fun_decl(decl: FunDecl) -> str:
    """One-line loadable source for a function declaration."""
    header = "let rec" if decl.recursive else "let"
    params = "".join(f" ({name} : {pretty_type(ty)})"
                     for name, ty in decl.params)
    annotation = (f" : {pretty_type(decl.return_type)}"
                  if decl.return_type is not None else "")
    return f"{header} {decl.name}{params}{annotation} = {_render_expr(decl.body)}"


def _render_decl(decl: object) -> str:
    if isinstance(decl, TypeDecl):
        return pretty_type_decl(decl)
    if isinstance(decl, FunDecl):
        return render_fun_decl(decl)
    raise TypeError(f"unknown declaration: {decl!r}")


# ---------------------------------------------------------------------------
# Module-level entry points
# ---------------------------------------------------------------------------


def _checked_module(definition: ModuleDefinition) -> Tuple[List[object], Program]:
    decls = parse_program(definition.source)
    program = Program()
    program.extend(PRELUDE_SOURCE)
    program.extend_declarations(decls)
    return decls, program


def canonical_declarations(definition: ModuleDefinition,
                           program: Optional[Program] = None,
                           decls: Optional[List[object]] = None) -> List[object]:
    """The module's declarations, folded and dead-branch-eliminated."""
    if program is None or decls is None:
        decls, program = _checked_module(definition)
    canonicalizer = _Canonicalizer(TypeChecker(program.types))
    out: List[object] = []
    for decl in decls:
        if isinstance(decl, FunDecl):
            out.append(canonicalizer.fun_decl(decl))
        else:
            out.append(decl)
    return out


def canonical_hash(definition: ModuleDefinition,
                   program: Optional[Program] = None,
                   decls: Optional[List[object]] = None) -> str:
    """A content key for the module: sha256 over the alpha-normalized
    canonical declarations plus the module interface.  Behaviourally
    identical modules (modulo local names, dead branches, and foldable
    constants) collide; interface or behaviour changes do not."""
    canonical = canonical_declarations(definition, program, decls)
    parts: List[str] = []
    for decl in canonical:
        if isinstance(decl, FunDecl):
            parts.append(render_fun_decl(alpha_rename_decl(decl, _hash_names())))
        else:
            parts.append(_render_decl(decl))
    parts.append(f"abstract = {pretty_type(definition.concrete_type)}")
    for operation in definition.operations:
        parts.append(f"operation {operation.name} : "
                     f"{pretty_type(operation.signature)}")
    parts.append(f"spec {definition.spec_name} : "
                 f"{pretty_type(definition.spec_signature)}")
    parts.append("components " + " ".join(definition.synthesis_components))
    parts.append("helpers " + " ".join(definition.helper_functions))
    payload = "\n".join(parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def declaration_dependency_hashes(definition: ModuleDefinition,
                                  program: Optional[Program] = None,
                                  decls: Optional[List[object]] = None
                                  ) -> Dict[str, str]:
    """Per-declaration content keys: ``name -> sha256`` for every module
    function declaration, hashing the declaration's alpha-normalized
    canonical form together with everything its behaviour depends on - its
    transitive callees among the module declarations, the module's type
    declarations, and the prelude (:data:`PRELUDE_HASH`).

    This is the invalidation unit of the persistent cache tier
    (:mod:`repro.serve.diskcache`): editing one operation changes only the
    keys of the declarations that (transitively) call it, so everything
    else warm-starts across processes.  Renamed locals, dead branches, and
    foldable constants do not change any key (same canonical form as
    :func:`canonical_hash`).
    """
    canonical = canonical_declarations(definition, program, decls)
    fun_decls = {d.name: d for d in canonical if isinstance(d, FunDecl)}
    type_parts = [_render_decl(d) for d in canonical if isinstance(d, TypeDecl)]
    rendered = {name: render_fun_decl(alpha_rename_decl(d, _hash_names()))
                for name, d in fun_decls.items()}
    graph = build_call_graph(list(fun_decls.values()))

    hashes: Dict[str, str] = {}
    for name in fun_decls:
        closure = {name}
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for callee in graph.get(current, frozenset()):
                if callee not in closure:
                    closure.add(callee)
                    frontier.append(callee)
        parts = [PRELUDE_HASH, *type_parts,
                 *(rendered[n] for n in sorted(closure))]
        hashes[name] = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
    return hashes


def canonicalize_definition(definition: ModuleDefinition) -> ModuleDefinition:
    """The same module with canonicalized, alpha-renamed (legal names)
    source — loadable and behaviourally identical to the original."""
    decls, program = _checked_module(definition)
    canonical = canonical_declarations(definition, program, decls)
    forbidden = frozenset(program.types.globals) \
        | frozenset(program.types.ctors) \
        | frozenset(program.types.datatypes)
    rendered: List[str] = []
    for decl in canonical:
        if isinstance(decl, FunDecl):
            decl = alpha_rename_decl(decl, _fresh_legal_names(forbidden))
        rendered.append(_render_decl(decl))
    return replace(definition, source="\n\n".join(rendered) + "\n")
