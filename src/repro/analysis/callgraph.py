"""Call-graph construction, unused-definition and termination analysis.

Three checks share the graph:

* **HAN003 (unused definition)** — a module-source declaration is dead when
  it is unreachable from the module *interface roots*: the declared
  operations, the specification, and every listed synthesis component or
  helper.  Type declarations count as used when a live definition mentions
  them in a signature, annotation, or constructor.
* **HAN004 (unprovable termination)** — every ``let rec`` must pass
  *size-change termination* (Lee, Jones, Ben-Amram, POPL 2001) over
  structural descent: an argument is *strictly smaller* than parameter
  *i* when it was bound under a constructor pattern while destructuring
  that parameter (or something already smaller than it).  Rebuilt tuples
  count as smaller when every component descends from the same parameter
  and at least one strictly — the rotate-a-queue idiom.  Each self-call
  contributes a size-change graph; the definition is accepted when every
  idempotent graph in the composition closure carries a strict self-edge,
  which covers both fixed-position descent and argument-swapping
  recursion (``merge ar b`` / ``merge br a``).  The check may still warn
  on exotic terminating definitions, never the other way around for the
  structural recursion the object language encourages.  Mutually
  recursive groups (call-graph cycles through more than one definition)
  are reported as unproven rather than analyzed.

The evaluator already guards non-termination dynamically with fuel, but a
diverging helper discovered as :class:`FuelExhausted` deep inside
enumeration costs an entire budget per probe; the static warning surfaces
it at load time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..lang.ast import (
    Branch,
    ECtor,
    EFun,
    ELet,
    EMatch,
    EProj,
    ETuple,
    EVar,
    EApp,
    Expr,
    FunDecl,
    PCtor,
    PTuple,
    PVar,
    PWild,
    Pattern,
    TypeDecl,
    free_vars,
)
from ..lang.types import TArrow, TData, TProd, Type
from .diagnostics import Diagnostic

__all__ = [
    "build_call_graph",
    "strongly_connected_components",
    "unused_definitions",
    "check_structural_recursion",
    "scan_module_declarations",
]


# ---------------------------------------------------------------------------
# Graph construction
# ---------------------------------------------------------------------------


def _decl_param_names(decl: FunDecl) -> Set[str]:
    return {name for name, _ in decl.params}


def build_call_graph(decls: Sequence[FunDecl]) -> Dict[str, FrozenSet[str]]:
    """``name -> called names`` over the given declarations only.

    Free variables of a body that name another declaration in ``decls`` are
    edges; parameters and local binders are excluded by ``free_vars``'s
    scoping, and references to prelude globals fall outside the node set.
    """
    names = {decl.name for decl in decls}
    graph: Dict[str, FrozenSet[str]] = {}
    for decl in decls:
        callees = (free_vars(decl.body) - _decl_param_names(decl)) & names
        graph[decl.name] = frozenset(callees)
    return graph


def strongly_connected_components(
        graph: Dict[str, FrozenSet[str]]) -> List[FrozenSet[str]]:
    """Tarjan's algorithm, iterative, in deterministic insertion order."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[FrozenSet[str]] = []
    counter = [0]

    for root in graph:
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = sorted(graph.get(node, frozenset()))
            for offset in range(child_index, len(children)):
                child = children[offset]
                if child not in index:
                    work[-1] = (node, offset + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(frozenset(component))
    return components


# ---------------------------------------------------------------------------
# Unused definitions
# ---------------------------------------------------------------------------


def _type_datatypes(ty: Optional[Type]) -> Set[str]:
    if ty is None:
        return set()
    if isinstance(ty, TData):
        return {ty.name}
    if isinstance(ty, TProd):
        result: Set[str] = set()
        for item in ty.items:
            result |= _type_datatypes(item)
        return result
    if isinstance(ty, TArrow):
        return _type_datatypes(ty.arg) | _type_datatypes(ty.result)
    return set()


def _expr_type_mentions(expr: Expr) -> Set[str]:
    """Datatype names mentioned in annotations inside an expression."""
    if isinstance(expr, EVar):
        return set()
    if isinstance(expr, ECtor):
        return _expr_type_mentions(expr.payload) if expr.payload is not None else set()
    if isinstance(expr, ETuple):
        result: Set[str] = set()
        for item in expr.items:
            result |= _expr_type_mentions(item)
        return result
    if isinstance(expr, EProj):
        return _expr_type_mentions(expr.expr)
    if isinstance(expr, EApp):
        return _expr_type_mentions(expr.fn) | _expr_type_mentions(expr.arg)
    if isinstance(expr, EFun):
        return _type_datatypes(expr.param_type) | _expr_type_mentions(expr.body)
    if isinstance(expr, ELet):
        return _expr_type_mentions(expr.value) | _expr_type_mentions(expr.body)
    if isinstance(expr, EMatch):
        result = _expr_type_mentions(expr.scrutinee)
        for branch in expr.branches:
            result |= _expr_type_mentions(branch.body)
        return result
    return set()


def _expr_ctor_uses(expr: Expr) -> Set[str]:
    """Constructor names used (built or matched on) inside an expression."""
    result: Set[str] = set()

    def pattern(p: Pattern) -> None:
        if isinstance(p, PCtor):
            result.add(p.ctor)
            if p.payload is not None:
                pattern(p.payload)
        elif isinstance(p, PTuple):
            for item in p.items:
                pattern(item)

    def walk(e: Expr) -> None:
        if isinstance(e, ECtor):
            result.add(e.ctor)
            if e.payload is not None:
                walk(e.payload)
        elif isinstance(e, ETuple):
            for item in e.items:
                walk(item)
        elif isinstance(e, EProj):
            walk(e.expr)
        elif isinstance(e, EApp):
            walk(e.fn)
            walk(e.arg)
        elif isinstance(e, EFun):
            walk(e.body)
        elif isinstance(e, ELet):
            walk(e.value)
            walk(e.body)
        elif isinstance(e, EMatch):
            walk(e.scrutinee)
            for branch in e.branches:
                pattern(branch.pattern)
                walk(branch.body)

    walk(expr)
    return result


def unused_definitions(decls: Sequence[object],
                       roots: Iterable[str]) -> List[object]:
    """Module declarations unreachable from the interface ``roots``.

    Function reachability follows the call graph; a type declaration is
    live when a live function mentions it (signature, annotation, or any
    of its constructors) or a live type declaration embeds it in a payload.
    """
    fun_decls = [d for d in decls if isinstance(d, FunDecl)]
    type_decls = [d for d in decls if isinstance(d, TypeDecl)]
    graph = build_call_graph(fun_decls)

    live: Set[str] = set()
    frontier = [name for name in roots if name in graph]
    while frontier:
        name = frontier.pop()
        if name in live:
            continue
        live.add(name)
        frontier.extend(graph.get(name, frozenset()))

    ctor_owner = {ctor.name: decl.name for decl in type_decls
                  for ctor in decl.ctors}
    live_types: Set[str] = set()
    for decl in fun_decls:
        if decl.name not in live:
            continue
        mentions = _expr_type_mentions(decl.body)
        mentions |= _type_datatypes(decl.return_type)
        for _, param_type in decl.params:
            mentions |= _type_datatypes(param_type)
        for ctor in _expr_ctor_uses(decl.body):
            if ctor in ctor_owner:
                mentions.add(ctor_owner[ctor])
        live_types |= mentions
    # A live type keeps the types its constructor payloads mention alive.
    changed = True
    payload_mentions = {
        decl.name: set().union(*[_type_datatypes(c.payload)
                                 for c in decl.ctors]) if decl.ctors else set()
        for decl in type_decls
    }
    while changed:
        changed = False
        for name in list(live_types):
            extra = payload_mentions.get(name, set()) - live_types
            if extra:
                live_types |= extra
                changed = True

    unused: List[object] = []
    for decl in decls:
        if isinstance(decl, FunDecl) and decl.name not in live:
            unused.append(decl)
        elif isinstance(decl, TypeDecl) and decl.name not in live_types:
            unused.append(decl)
    return unused


# ---------------------------------------------------------------------------
# Structural-recursion checking
# ---------------------------------------------------------------------------


# Relation of a local variable to the parameters of the enclosing recursive
# definition: a set of (parameter index, strictly smaller) pairs.
_Rel = Dict[str, FrozenSet[Tuple[int, bool]]]

_STRICT = "strict"
_NONSTRICT = "nonstrict"
_UNRELATED = "unrelated"


@dataclass
class _CallSite:
    args: Tuple[Expr, ...]
    partial: bool


def _bind_pattern(pattern: Pattern, rels: FrozenSet[Tuple[int, bool]],
                  under_ctor: bool, out: _Rel) -> None:
    """Record relations for variables bound by ``pattern`` when matching a
    value with relations ``rels``; crossing a constructor makes them strict."""
    if isinstance(pattern, PVar):
        out[pattern.name] = frozenset(
            (i, True) if under_ctor else (i, s) for i, s in rels)
    elif isinstance(pattern, PCtor) and pattern.payload is not None:
        _bind_pattern(pattern.payload, rels, True, out)
    elif isinstance(pattern, PTuple):
        for item in pattern.items:
            # Tuple components keep their ancestor's strictness: projecting
            # out of a product does not cross a constructor cell.
            _bind_pattern(item, rels, under_ctor, out)


def _arg_relation(arg: Expr, rel: _Rel, j: int) -> str:
    """How ``arg`` compares (in structural size) to parameter ``j``."""
    if isinstance(arg, EVar):
        pairs = rel.get(arg.name, frozenset())
        if (j, True) in pairs:
            return _STRICT
        if (j, False) in pairs:
            return _NONSTRICT
        return _UNRELATED
    if isinstance(arg, ETuple):
        relations = [_arg_relation(item, rel, j) for item in arg.items]
        if any(r == _UNRELATED for r in relations):
            return _UNRELATED
        if any(r == _STRICT for r in relations):
            return _STRICT
        return _NONSTRICT
    return _UNRELATED


# A size-change graph: for each (param i, arg position j) the strongest
# provable size relation, ``True`` for strictly-smaller and ``False`` for
# no-larger.  Absent pairs are unrelated.
_SizeGraph = Tuple[Tuple[int, int, bool], ...]


def _call_graph_edges(site: "_CallSite", rel: _Rel, arity: int) -> _SizeGraph:
    edges: List[Tuple[int, int, bool]] = []
    for j in range(min(arity, len(site.args))):
        for i in range(arity):
            relation = _arg_relation(site.args[j], rel, i)
            if relation == _STRICT:
                edges.append((i, j, True))
            elif relation == _NONSTRICT:
                edges.append((i, j, False))
    return tuple(sorted(edges))


def _compose(g1: _SizeGraph, g2: _SizeGraph) -> _SizeGraph:
    """Sequential composition of size-change graphs: an (i, k) edge exists
    when some j links them, strict when either leg is strict.  Every base
    inequality is simultaneously true, so keeping the strictest derived
    edge per pair is sound."""
    best: Dict[Tuple[int, int], bool] = {}
    by_source: Dict[int, List[Tuple[int, bool]]] = {}
    for j, k, strict in g2:
        by_source.setdefault(j, []).append((k, strict))
    for i, j, s1 in g1:
        for k, s2 in by_source.get(j, []):
            strict = s1 or s2
            if strict or not best.get((i, k), False):
                best[(i, k)] = best.get((i, k), False) or strict
    return tuple(sorted((i, k, s) for (i, k), s in best.items()))


def _size_change_terminates(graphs: Sequence[_SizeGraph]) -> bool:
    """Lee–Jones–Ben-Amram size-change termination for one self-recursive
    definition: close the call graphs under composition; the definition
    terminates when every idempotent graph in the closure carries a strict
    self-edge (some parameter strictly shrinks along every loop)."""
    closure: Set[_SizeGraph] = set(graphs)
    frontier = list(graphs)
    while frontier:
        graph = frontier.pop()
        for other in list(closure):
            for composed in (_compose(graph, other), _compose(other, graph)):
                if composed not in closure:
                    closure.add(composed)
                    frontier.append(composed)
    for graph in closure:
        if _compose(graph, graph) == graph:  # idempotent: a realizable loop
            if not any(i == j and strict for i, j, strict in graph):
                return False
    return True


def _uncurry(expr: EApp) -> Tuple[Expr, Tuple[Expr, ...]]:
    args: List[Expr] = []
    head: Expr = expr
    while isinstance(head, EApp):
        args.append(head.arg)
        head = head.fn
    return head, tuple(reversed(args))


def _collect_calls(expr: Expr, name: str, arity: int, rel: _Rel,
                   out: List[Tuple[_CallSite, _Rel]]) -> None:
    if isinstance(expr, EVar):
        if expr.name == name:
            # A bare reference outside application position escapes the
            # structural argument discipline entirely.
            out.append((_CallSite((), True), dict(rel)))
        return
    if isinstance(expr, ECtor):
        if expr.payload is not None:
            _collect_calls(expr.payload, name, arity, rel, out)
        return
    if isinstance(expr, ETuple):
        for item in expr.items:
            _collect_calls(item, name, arity, rel, out)
        return
    if isinstance(expr, EProj):
        _collect_calls(expr.expr, name, arity, rel, out)
        return
    if isinstance(expr, EApp):
        head, args = _uncurry(expr)
        if isinstance(head, EVar) and head.name == name:
            out.append((_CallSite(args, len(args) < arity), dict(rel)))
            for arg in args:
                _collect_calls(arg, name, arity, rel, out)
            return
        _collect_calls(expr.fn, name, arity, rel, out)
        _collect_calls(expr.arg, name, arity, rel, out)
        return
    if isinstance(expr, EFun):
        inner = dict(rel)
        inner.pop(expr.param, None)
        if expr.param != name:
            _collect_calls(expr.body, name, arity, inner, out)
        return
    if isinstance(expr, ELet):
        _collect_calls(expr.value, name, arity, rel, out)
        inner = dict(rel)
        inner.pop(expr.name, None)
        if expr.name != name:
            _collect_calls(expr.body, name, arity, inner, out)
        return
    if isinstance(expr, EMatch):
        _collect_calls(expr.scrutinee, name, arity, rel, out)
        scrutinee_rels = (rel.get(expr.scrutinee.name, frozenset())
                          if isinstance(expr.scrutinee, EVar) else frozenset())
        for branch in expr.branches:
            inner = dict(rel)
            bound: _Rel = {}
            _bind_pattern(branch.pattern, scrutinee_rels, False, bound)
            # Pattern variables shadow; unbound-relation vars drop out.
            for var in _pattern_names(branch.pattern):
                inner.pop(var, None)
            inner.update(bound)
            if name not in _pattern_names(branch.pattern):
                _collect_calls(branch.body, name, arity, inner, out)
        return


def _pattern_names(pattern: Pattern) -> Set[str]:
    if isinstance(pattern, PVar):
        return {pattern.name}
    if isinstance(pattern, PCtor) and pattern.payload is not None:
        return _pattern_names(pattern.payload)
    if isinstance(pattern, PTuple):
        result: Set[str] = set()
        for item in pattern.items:
            result |= _pattern_names(item)
        return result
    return set()


def check_structural_recursion(decl: FunDecl) -> Optional[str]:
    """``None`` when the definition passes size-change termination,
    otherwise a human-readable reason.

    Each self-call yields a size-change graph relating every argument
    position to every parameter; the definition is accepted when the
    composition closure of those graphs gives every idempotent loop a
    strictly-decreasing parameter.  This subsumes the fixed-position
    structural check and additionally proves argument-swapping recursion
    such as ``merge ar b`` / ``merge br a`` over two trees."""
    rel: _Rel = {param: frozenset({(i, False)})
                 for i, (param, _) in enumerate(decl.params)}
    calls: List[Tuple[_CallSite, _Rel]] = []
    _collect_calls(decl.body, decl.name, len(decl.params), rel, calls)
    if not calls:
        return None
    if any(site.partial for site, _ in calls):
        return ("passes itself around (partial application or bare "
                "reference), so no argument position can be checked")
    arity = len(decl.params)
    graphs = [_call_graph_edges(site, site_rel, arity)
              for site, site_rel in calls]
    if _size_change_terminates(graphs):
        return None
    return ("no combination of argument positions shrinks strictly along "
            "every recursive path (size-change termination fails)")


# ---------------------------------------------------------------------------
# Module-level driver
# ---------------------------------------------------------------------------


def scan_module_declarations(decls: Sequence[object],
                             roots: Iterable[str]) -> List[Diagnostic]:
    """HAN003 and HAN004 diagnostics over the module's own declarations."""
    diagnostics: List[Diagnostic] = []

    for decl in unused_definitions(decls, roots):
        kind = "type" if isinstance(decl, TypeDecl) else "definition"
        diagnostics.append(Diagnostic(
            "HAN003",
            f"{kind} {decl.name!r} is not reachable from the module "
            f"interface (operations, specification, or components)",
            line=getattr(decl, "line", None), decl=decl.name))

    fun_decls = [d for d in decls if isinstance(d, FunDecl)]
    graph = build_call_graph(fun_decls)
    by_name = {d.name: d for d in fun_decls}
    mutual: Set[str] = set()
    for component in strongly_connected_components(graph):
        if len(component) > 1:
            mutual |= component
            members = ", ".join(sorted(component))
            for name in sorted(component):
                diagnostics.append(Diagnostic(
                    "HAN004",
                    f"mutual recursion between {members} is not checked "
                    f"for structural termination",
                    line=by_name[name].line, decl=name))

    for decl in fun_decls:
        if decl.name in mutual:
            continue
        reason = check_structural_recursion(decl)
        if reason is not None:
            diagnostics.append(Diagnostic(
                "HAN004",
                f"recursive definition {decl.name!r}: {reason}",
                line=decl.line, decl=decl.name))
    return diagnostics
