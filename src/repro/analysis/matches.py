"""Match exhaustiveness and unreachable-branch analysis (HAN001 / HAN002).

The type checker validates that every branch of a ``match`` is well typed,
but says nothing about *coverage*: a non-exhaustive match only fails at
runtime as a :class:`repro.lang.errors.MatchFailure`, typically deep inside
enumeration where the offending input is invisible.  This pass decides
coverage statically with Maranget's pattern-matrix *usefulness* algorithm
("Warnings for pattern matching", JFP 2007):

* a match is exhaustive iff a wildcard row is *not* useful with respect to
  the matrix of all branch patterns — and when it is useful, specializing
  against every constructor yields a concrete **witness value** no branch
  covers, which we render into the diagnostic;
* branch *i* is unreachable iff its pattern row is not useful with respect
  to the rows above it.

Pattern matrices are typed: constructor columns specialize against the
declared constructor universe (``TypeEnvironment.datatype_ctors``), tuple
columns against the single tuple constructor, and *open* columns (abstract
or arrow types, which no pattern can inspect) only via the default matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..lang.ast import (
    Branch,
    ECtor,
    EFun,
    ELet,
    EMatch,
    EProj,
    ETuple,
    EVar,
    EApp,
    Expr,
    FunDecl,
    PCtor,
    PTuple,
    PVar,
    PWild,
    Pattern,
)
from ..lang.typecheck import TypeChecker
from ..lang.types import TData, TProd, Type
from .diagnostics import Diagnostic

__all__ = [
    "is_exhaustive",
    "missing_witness",
    "render_pattern",
    "unreachable_branches",
    "scan_declaration",
]

_WILD = PWild()


def render_pattern(pattern: Pattern) -> str:
    """Human-readable form of a (witness) pattern for diagnostics."""
    if isinstance(pattern, PWild):
        return "_"
    if isinstance(pattern, PVar):
        return pattern.name
    if isinstance(pattern, PTuple):
        return "(" + ", ".join(render_pattern(p) for p in pattern.items) + ")"
    assert isinstance(pattern, PCtor)
    if pattern.payload is None:
        return pattern.ctor
    payload = render_pattern(pattern.payload)
    if isinstance(pattern.payload, PCtor) and pattern.payload.payload is not None:
        payload = f"({payload})"
    return f"{pattern.ctor} {payload}"

# A row is a tuple of patterns; the matrix is a list of rows.  Column types
# travel alongside as a tuple of the same width.
Row = Tuple[Pattern, ...]


def _ctor_arity(payload: Optional[Type]) -> int:
    return 0 if payload is None else 1


def _specialize_row(row: Row, ctor: str, arity: int) -> Optional[Row]:
    """Specialize one row against constructor ``ctor`` (Maranget's S)."""
    head, rest = row[0], row[1:]
    if isinstance(head, (PWild, PVar)):
        return tuple([_WILD] * arity) + rest
    if isinstance(head, PCtor):
        if head.ctor != ctor:
            return None
        payload = (head.payload,) if head.payload is not None else ()
        if len(payload) != arity:
            # ``C _`` rows for a payload-less constructor cannot type check,
            # so this only happens on ill-typed input; treat as no match.
            return None
        return payload + rest
    return None


def _specialize_tuple_row(row: Row, width: int) -> Optional[Row]:
    """Specialize one row against the (sole) tuple constructor of ``width``."""
    head, rest = row[0], row[1:]
    if isinstance(head, (PWild, PVar)):
        return tuple([_WILD] * width) + rest
    if isinstance(head, PTuple) and len(head.items) == width:
        return tuple(head.items) + rest
    return None


def _default_row(row: Row) -> Optional[Row]:
    """Maranget's default matrix D: keep rows whose head matches anything."""
    head, rest = row[0], row[1:]
    if isinstance(head, (PWild, PVar)):
        return rest
    return None


def _useful(matrix: List[Row], vector: Row, types: Tuple[Type, ...],
            env) -> bool:
    """Is ``vector`` useful w.r.t. ``matrix``?  (Maranget's U.)"""
    if not vector:
        return not matrix
    head, ty = vector[0], types[0]

    if isinstance(head, PCtor):
        info = env.ctor_info(head.ctor)
        arity = _ctor_arity(info.payload)
        sub_types = ((info.payload,) if info.payload is not None else ()) + types[1:]
        sub_matrix = [r for r in (_specialize_row(row, head.ctor, arity)
                                  for row in matrix) if r is not None]
        sub_vector = _specialize_row(vector, head.ctor, arity)
        return _useful(sub_matrix, sub_vector, sub_types, env)

    if isinstance(head, PTuple):
        width = len(head.items)
        item_types = ty.items if isinstance(ty, TProd) else tuple([ty] * width)
        sub_types = tuple(item_types) + types[1:]
        sub_matrix = [r for r in (_specialize_tuple_row(row, width)
                                  for row in matrix) if r is not None]
        sub_vector = _specialize_tuple_row(vector, width)
        return _useful(sub_matrix, sub_vector, sub_types, env)

    # Wildcard / variable head.
    if isinstance(ty, TData) and ty.name in env.datatypes:
        universe = env.datatype_ctors(ty.name)
        used = {row[0].ctor for row in matrix if isinstance(row[0], PCtor)}
        if used and used >= {c.name for c in universe}:
            # Complete signature: useful iff useful under some constructor.
            for info in universe:
                arity = _ctor_arity(info.payload)
                sub_types = ((info.payload,) if info.payload is not None
                             else ()) + types[1:]
                sub_matrix = [r for r in (_specialize_row(row, info.name, arity)
                                          for row in matrix) if r is not None]
                sub_vector = tuple([_WILD] * arity) + vector[1:]
                if _useful(sub_matrix, sub_vector, sub_types, env):
                    return True
            return False
    elif isinstance(ty, TProd):
        width = len(ty.items)
        if any(isinstance(row[0], PTuple) for row in matrix):
            sub_types = tuple(ty.items) + types[1:]
            sub_matrix = [r for r in (_specialize_tuple_row(row, width)
                                      for row in matrix) if r is not None]
            sub_vector = tuple([_WILD] * width) + vector[1:]
            return _useful(sub_matrix, sub_vector, sub_types, env)

    # Open type, or an incomplete constructor signature: the default matrix.
    sub_matrix = [r for r in (_default_row(row) for row in matrix)
                  if r is not None]
    return _useful(sub_matrix, vector[1:], types[1:], env)


def _witness(matrix: List[Row], types: Tuple[Type, ...], env) -> Optional[Row]:
    """A pattern vector matched by no row of ``matrix``, or ``None``.

    This is the witness-producing variant of usefulness applied to an
    all-wildcard vector: the returned row is a (possibly partial, wildcards
    allowed) description of a value the match does not cover.
    """
    if not types:
        return None if matrix else ()

    ty = types[0]
    if isinstance(ty, TData) and ty.name in env.datatypes:
        universe = env.datatype_ctors(ty.name)
        used = {row[0].ctor for row in matrix if isinstance(row[0], PCtor)}
        if used >= {info.name for info in universe}:
            # Complete signature: a witness must start with some constructor.
            for info in universe:
                arity = _ctor_arity(info.payload)
                sub_types = ((info.payload,) if info.payload is not None
                             else ()) + types[1:]
                sub_matrix = [r for r in (_specialize_row(row, info.name, arity)
                                          for row in matrix) if r is not None]
                sub = _witness(sub_matrix, sub_types, env)
                if sub is not None:
                    payload = sub[0] if arity else None
                    return (PCtor(info.name, payload),) + sub[arity:]
            return None
        # Incomplete signature (Maranget, Prop. 2): exhaustiveness reduces
        # exactly to the default matrix, and any missing constructor heads
        # a witness.  This is also what keeps the search terminating on
        # recursive types: specialization only descends into rows that
        # actually spell the constructor out.
        sub_matrix = [r for r in (_default_row(row) for row in matrix)
                      if r is not None]
        sub = _witness(sub_matrix, types[1:], env)
        if sub is None:
            return None
        missing = next((info for info in universe if info.name not in used),
                       None)
        if missing is None:  # pragma: no cover - used ⊉ universe implies one
            return (_WILD,) + sub
        payload = _WILD if missing.payload is not None else None
        return (PCtor(missing.name, payload),) + sub

    if isinstance(ty, TProd):
        width = len(ty.items)
        sub_types = tuple(ty.items) + types[1:]
        sub_matrix = [r for r in (_specialize_tuple_row(row, width)
                                  for row in matrix) if r is not None]
        sub = _witness(sub_matrix, sub_types, env)
        if sub is None:
            return None
        return (PTuple(tuple(sub[:width])),) + sub[width:]

    # Open type: only wildcard-ish rows can cover it.
    sub_matrix = [r for r in (_default_row(row) for row in matrix)
                  if r is not None]
    sub = _witness(sub_matrix, types[1:], env)
    if sub is None:
        return None
    return (_WILD,) + sub


def is_exhaustive(branches: Sequence[Branch], scrutinee_type: Type, env) -> bool:
    return missing_witness(branches, scrutinee_type, env) is None


def missing_witness(branches: Sequence[Branch], scrutinee_type: Type,
                    env) -> Optional[Pattern]:
    """A pattern describing a value no branch covers, or ``None``."""
    matrix: List[Row] = [(b.pattern,) for b in branches]
    witness = _witness(matrix, (scrutinee_type,), env)
    return witness[0] if witness else None


def unreachable_branches(branches: Sequence[Branch], scrutinee_type: Type,
                         env) -> List[int]:
    """Indices of branches shadowed entirely by the branches above them."""
    unreachable: List[int] = []
    matrix: List[Row] = []
    for index, branch in enumerate(branches):
        row: Row = (branch.pattern,)
        if matrix and not _useful(matrix, row, (scrutinee_type,), env):
            unreachable.append(index)
        matrix.append(row)
    return unreachable


# ---------------------------------------------------------------------------
# Typed traversal of declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Site:
    match: EMatch
    scrutinee_type: Type


def _collect_matches(checker: TypeChecker, expr: Expr,
                     locals_: Dict[str, Type], out: List[_Site]) -> None:
    """Find every match site with its scrutinee type, mirroring the type
    checker's local-context threading."""
    if isinstance(expr, (EVar,)):
        return
    if isinstance(expr, ECtor):
        if expr.payload is not None:
            _collect_matches(checker, expr.payload, locals_, out)
        return
    if isinstance(expr, ETuple):
        for item in expr.items:
            _collect_matches(checker, item, locals_, out)
        return
    if isinstance(expr, EProj):
        _collect_matches(checker, expr.expr, locals_, out)
        return
    if isinstance(expr, EApp):
        _collect_matches(checker, expr.fn, locals_, out)
        _collect_matches(checker, expr.arg, locals_, out)
        return
    if isinstance(expr, EFun):
        inner = dict(locals_)
        inner[expr.param] = expr.param_type
        _collect_matches(checker, expr.body, inner, out)
        return
    if isinstance(expr, ELet):
        _collect_matches(checker, expr.value, locals_, out)
        inner = dict(locals_)
        inner[expr.name] = checker.infer(expr.value, locals_)
        _collect_matches(checker, expr.body, inner, out)
        return
    if isinstance(expr, EMatch):
        scrutinee_type = checker.infer(expr.scrutinee, locals_)
        out.append(_Site(expr, scrutinee_type))
        _collect_matches(checker, expr.scrutinee, locals_, out)
        for branch in expr.branches:
            bindings = checker._check_pattern(branch.pattern, scrutinee_type)
            inner = dict(locals_)
            inner.update(bindings)
            _collect_matches(checker, branch.body, inner, out)
        return
    raise TypeError(f"unknown expression node: {expr!r}")


def scan_declaration(checker: TypeChecker, decl: FunDecl) -> List[Diagnostic]:
    """HAN001/HAN002 diagnostics for every match expression in ``decl``."""
    locals_: Dict[str, Type] = dict(decl.params)
    if decl.recursive and decl.return_type is not None:
        from ..lang.types import arrow

        locals_[decl.name] = arrow(*[t for _, t in decl.params],
                                   decl.return_type)
    sites: List[_Site] = []
    _collect_matches(checker, decl.body, locals_, sites)

    diagnostics: List[Diagnostic] = []
    env = checker.env
    for site in sites:
        line = site.match.line if site.match.line is not None else decl.line
        witness = missing_witness(site.match.branches, site.scrutinee_type, env)
        if witness is not None:
            diagnostics.append(Diagnostic(
                "HAN001",
                f"non-exhaustive match on {site.scrutinee_type}: "
                f"no branch covers {render_pattern(witness)}",
                line=line, decl=decl.name))
        for index in unreachable_branches(site.match.branches,
                                          site.scrutinee_type, env):
            pattern = site.match.branches[index].pattern
            diagnostics.append(Diagnostic(
                "HAN002",
                f"branch {index + 1} ({pattern}) is unreachable: earlier "
                f"branches already cover every value it matches",
                line=line, decl=decl.name))
    return diagnostics
