"""Static analysis over object-language programs and module definitions.

Submodules
----------
``diagnostics``
    Stable ``HAN0xx`` codes, severities, and ``path:line:``-anchored
    rendering shared by every pass.
``matches``
    Match exhaustiveness and unreachable-branch detection (Maranget-style
    pattern-matrix usefulness with witnesses).
``callgraph``
    Call-graph construction, unused-definition reachability, and the
    structural-recursion termination check.
``reachability``
    Type-inhabitation reachability used to prune synthesis components
    soundly before term-pool construction.
``canon``
    Canonicalizing rewrites (folding, dead-branch elimination,
    alpha-normalization) and the canonical content hash that keys the
    evaluation/synthesis caches.
``domains``
    The abstract domains: intervals x parity for naturals, constructor
    sets x size intervals for datatypes, products component-wise, with
    ``alpha``/``join``/``widen``/``leq``.
``absint``
    The abstract interpreter over those domains (widening fixpoint for
    recursion) and the obligation verdicts (PROVEN/REFUTED/UNKNOWN)
    consumed by the linter's HAN006 pass and the verification ladder
    (``repro.verify.backend``; see ``docs/verification.md``).
``lint``
    The driver that runs every pass over one module and collects an
    :class:`~repro.analysis.lint.AnalysisReport`.

This package-level module re-exports only the diagnostic model; import
the pass modules directly (``from repro.analysis.lint import
analyze_definition``) so the synthesis layer can depend on
``reachability`` without pulling the whole analyzer in.
"""

from .diagnostics import DIAGNOSTIC_CODES, Diagnostic, Severity

__all__ = ["Diagnostic", "Severity", "DIAGNOSTIC_CODES"]
