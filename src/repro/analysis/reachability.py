"""Type-inhabitation reachability: which components can ever matter?

The bottom-up enumerator (:mod:`repro.synth.bottomup`) builds terms from
leaves (context variables, nullary constructors, nullary components) and
grows them exclusively by applying components — plus constructor chains for
the designated constant datatypes (``nat``).  A component whose result type
can never flow into a term of the goal type, or whose argument types can
never be produced, therefore contributes nothing but enumeration budget.

This pass computes two fixpoints over the *declared signatures* only:

* ``constructible``: the forward closure of the seed types (the synthesis
  context, every datatype with a nullary constructor) under component
  application — an **over**-approximation of the types the pool can build,
  so pruning on it never drops a component the pool could have used;
* ``useful``: the backward closure from the goal type — a component is
  useful when its result feeds the goal (directly or through other useful
  components' arguments) *and* all of its arguments are constructible.

``prune_components`` keeps exactly the useful components.  Because both
closures over-approximate, the surviving set is a superset of the
components that can actually appear in any well-typed pool term, which is
what makes replacing the component list with the pruned one sound: the
enumerated term streams — and hence the inferred invariants — are
identical.  The equivalence is additionally checked empirically across the
built-in suite (``tests/analysis/test_reachability.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..lang.typecheck import TypeEnvironment
from ..lang.types import TData, TProd, Type

__all__ = ["constructible_types", "split_components", "prune_components"]


def _destructured(seeds: Iterable[Type], env: TypeEnvironment) -> Set[Type]:
    """The downward closure of ``seeds``: everything pattern matching can
    extract (constructor payloads, tuple components), transitively."""
    closure: Set[Type] = set()
    frontier: List[Type] = list(seeds)
    while frontier:
        ty = frontier.pop()
        if ty in closure:
            continue
        closure.add(ty)
        if isinstance(ty, TProd):
            frontier.extend(ty.items)
        elif isinstance(ty, TData) and ty.name in env.datatypes:
            for info in env.datatype_ctors(ty.name):
                if info.payload is not None:
                    frontier.append(info.payload)
    return closure


def constructible_types(seeds: Iterable[Type], env: TypeEnvironment,
                        components: Sequence[object],
                        destructure: bool = False) -> Set[Type]:
    """Types a term pool over ``seeds`` and ``components`` could inhabit.

    ``components`` are objects with ``argument_types`` / ``result_type``
    (:class:`repro.synth.bottomup.TypedComponent` satisfies this).  With
    ``destructure`` the seeds are first closed downward, modelling the
    match-skeleton stage that destructures the concrete type before any
    pool is built.
    """
    constructible: Set[Type] = (
        _destructured(seeds, env) if destructure else set(seeds))
    # Every datatype with a nullary constructor has pool leaves.
    for name, decl in env.datatypes.items():
        if any(ctor.payload is None for ctor in decl.ctors):
            constructible.add(TData(name))
    changed = True
    while changed:
        changed = False
        for component in components:
            result = component.result_type
            if result in constructible:
                continue
            if all(arg in constructible for arg in component.argument_types):
                constructible.add(result)
                changed = True
    return constructible


def split_components(components: Sequence[object], seeds: Iterable[Type],
                     env: TypeEnvironment, goal: Type,
                     destructure: bool = False) -> Tuple[List[object], List[object]]:
    """Partition ``components`` into (useful, useless) for terms of ``goal``."""
    constructible = constructible_types(seeds, env, components,
                                        destructure=destructure)
    needed: Set[Type] = {goal}
    useful: Set[int] = set()
    changed = True
    while changed:
        changed = False
        for index, component in enumerate(components):
            if index in useful:
                continue
            if component.result_type not in needed:
                continue
            if all(arg in constructible for arg in component.argument_types):
                useful.add(index)
                needed.update(component.argument_types)
                changed = True
    kept = [c for i, c in enumerate(components) if i in useful]
    dropped = [c for i, c in enumerate(components) if i not in useful]
    return kept, dropped


def prune_components(components: Sequence[object], seeds: Iterable[Type],
                     env: TypeEnvironment, goal: Type,
                     destructure: bool = False) -> List[object]:
    """The components that can contribute to a term of ``goal`` — order
    preserved, so downstream enumeration order is unchanged."""
    kept, _ = split_components(components, seeds, env, goal,
                               destructure=destructure)
    return kept
