"""Diagnostic model for the static-analysis layer.

Every finding the analyzer produces is a :class:`Diagnostic` with a stable
``HAN0xx`` code, a severity, and a 1-based source line anchor.  Rendering
follows the ``path:line: message`` convention established by
:class:`repro.spec.errors.SpecFileError`, so lint output, load errors, and
runtime diagnostics all look alike to tools and humans.

Code registry
-------------
========  ========  ====================================================
Code      Severity  Meaning
========  ========  ====================================================
HAN000    error     module fails to parse or type check
HAN001    warning   non-exhaustive match (a value no branch covers)
HAN002    warning   unreachable match branch
HAN003    warning   definition unused by the module interface
HAN004    warning   recursive definition without a provable structural
                    decrease (possible non-termination under evaluation)
HAN005    info      synthesis component that can never appear in a term
                    of the goal type (pruned before pool construction)
HAN006    warning   operation statically proven to violate the expected
                    invariant (abstract interpretation found that every
                    completing application breaks it)
========  ========  ====================================================

Severities: ``error`` (the module is unusable), ``warning`` (runtime
failures or dead weight the author should fix; these fail ``repro lint``),
``info`` (advisory; never fails a lint run).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

__all__ = [
    "Severity",
    "Diagnostic",
    "DIAGNOSTIC_CODES",
    "ERROR",
    "WARNING",
    "INFO",
    "worst_severity",
]

ERROR = "error"
WARNING = "warning"
INFO = "info"

Severity = str

_SEVERITY_RANK = {INFO: 0, WARNING: 1, ERROR: 2}

#: code -> (default severity, short title)
DIAGNOSTIC_CODES = {
    "HAN000": (ERROR, "module fails to parse or type check"),
    "HAN001": (WARNING, "non-exhaustive match"),
    "HAN002": (WARNING, "unreachable match branch"),
    "HAN003": (WARNING, "unused definition"),
    "HAN004": (WARNING, "unprovable structural termination"),
    "HAN005": (INFO, "synthesis component unusable for the goal type"),
    "HAN006": (WARNING, "operation statically proven to violate the expected invariant"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, anchored to a source position.

    ``line`` is 1-based and refers to the module source recorded in the
    definition (directive lines blanked), which keeps the original file's
    numbering, so anchors point into the file the user wrote.
    """

    code: str
    message: str
    severity: Severity = field(default="")
    line: Optional[int] = None
    decl: Optional[str] = None
    path: str = "<module>"

    def __post_init__(self):
        if self.code not in DIAGNOSTIC_CODES:
            raise ValueError(f"unknown diagnostic code: {self.code}")
        if not self.severity:
            object.__setattr__(self, "severity", DIAGNOSTIC_CODES[self.code][0])
        elif self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity: {self.severity}")

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self.severity]

    def at_path(self, path: str) -> "Diagnostic":
        return replace(self, path=path)

    def render(self) -> str:
        location = f"{self.path}:{self.line}" if self.line is not None else self.path
        where = f" [{self.decl}]" if self.decl else ""
        return f"{location}: {self.code} {self.severity}:{where} {self.message}"

    def __str__(self) -> str:  # pragma: no cover - debugging convenience
        return self.render()


def worst_severity(diagnostics: Tuple[Diagnostic, ...]) -> Optional[Severity]:
    """The highest severity present, or ``None`` for an empty set."""
    if not diagnostics:
        return None
    return max(diagnostics, key=lambda d: d.rank).severity
