"""Abstract domains for the object language.

Three non-relational domains, combined per type:

* **Intervals** over non-negative integers (Peano naturals): a pair
  ``[lo, hi]`` with ``hi = None`` meaning unbounded.  Widening jumps an
  unstable bound to its extreme (``lo`` to 0, ``hi`` to infinity), so every
  ascending chain stabilizes in at most two steps per bound.
* **Parity** of naturals: a two-bit set ``{even, odd}``.
* **Constructor sets with an ADT-size interval** for every other datatype:
  which head constructors a value may have, plus an interval bounding its
  :func:`~repro.lang.values.value_size` (booleans are the degenerate case -
  nullary constructors ``True``/``False`` of size 1).

An abstract value is one of

* :class:`AbsNat` - interval x parity, for values of type ``nat``;
* :class:`AbsData` - constructor set x size interval, for any other datatype;
* :class:`AbsTuple` - a product, component-wise;
* :class:`AbsFun` - an opaque function value (closures are not analyzed
  through abstract application; see :mod:`repro.analysis.absint`);
* :data:`ABS_TOP` - the universal top (no information);
* ``None`` - bottom (unreachable / no value), by module-wide convention.

The concretization of each form is the obvious one; :func:`alpha` abstracts a
single concrete value exactly, :func:`top_of` gives the top element of a
type, and :func:`join` / :func:`widen` / :func:`leq` are the lattice
operations the interpreter's fixpoint uses.  Soundness of the whole tier
reduces to ``alpha(v) <= join(alpha(v), x)`` and the transfer functions of
``absint`` preserving membership - the property pinned by
``tests/analysis/test_absint.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from ..lang.typecheck import TypeEnvironment
from ..lang.types import TArrow, TData, TProd, Type
from ..lang.values import VCtor, VTuple, Value

__all__ = [
    "PARITY_EVEN",
    "PARITY_ODD",
    "PARITY_TOP",
    "Interval",
    "interval_join",
    "interval_meet",
    "interval_widen",
    "AbsValue",
    "AbsTop",
    "ABS_TOP",
    "AbsNat",
    "AbsData",
    "AbsTuple",
    "AbsFun",
    "ABS_FUN",
    "abs_nat",
    "abs_data",
    "nat_const",
    "join",
    "widen",
    "leq",
    "alpha",
    "top_of",
    "size_of",
    "definitely_true",
    "definitely_false",
    "NAT",
]

NAT = "nat"

# Parity is a two-bit set: bit 1 = "may be even", bit 2 = "may be odd".
PARITY_EVEN = 1
PARITY_ODD = 2
PARITY_TOP = PARITY_EVEN | PARITY_ODD


def parity_of(n: int) -> int:
    return PARITY_EVEN if n % 2 == 0 else PARITY_ODD


def parity_flip(parity: int) -> int:
    """The parity set of ``n + 1`` given the parity set of ``n``."""
    return ((parity & PARITY_EVEN) << 1) | ((parity & PARITY_ODD) >> 1)


@dataclass(frozen=True)
class Interval:
    """A non-empty interval of non-negative integers; ``hi=None`` = unbounded."""

    lo: int = 0
    hi: Optional[int] = None

    def contains(self, n: int) -> bool:
        return self.lo <= n and (self.hi is None or n <= self.hi)

    def shift(self, k: int) -> "Interval":
        """The interval of ``n + k`` (clamped at 0 for negative ``k``)."""
        return Interval(max(0, self.lo + k),
                        None if self.hi is None else max(0, self.hi + k))

    @property
    def singleton(self) -> Optional[int]:
        return self.lo if self.hi == self.lo else None


def interval_join(a: Interval, b: Interval) -> Interval:
    return Interval(min(a.lo, b.lo),
                    None if a.hi is None or b.hi is None else max(a.hi, b.hi))


def interval_meet(a: Interval, b: Interval) -> Optional[Interval]:
    lo = max(a.lo, b.lo)
    if a.hi is None:
        hi = b.hi
    elif b.hi is None:
        hi = a.hi
    else:
        hi = min(a.hi, b.hi)
    if hi is not None and hi < lo:
        return None
    return Interval(lo, hi)


def interval_widen(old: Interval, new: Interval) -> Interval:
    """Standard interval widening: an unstable bound jumps to its extreme.

    ``new`` is the join of the old value with the latest iterate, so each
    bound either stays put or moves outward; a moved bound is widened away
    entirely, which bounds every fixpoint iteration to a finite chain.
    """
    lo = old.lo if new.lo >= old.lo else 0
    if old.hi is None or new.hi is None or new.hi > old.hi:
        hi = old.hi if old.hi is not None and new.hi == old.hi else None
    else:
        hi = old.hi
    return Interval(lo, hi)


class AbsValue:
    """Base class of abstract values (bottom is ``None``, not a subclass)."""

    __slots__ = ()


@dataclass(frozen=True)
class AbsTop(AbsValue):
    """No information: any value of any type."""


ABS_TOP = AbsTop()


@dataclass(frozen=True)
class AbsNat(AbsValue):
    """A Peano natural: value interval x parity set."""

    interval: Interval = Interval()
    parity: int = PARITY_TOP


@dataclass(frozen=True)
class AbsData(AbsValue):
    """A non-``nat`` datatype value: head-constructor set x size interval.

    Payloads are not tracked (the domain is non-relational); the size
    interval bounds :func:`~repro.lang.values.value_size` of the whole value,
    which is what lets match refinement shrink payload abstractions.
    """

    datatype: str
    ctors: FrozenSet[str]
    size: Interval = Interval(1, None)


@dataclass(frozen=True)
class AbsTuple(AbsValue):
    items: Tuple[AbsValue, ...]


@dataclass(frozen=True)
class AbsFun(AbsValue):
    """An opaque function value (closure or partial application)."""


ABS_FUN = AbsFun()


# -- smart constructors (normalize to bottom) -------------------------------------


def abs_nat(interval: Optional[Interval], parity: int = PARITY_TOP) -> Optional[AbsValue]:
    """An :class:`AbsNat`, or bottom when interval and parity are inconsistent."""
    if interval is None or parity == 0:
        return None
    n = interval.singleton
    if n is not None:
        if not parity & parity_of(n):
            return None
        parity = parity_of(n)
    return AbsNat(interval, parity)


def nat_const(n: int) -> AbsNat:
    return AbsNat(Interval(n, n), parity_of(n))


def abs_data(datatype: str, ctors: FrozenSet[str],
             size: Optional[Interval]) -> Optional[AbsValue]:
    if not ctors or size is None:
        return None
    return AbsData(datatype, ctors, size)


# -- lattice operations -----------------------------------------------------------


def join(a: Optional[AbsValue], b: Optional[AbsValue]) -> Optional[AbsValue]:
    if a is None:
        return b
    if b is None:
        return a
    if isinstance(a, AbsTop) or isinstance(b, AbsTop):
        return ABS_TOP
    if isinstance(a, AbsNat) and isinstance(b, AbsNat):
        return AbsNat(interval_join(a.interval, b.interval), a.parity | b.parity)
    if isinstance(a, AbsData) and isinstance(b, AbsData) and a.datatype == b.datatype:
        return AbsData(a.datatype, a.ctors | b.ctors, interval_join(a.size, b.size))
    if (isinstance(a, AbsTuple) and isinstance(b, AbsTuple)
            and len(a.items) == len(b.items)):
        return AbsTuple(tuple(join(x, y) for x, y in zip(a.items, b.items)))
    if isinstance(a, AbsFun) and isinstance(b, AbsFun):
        return ABS_FUN
    # Mismatched shapes cannot arise from well-typed code; losing all
    # information is the sound answer either way.
    return ABS_TOP


def widen(old: Optional[AbsValue], new: Optional[AbsValue]) -> Optional[AbsValue]:
    """Widen ``old`` by ``new`` (callers pass ``new = join(old, latest)``)."""
    if old is None or new is None:
        return new if old is None else old
    if isinstance(old, AbsNat) and isinstance(new, AbsNat):
        return AbsNat(interval_widen(old.interval, new.interval), new.parity)
    if isinstance(old, AbsData) and isinstance(new, AbsData) \
            and old.datatype == new.datatype:
        return AbsData(new.datatype, new.ctors,
                       interval_widen(old.size, new.size))
    if (isinstance(old, AbsTuple) and isinstance(new, AbsTuple)
            and len(old.items) == len(new.items)):
        return AbsTuple(tuple(widen(x, y)
                              for x, y in zip(old.items, new.items)))
    return new if leq(old, new) else ABS_TOP


def leq(a: Optional[AbsValue], b: Optional[AbsValue]) -> bool:
    """``a`` is at most ``b`` (every concretization of ``a`` is in ``b``)."""
    if a is None:
        return True
    if b is None:
        return False
    if isinstance(b, AbsTop):
        return True
    if isinstance(a, AbsTop):
        return False
    if isinstance(a, AbsNat) and isinstance(b, AbsNat):
        return (b.interval.lo <= a.interval.lo
                and (b.interval.hi is None
                     or (a.interval.hi is not None and a.interval.hi <= b.interval.hi))
                and (a.parity | b.parity) == b.parity)
    if isinstance(a, AbsData) and isinstance(b, AbsData):
        return (a.datatype == b.datatype
                and a.ctors <= b.ctors
                and b.size.lo <= a.size.lo
                and (b.size.hi is None
                     or (a.size.hi is not None and a.size.hi <= b.size.hi)))
    if isinstance(a, AbsTuple) and isinstance(b, AbsTuple):
        return (len(a.items) == len(b.items)
                and all(leq(x, y) for x, y in zip(a.items, b.items)))
    if isinstance(a, AbsFun) and isinstance(b, AbsFun):
        return True
    return False


# -- abstraction / type tops ------------------------------------------------------


def _nat_value(value: Value) -> Optional[int]:
    """The integer behind an ``O``/``S`` chain, or None for non-nat values."""
    n = 0
    while isinstance(value, VCtor) and value.ctor == "S":
        n += 1
        value = value.payload
    if isinstance(value, VCtor) and value.ctor == "O" and value.payload is None:
        return n
    return None


def _concrete_size(value: Value) -> int:
    if isinstance(value, VCtor):
        return 1 + (_concrete_size(value.payload) if value.payload is not None else 0)
    if isinstance(value, VTuple):
        return 1 + sum(_concrete_size(v) for v in value.items)
    return 1


def alpha(value: Value, env: TypeEnvironment) -> AbsValue:
    """The exact abstraction of one concrete value."""
    if isinstance(value, VCtor):
        info = env.ctors.get(value.ctor)
        if info is not None and info.datatype == NAT:
            n = _nat_value(value)
            if n is not None:
                return nat_const(n)
            return AbsNat()  # a malformed chain cannot arise from eval
        size = _concrete_size(value)
        datatype = info.datatype if info is not None else "?"
        return AbsData(datatype, frozenset((value.ctor,)), Interval(size, size))
    if isinstance(value, VTuple):
        return AbsTuple(tuple(alpha(v, env) for v in value.items))
    return ABS_FUN


def top_of(ty: Type, env: TypeEnvironment) -> AbsValue:
    """The top abstract value of one object-language type."""
    if isinstance(ty, TData):
        if ty.name == NAT:
            return AbsNat()
        decl = env.datatypes.get(ty.name)
        if decl is None:
            return ABS_TOP
        return AbsData(ty.name,
                       frozenset(c.name for c in decl.ctors),
                       Interval(1, None))
    if isinstance(ty, TProd):
        return AbsTuple(tuple(top_of(item, env) for item in ty.items))
    if isinstance(ty, TArrow):
        return ABS_FUN
    return ABS_TOP  # TAbstract or anything unforeseen


def size_of(abs_value: AbsValue) -> Interval:
    """An interval bounding :func:`~repro.lang.values.value_size`."""
    if isinstance(abs_value, AbsNat):
        return abs_value.interval.shift(1)
    if isinstance(abs_value, AbsData):
        return abs_value.size
    if isinstance(abs_value, AbsTuple):
        sizes = [size_of(item) for item in abs_value.items]
        lo = 1 + sum(s.lo for s in sizes)
        hi = None if any(s.hi is None for s in sizes) else 1 + sum(s.hi for s in sizes)
        return Interval(lo, hi)
    if isinstance(abs_value, AbsFun):
        return Interval(1, 1)
    return Interval(1, None)


# -- boolean verdicts -------------------------------------------------------------


def definitely_true(abs_value: Optional[AbsValue]) -> bool:
    return (isinstance(abs_value, AbsData)
            and abs_value.ctors == frozenset(("True",)))


def definitely_false(abs_value: Optional[AbsValue]) -> bool:
    return (isinstance(abs_value, AbsData)
            and abs_value.ctors == frozenset(("False",)))
