"""The analysis driver: run every pass over one module definition.

:func:`analyze_definition` is the programmatic entry point behind the
``repro lint`` CLI subcommand and ``repro fuzz --lint``.  It parses and
checks the module source, then runs:

* match exhaustiveness / unreachable branches (HAN001, HAN002),
* call-graph reachability and structural recursion (HAN003, HAN004),
* component-usefulness reachability for the synthesis goal (HAN005),
* abstract interpretation of each operation against the expected-invariant
  oracle, when the definition carries one (HAN006),
* the canonicalizing passes, whose alpha-normalized hash is reported as
  the module's ``content_hash`` (the cache content key).

Each pass runs inside an ``obs`` span (``analysis`` with one child per
pass, category ``analysis``), so ``repro trace`` breakdowns show analysis
time per phase next to inference phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.module import ModuleDefinition
from ..lang.ast import FunDecl, free_vars
from ..lang.errors import LangError
from ..lang.parser import parse_program
from ..lang.prelude import PRELUDE_SOURCE
from ..lang.program import Program
from ..lang.typecheck import TypeChecker
from ..lang.types import TArrow, TData, Type
from ..obs import NULL_EMITTER
from .absint import REFUTED, AbstractChecker
from .callgraph import scan_module_declarations
from .canon import canonical_hash
from .diagnostics import Diagnostic, WARNING, worst_severity
from .matches import scan_declaration
from .reachability import split_components

__all__ = ["AnalysisReport", "analyze_definition", "analyze_file"]

GOAL_TYPE = TData("bool")


@dataclass(frozen=True)
class AnalysisReport:
    """Every finding for one module, plus its canonical content hash."""

    module: str
    path: str
    diagnostics: Tuple[Diagnostic, ...]
    content_hash: str
    pruned_components: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """Lint-clean: nothing at warning severity or above."""
        return all(d.rank < 1 for d in self.diagnostics)

    @property
    def worst(self) -> Optional[str]:
        return worst_severity(self.diagnostics)

    def render(self) -> str:
        lines = [d.render() for d in self.diagnostics]
        return "\n".join(lines)


@dataclass(frozen=True)
class _Component:
    """A (name, signature) view satisfying the reachability protocol."""

    name: str
    argument_types: Tuple[Type, ...]
    result_type: Type


def _uncurry_signature(signature: Type) -> Tuple[Tuple[Type, ...], Type]:
    args: List[Type] = []
    while isinstance(signature, TArrow):
        args.append(signature.arg)
        signature = signature.result
    return tuple(args), signature


def _first_order(args: Tuple[Type, ...], result: Type) -> bool:
    return not isinstance(result, TArrow) and \
        not any(isinstance(a, TArrow) for a in args)


def interface_components(definition: ModuleDefinition,
                         program: Program) -> List[_Component]:
    """The first-order synthesis components, as signature views, plus the
    synthetic recursive-invariant component the synthesizer always adds."""
    components: List[_Component] = []
    for name in definition.synthesis_components:
        signature = program.types.globals.get(name)
        if signature is None:
            continue
        args, result = _uncurry_signature(signature)
        if _first_order(args, result):
            components.append(_Component(name, args, result))
    components.append(_Component(
        "<invariant>", (definition.concrete_type,), GOAL_TYPE))
    return components


def _oracle_references(definition: ModuleDefinition) -> List[str]:
    """Names the expected-invariant oracle block references.

    The oracle is part of the definition (the test suite typechecks it
    against the module program), so module functions it calls are live
    even when no interface root reaches them."""
    if not definition.expected_invariant:
        return []
    try:
        oracle_decls = parse_program(definition.expected_invariant)
    except LangError:
        return []
    names: List[str] = []
    for decl in oracle_decls:
        if isinstance(decl, FunDecl):
            names.extend(free_vars(decl.body))
    return names


def analyze_definition(definition: ModuleDefinition, path: str = "<module>",
                       emitter=NULL_EMITTER) -> AnalysisReport:
    """Run all analysis passes over one module definition."""
    diagnostics: List[Diagnostic] = []
    pruned: Tuple[str, ...] = ()
    content_hash = ""

    with emitter.span("analysis", {"module": definition.name},
                      cat="analysis"):
        try:
            decls = parse_program(definition.source)
            program = Program()
            program.extend(PRELUDE_SOURCE)
            program.extend_declarations(decls)
        except LangError as exc:
            diagnostics.append(Diagnostic(
                "HAN000", str(exc), line=getattr(exc, "line", None)))
            return _report(definition, path, diagnostics, content_hash, pruned)

        checker = TypeChecker(program.types)

        with emitter.span("analysis-matches", cat="analysis"):
            for decl in decls:
                if isinstance(decl, FunDecl):
                    diagnostics.extend(scan_declaration(checker, decl))

        with emitter.span("analysis-callgraph", cat="analysis"):
            roots = ([op.name for op in definition.operations]
                     + [definition.spec_name]
                     + list(definition.synthesis_components)
                     + list(definition.helper_functions)
                     + _oracle_references(definition))
            diagnostics.extend(scan_module_declarations(decls, roots))

        with emitter.span("analysis-components", cat="analysis"):
            components = interface_components(definition, program)
            _, dropped = split_components(
                components, [definition.concrete_type], program.types,
                GOAL_TYPE, destructure=True)
            decl_lines = {d.name: d.line for d in decls
                          if isinstance(d, FunDecl)}
            pruned = tuple(c.name for c in dropped if c.name != "<invariant>")
            for component in dropped:
                if component.name == "<invariant>":
                    continue
                diagnostics.append(Diagnostic(
                    "HAN005",
                    f"synthesis component {component.name!r} can never "
                    f"appear in a term of type {GOAL_TYPE}: its result "
                    f"feeds no goal-reaching signature",
                    line=decl_lines.get(component.name),
                    decl=component.name))

        with emitter.span("analysis-absint", cat="analysis"):
            diagnostics.extend(_static_violations(definition, program, decls))

        with emitter.span("analysis-canon", cat="analysis"):
            content_hash = canonical_hash(definition, program, decls)

    return _report(definition, path, diagnostics, content_hash, pruned)


@dataclass(frozen=True)
class _InstanceView:
    """The slice of :class:`~repro.core.module.ModuleInstance` the abstract
    checker reads, over the analyzer's already-loaded program (lint never
    instantiates the module)."""

    program: Program
    definition: ModuleDefinition

    @property
    def operations(self):
        return self.definition.operations

    @property
    def concrete_type(self):
        return self.definition.concrete_type


def _static_violations(definition: ModuleDefinition, program: Program,
                       decls: List[object]) -> List[Diagnostic]:
    """HAN006: operations the abstract interpreter proves cannot preserve
    the expected-invariant oracle (every completing application - on *any*
    arguments - produces a value the invariant rejects)."""
    if not definition.expected_invariant:
        return []
    try:
        oracle_decls = [d for d in parse_program(definition.expected_invariant)
                        if isinstance(d, FunDecl)]
    except LangError:
        return []
    if not oracle_decls:
        return []
    findings: List[Diagnostic] = []
    try:
        checker = AbstractChecker(_InstanceView(program, definition),
                                  extra_decls=oracle_decls)
        abstract_top = checker.abstract_input(None)
        decl_lines = {d.name: d.line for d in decls if isinstance(d, FunDecl)}
        for operation in definition.operations:
            verdict = checker.operation_verdict(
                operation, oracle_decls[-1], abstract_top)
            if verdict == REFUTED:
                findings.append(Diagnostic(
                    "HAN006",
                    f"operation {operation.name!r} statically proven to "
                    f"violate the expected invariant: every completing "
                    f"application produces a value the invariant rejects",
                    line=decl_lines.get(operation.name),
                    decl=operation.name))
    except Exception:
        # The static tier is advisory here; a failure inside it must never
        # break linting (the verifier-diff harness covers its soundness).
        pass
    return findings


def _report(definition: ModuleDefinition, path: str,
            diagnostics: List[Diagnostic], content_hash: str,
            pruned: Tuple[str, ...]) -> AnalysisReport:
    anchored = tuple(sorted(
        (d.at_path(path) for d in diagnostics),
        key=lambda d: (d.line is None, d.line or 0, d.code, d.message)))
    return AnalysisReport(module=definition.name, path=path,
                          diagnostics=anchored, content_hash=content_hash,
                          pruned_components=pruned)


def analyze_file(path: str, emitter=NULL_EMITTER) -> AnalysisReport:
    """Load one ``.hanoi`` file and analyze it.

    Raises :class:`repro.spec.errors.SpecFileError` when the file does not
    load at all (the CLI renders that as a HAN000-style error line)."""
    from ..spec.loader import load_module_file

    definition = load_module_file(path)
    return analyze_definition(definition, path=path, emitter=emitter)
