"""Benchmark harness for the verification evaluation cache.

Two angles on the same optimization:

* the end-to-end ablation (full Hanoi runs over the multi-iteration subset,
  cache on vs. off) - the wall-clock speedup ``python -m repro run`` users
  see, reported per variant so the comparison shows up in the
  pytest-benchmark table;
* the replayed hot path in isolation (a warmed verifier re-checking the
  oracle invariant) - the asymptotic win, with all first-pass evaluation
  amortized away.

Run with ``pytest benchmarks/test_evalcache_perf.py --benchmark-only``.
"""

import pytest

from repro.core.hanoi import HanoiInference
from repro.core.predicate import Predicate
from repro.core.stats import InferenceStats
from repro.enumeration.functions import FunctionEnumerator
from repro.enumeration.values import ValueEnumerator
from repro.inductive.relation import ConditionalInductivenessChecker
from repro.suite.registry import get_benchmark
from repro.verify.evalcache import EvaluationCache
from repro.verify.result import Valid
from repro.verify.tester import Verifier

#: Benchmarks whose quick-profile runs take many CEGIS iterations - the case
#: the cache exists for (re-checks dominated by redundant evaluation).
MULTI_ITERATION_SUBSET = [
    "/coq/sorted-list-::-set",
    "/other/stutter-list",
    "/coq/maxfirst-list-::-heap",
]


@pytest.mark.parametrize("variant", ["eval-cache", "no-eval-cache"])
def test_inference_ablation(benchmark, quick_config, variant):
    """Full inference over the multi-iteration subset, cache on vs. off."""
    config = (quick_config if variant == "eval-cache"
              else quick_config.without_evaluation_caching())
    definitions = [get_benchmark(name) for name in MULTI_ITERATION_SUBSET]

    def run():
        return [HanoiInference(definition, config=config, mode_name=variant).infer()
                for definition in definitions]

    results = benchmark.pedantic(run, iterations=1, rounds=2)
    assert all(result.succeeded for result in results)
    hits = sum(result.stats.eval_cache_hits for result in results)
    misses = sum(result.stats.eval_cache_misses for result in results)
    if variant == "eval-cache":
        assert hits > 0
    else:
        assert hits == 0 and misses == 0
    benchmark.extra_info.update({
        "variant": variant,
        "eval_cache_hits": hits,
        "eval_cache_misses": misses,
        "iterations": sum(result.iterations for result in results),
    })


@pytest.mark.parametrize("variant", ["eval-cache", "no-eval-cache"])
def test_reverification_hot_path(benchmark, quick_config, variant):
    """A re-check of an already-seen candidate: pure replay when cached.

    This is the per-iteration cost inside the CEGIS loop once the stream and
    memo are warm - the quantity the cache actually optimizes.
    """
    instance = get_benchmark("/coq/sorted-list-::-set").instantiate()
    invariant = Predicate.from_source(
        get_benchmark("/coq/sorted-list-::-set").expected_invariant, instance.program)
    bounds = quick_config.verifier_bounds
    cache = EvaluationCache() if variant == "eval-cache" else None
    stats = InferenceStats()
    verifier = Verifier(instance, bounds=bounds, stats=stats, eval_cache=cache)
    checker = ConditionalInductivenessChecker(
        instance, ValueEnumerator(instance.program.types), FunctionEnumerator(instance),
        bounds, stats, eval_cache=cache)

    def check():
        sufficiency = verifier.check_sufficiency(invariant)
        inductiveness = checker.check(invariant, invariant)
        return sufficiency, inductiveness

    check()  # warm the stream / memo (a no-op for the uncached variant)
    sufficiency, inductiveness = benchmark(check)
    assert isinstance(sufficiency, Valid) and isinstance(inductiveness, Valid)
    if cache is not None:
        assert stats.eval_cache_hits > 0
    benchmark.extra_info.update({
        "variant": variant,
        "eval_cache_hits": stats.eval_cache_hits,
        "eval_cache_misses": stats.eval_cache_misses,
    })
