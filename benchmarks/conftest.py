"""Shared configuration for the pytest-benchmark harnesses.

The benchmark harnesses use the ``quick`` profile (small verifier bounds,
short timeouts) so a full ``pytest benchmarks/ --benchmark-only`` run stays in
the range of minutes.  To reproduce the paper's setup instead, run the module
harnesses directly, e.g. ``python -m repro.experiments.figure7 --all
--profile paper``.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.core.config import FAST_VERIFIER_BOUNDS, HanoiConfig


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "poolcache: synthesis term-pool cache ablation "
        "(run with `python -m pytest benchmarks -m poolcache`)")
    config.addinivalue_line(
        "markers",
        "fuzz: property-based generator / differential-fuzzing tests "
        "(deselect with `-m 'not fuzz'`; deep sweeps gate on FUZZ_FULL=1)")
    config.addinivalue_line(
        "markers",
        "absint: abstract-interpretation verifier cross-checks "
        "(deselect with `-m 'not absint'`; the full differential sweep "
        "gates on ABSINT_FULL=1)")


@pytest.fixture(scope="session")
def quick_config() -> HanoiConfig:
    """The configuration every benchmark harness runs under."""
    return HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=120)
