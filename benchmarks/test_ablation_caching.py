"""Benchmark harness for Experiment E4: optimization ablations (Section 5.5).

Times the full Hanoi configuration against the Hanoi-SRC (no synthesis result
caching) and Hanoi-CLC (no counterexample list caching) ablations over a
small subset, mirroring the ablation rows of Figure 8.
"""

import pytest

from repro.core.hanoi import HanoiInference
from repro.suite.registry import get_benchmark

SUBSET = [
    "/coq/unique-list-::-set",
    "/coq/sorted-list-::-set",
    "/other/stutter-list",
]

CONFIGS = {
    "hanoi": lambda config: config,
    "hanoi-src": lambda config: config.without_synthesis_result_caching(),
    "hanoi-clc": lambda config: config.without_counterexample_list_caching(),
}


@pytest.mark.parametrize("mode", sorted(CONFIGS))
def test_ablation(benchmark, quick_config, mode):
    config = CONFIGS[mode](quick_config)
    definitions = [get_benchmark(name) for name in SUBSET]

    def run():
        return [HanoiInference(definition, config=config, mode_name=mode).infer()
                for definition in definitions]

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    assert all(result.succeeded for result in results)
    benchmark.extra_info.update({
        "mode": mode,
        "synthesis_calls": sum(r.stats.synthesis_calls for r in results),
        "verification_calls": sum(r.stats.verification_calls for r in results),
        "cache_hits": sum(r.stats.synthesis_cache_hits for r in results),
    })
