"""Micro-benchmarks of the substrates the inference loop is built on.

These are not paper experiments; they track the cost of the pieces that
dominate inference time (object-language evaluation, value enumeration,
synthesis, a single inductiveness check) so performance regressions in the
substrates are visible independently of the end-to-end figures.
"""

import pytest

from repro.core.config import FAST_VERIFIER_BOUNDS
from repro.core.predicate import Predicate
from repro.enumeration.values import ValueEnumerator
from repro.inductive.relation import ConditionalInductivenessChecker
from repro.lang.values import nat_of_int, v_list
from repro.suite.registry import get_benchmark
from repro.synth.myth import MythSynthesizer
from repro.verify.tester import Verifier


@pytest.fixture(scope="module")
def listset_instance():
    return get_benchmark("/coq/unique-list-::-set").instantiate()


def test_eval_lookup(benchmark, listset_instance):
    """Cost of evaluating a module operation on a moderate structure."""
    values = v_list([nat_of_int(i) for i in range(8)])
    needle = nat_of_int(7)
    benchmark(lambda: listset_instance.program.call("lookup", values, needle))


def test_value_enumeration(benchmark, listset_instance):
    """Cost of enumerating the smallest 300 lists."""
    def run():
        enumerator = ValueEnumerator(listset_instance.program.types)
        return enumerator.smallest(listset_instance.concrete_type, 300)
    result = benchmark(run)
    assert len(result) == 300


def test_synthesis_call(benchmark, listset_instance):
    """Cost of one synthesis call on a representative example set."""
    synthesizer = MythSynthesizer(listset_instance)
    positives = [v_list([]), v_list([nat_of_int(1)]), v_list([nat_of_int(0)])]
    negatives = [v_list([nat_of_int(1), nat_of_int(1)])]
    result = benchmark(lambda: synthesizer.synthesize(positives, negatives))
    assert result


def test_sufficiency_check(benchmark, listset_instance):
    """Cost of one sufficiency verification call."""
    verifier = Verifier(listset_instance, bounds=FAST_VERIFIER_BOUNDS)
    invariant = Predicate.from_source(
        get_benchmark("/coq/unique-list-::-set").expected_invariant,
        listset_instance.program,
    )
    benchmark(lambda: verifier.check_sufficiency(invariant))


def test_full_inductiveness_check(benchmark, listset_instance):
    """Cost of one full-inductiveness check."""
    checker = ConditionalInductivenessChecker(listset_instance, bounds=FAST_VERIFIER_BOUNDS)
    invariant = Predicate.from_source(
        get_benchmark("/coq/unique-list-::-set").expected_invariant,
        listset_instance.program,
    )
    benchmark(lambda: checker.check(invariant, invariant))
