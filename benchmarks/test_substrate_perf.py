"""Micro-benchmarks of the substrates the inference loop is built on.

These are not paper experiments; they track the cost of the pieces that
dominate inference time (object-language evaluation, value enumeration,
synthesis, a single inductiveness check) so performance regressions in the
substrates are visible independently of the end-to-end figures.
"""

import pytest

from repro.core.config import FAST_VERIFIER_BOUNDS, SynthesisBounds
from repro.core.predicate import Predicate
from repro.core.stats import InferenceStats
from repro.enumeration.values import ValueEnumerator
from repro.inductive.relation import ConditionalInductivenessChecker
from repro.lang.parser import parse_expression
from repro.lang.types import TData, arrow
from repro.lang.values import nat_of_int, v_list
from repro.suite.registry import get_benchmark
from repro.synth.myth import MythSynthesizer
from repro.verify.tester import Verifier


@pytest.fixture(scope="module")
def listset_instance():
    return get_benchmark("/coq/unique-list-::-set").instantiate()


def test_eval_lookup(benchmark, listset_instance):
    """Cost of evaluating a module operation on a moderate structure."""
    values = v_list([nat_of_int(i) for i in range(8)])
    needle = nat_of_int(7)
    benchmark(lambda: listset_instance.program.call("lookup", values, needle))


def test_value_enumeration(benchmark, listset_instance):
    """Cost of enumerating the smallest 300 lists."""
    def run():
        enumerator = ValueEnumerator(listset_instance.program.types)
        return enumerator.smallest(listset_instance.concrete_type, 300)
    result = benchmark(run)
    assert len(result) == 300


def test_synthesis_call(benchmark, listset_instance):
    """Cost of one synthesis call on a representative example set."""
    synthesizer = MythSynthesizer(listset_instance)
    positives = [v_list([]), v_list([nat_of_int(1)]), v_list([nat_of_int(0)])]
    negatives = [v_list([nat_of_int(1), nat_of_int(1)])]
    result = benchmark(lambda: synthesizer.synthesize(positives, negatives))
    assert result


def test_sufficiency_check(benchmark, listset_instance):
    """Cost of one sufficiency verification call."""
    verifier = Verifier(listset_instance, bounds=FAST_VERIFIER_BOUNDS)
    invariant = Predicate.from_source(
        get_benchmark("/coq/unique-list-::-set").expected_invariant,
        listset_instance.program,
    )
    benchmark(lambda: verifier.check_sufficiency(invariant))


def test_full_inductiveness_check(benchmark, listset_instance):
    """Cost of one full-inductiveness check."""
    checker = ConditionalInductivenessChecker(listset_instance, bounds=FAST_VERIFIER_BOUNDS)
    invariant = Predicate.from_source(
        get_benchmark("/coq/unique-list-::-set").expected_invariant,
        listset_instance.program,
    )
    benchmark(lambda: checker.check(invariant, invariant))


def test_inductiveness_check_traced(benchmark, listset_instance):
    """Cost of the same check with tracing *on* (records fed to a no-op
    sink), so the price of live instrumentation stays visible next to the
    untraced number above."""
    from repro.obs.events import Emitter

    class NullSink:
        def handle(self, record):
            pass

    checker = ConditionalInductivenessChecker(
        listset_instance, bounds=FAST_VERIFIER_BOUNDS,
        emitter=Emitter(sinks=[NullSink()], run="bench/traced"))
    invariant = Predicate.from_source(
        get_benchmark("/coq/unique-list-::-set").expected_invariant,
        listset_instance.program,
    )
    benchmark(lambda: checker.check(invariant, invariant))


def test_component_pruning_speedup(listset_instance):
    """Reachability pruning must pay for itself: against a component set
    padded with six junk components (each consuming nat, producing a type
    nothing else consumes), the pruned synthesizer returns the identical
    candidate list measurably faster.  The curated built-ins carry no
    junk — this is what pruning buys on user-authored or generated
    modules with over-wide ``components`` directives."""
    import time as _time

    program = listset_instance.program
    succ = program.eval_expr(parse_expression("fun (n : nat) -> S n"))
    nat = TData("nat")
    junk = {f"ghost{i}": (arrow(nat, TData(f"ghost{i}")), succ)
            for i in range(6)}
    positives = [v_list([]), v_list([nat_of_int(1)]), v_list([nat_of_int(0)])]
    negatives = [v_list([nat_of_int(1), nat_of_int(1)])]

    def run(pruning):
        stats = InferenceStats()
        synthesizer = MythSynthesizer(
            listset_instance,
            bounds=SynthesisBounds(component_pruning=pruning),
            extra_components=junk, stats=stats)
        predicates = synthesizer.synthesize(positives, negatives)
        return [p.render() for p in predicates], stats

    pruned_preds, pruned_stats = run(True)
    ablated_preds, ablated_stats = run(False)
    # Equivalence first: pruning never changes what synthesis returns.
    assert pruned_preds == ablated_preds
    assert pruned_stats.components_pruned == len(junk)
    assert ablated_stats.components_pruned == 0

    def paired_minimums(repeats=9, calls=3):
        best_pruned = best_ablated = float("inf")
        for _ in range(repeats):
            start = _time.perf_counter()
            for _ in range(calls):
                run(True)
            best_pruned = min(best_pruned, _time.perf_counter() - start)
            start = _time.perf_counter()
            for _ in range(calls):
                run(False)
            best_ablated = min(best_ablated, _time.perf_counter() - start)
        return best_pruned, best_ablated

    for _ in range(3):
        pruned, ablated = paired_minimums()
        if pruned <= ablated * 0.95:  # measured ~0.76 locally
            return
    raise AssertionError(
        f"component pruning no longer speeds up junk-padded synthesis: "
        f"{pruned:.4f}s pruned vs {ablated:.4f}s ablated")


def test_analysis_overhead_under_five_percent():
    """The whole static-analysis layer (all lint passes + the canonical
    content hash) must stay below 5% of a quick-profile inference run on
    the same module — it runs once per module load, so it has to be
    invisible next to inference itself."""
    import time as _time

    from repro.analysis.lint import analyze_definition
    from repro.experiments.runner import quick_config, run_module

    definition = get_benchmark("/coq/unique-list-::-set")
    config = quick_config()
    run_module(definition, mode="hanoi", config=config)  # warm up
    analyze_definition(definition)

    def paired_minimums(repeats=3, calls=1):
        best_infer = best_lint = float("inf")
        for _ in range(repeats):
            start = _time.perf_counter()
            for _ in range(calls):
                run_module(definition, mode="hanoi", config=config)
            best_infer = min(best_infer, _time.perf_counter() - start)
            start = _time.perf_counter()
            for _ in range(calls):
                report = analyze_definition(definition)
                assert report.ok and report.content_hash
            best_lint = min(best_lint, _time.perf_counter() - start)
        return best_infer, best_lint

    for _ in range(3):
        infer, lint = paired_minimums()
        if lint <= infer * 0.05:  # measured ~1.2% locally
            return
    raise AssertionError(
        f"analysis overhead is {lint / infer:.1%} of a quick inference run "
        f"(> 5%): {lint:.4f}s lint vs {infer:.4f}s inference")


def test_ladder_backend_discharges_statically_at_no_cost():
    """The verification ladder must pay for itself: on a quick-profile run
    it discharges at least one obligation statically (skipping its bounded
    enumeration), reproduces the enumerative outcome exactly, and the
    end-to-end time stays within noise of the enumerative backend — the
    abstract tier's own cost must be covered by the checks it skips."""
    import time as _time

    from repro.experiments.runner import quick_config, run_module
    from repro.gen.diff import outcome_fingerprint

    definition = get_benchmark("/coq/unique-list-::-set")
    enumerative_config = quick_config()
    ladder_config = enumerative_config.with_verifier_backend("ladder")

    baseline = run_module(definition, mode="hanoi", config=enumerative_config)
    laddered = run_module(definition, mode="hanoi", config=ladder_config)
    # Trajectory identity first: same invariant, same iteration count.
    assert outcome_fingerprint(laddered) == outcome_fingerprint(baseline)
    assert laddered.stats.static_proofs >= 1
    assert baseline.stats.static_proofs == 0

    def paired_minimums(repeats=5, calls=1):
        best_ladder = best_enum = float("inf")
        for _ in range(repeats):
            start = _time.perf_counter()
            for _ in range(calls):
                run_module(definition, mode="hanoi", config=ladder_config)
            best_ladder = min(best_ladder, _time.perf_counter() - start)
            start = _time.perf_counter()
            for _ in range(calls):
                run_module(definition, mode="hanoi", config=enumerative_config)
            best_enum = min(best_enum, _time.perf_counter() - start)
        return best_ladder, best_enum

    for _ in range(3):
        ladder, enum = paired_minimums()
        if ladder <= enum * 1.05:  # measured ~1.02 locally
            return
    raise AssertionError(
        f"the ladder backend no longer breaks even: {ladder:.4f}s laddered "
        f"vs {enum:.4f}s enumerative (> 5% overhead)")


def test_disabled_tracing_overhead_under_two_percent(listset_instance):
    """Zero-cost-when-off guard: components default to the shared disabled
    emitter, whose check is one attribute load and branch before the
    pre-observability code path.  Measured against the bare (un-wrapped)
    check body, the overhead must stay under 2%."""
    import time as _time

    checker = ConditionalInductivenessChecker(listset_instance, bounds=FAST_VERIFIER_BOUNDS)
    invariant = Predicate.from_source(
        get_benchmark("/coq/unique-list-::-set").expected_invariant,
        listset_instance.program,
    )
    assert not checker.emitter.enabled  # the default IS the disabled path

    def instrumented():
        checker.check(invariant, invariant)

    def bare():
        # The exact pre-observability body: timer context + check.
        with checker.stats.verification():
            checker._check(invariant, invariant, None)

    instrumented(), bare()  # warm up

    def paired_minimums(repeats=9, calls=3):
        """Interleave A/B timing so clock drift hits both sides equally."""
        best_a = best_b = float("inf")
        for _ in range(repeats):
            start = _time.perf_counter()
            for _ in range(calls):
                instrumented()
            best_a = min(best_a, _time.perf_counter() - start)
            start = _time.perf_counter()
            for _ in range(calls):
                bare()
            best_b = min(best_b, _time.perf_counter() - start)
        return best_a, best_b

    # Min-of-repeats damps scheduler noise; retry twice more before
    # declaring a >2% regression so one noisy attempt cannot fail the guard
    # (a real formatting-on-the-hot-path bug fails every attempt).
    for _ in range(3):
        with_obs, without_obs = paired_minimums()
        if with_obs <= without_obs * 1.02:
            return
    raise AssertionError(
        f"disabled tracing costs {(with_obs / without_obs - 1):.1%} "
        f"(> 2%) on a full inductiveness check: {with_obs:.4f}s vs "
        f"{without_obs:.4f}s")


def test_warm_persistent_cache_beats_cold_by_integer_factor(tmp_path):
    """The persistent tier's reason to exist: a warm-started run (all
    sections replayed from the content-addressed disk store) must finish at
    least 2x faster than a cold run that has to enumerate, verify, and
    write everything itself — with a byte-identical outcome."""
    import shutil
    import time as _time

    from repro.experiments.runner import quick_config, run_module
    from repro.gen.diff import outcome_fingerprint

    definition = get_benchmark("/coq/unique-list-::-set")
    base = quick_config()
    run_module(definition, mode="hanoi", config=base)  # warm the process

    warm_dir = tmp_path / "warm-store"
    warm_config = base.with_cache_dir(str(warm_dir))
    cold_result = run_module(definition, mode="hanoi", config=warm_config)
    warm_result = run_module(definition, mode="hanoi", config=warm_config)
    assert outcome_fingerprint(warm_result) == outcome_fingerprint(cold_result)
    assert warm_result.stats.disk_cache_hits > 0
    assert warm_result.stats.disk_cache_misses == 0

    def paired_minimums(repeats=3):
        best_cold = best_warm = float("inf")
        for index in range(repeats):
            cold_dir = tmp_path / f"cold-store-{index}"
            start = _time.perf_counter()
            run_module(definition, mode="hanoi",
                       config=base.with_cache_dir(str(cold_dir)))
            best_cold = min(best_cold, _time.perf_counter() - start)
            shutil.rmtree(cold_dir)
            start = _time.perf_counter()
            run_module(definition, mode="hanoi", config=warm_config)
            best_warm = min(best_warm, _time.perf_counter() - start)
        return best_cold, best_warm

    for _ in range(3):
        cold, warm = paired_minimums()
        if cold >= warm * 2.0:  # measured ~3.0x locally
            return
    raise AssertionError(
        f"warm start no longer beats cold by 2x: {warm:.4f}s warm vs "
        f"{cold:.4f}s cold ({cold / warm:.2f}x)")


def test_disabled_persistence_overhead_under_two_percent():
    """Zero-cost-when-off guard for the persistent tier: with
    ``cache_dir=None`` (the default) the integration is one falsy config
    check at construction and one ``persistent is None`` check after the
    loop — no import of the serve package, no disk I/O.  Measured against
    the same run with the two seams stubbed out entirely, the overhead
    must stay under 2%."""
    import time as _time

    from repro.core.hanoi import HanoiInference
    from repro.experiments.runner import quick_config, run_module

    definition = get_benchmark("/coq/unique-list-::-set")
    config = quick_config()
    assert config.cache_dir is None
    run_module(definition, mode="hanoi", config=config)  # warm up

    stubbed_persist = lambda self: None  # noqa: E731

    def with_seams():
        result = run_module(definition, mode="hanoi", config=config)
        assert result.stats.disk_cache_hits == 0
        assert result.stats.disk_cache_misses == 0

    def without_seams(_real=HanoiInference._persist_caches):
        HanoiInference._persist_caches = stubbed_persist
        try:
            run_module(definition, mode="hanoi", config=config)
        finally:
            HanoiInference._persist_caches = _real

    def paired_minimums(repeats=5):
        best_on = best_off = float("inf")
        for _ in range(repeats):
            start = _time.perf_counter()
            with_seams()
            best_on = min(best_on, _time.perf_counter() - start)
            start = _time.perf_counter()
            without_seams()
            best_off = min(best_off, _time.perf_counter() - start)
        return best_on, best_off

    for _ in range(3):
        on, off = paired_minimums()
        if on <= off * 1.02:
            return
    raise AssertionError(
        f"disabled persistence costs {(on / off - 1):.1%} (> 2%) per run: "
        f"{on:.4f}s with the seams vs {off:.4f}s without")
