"""Benchmark harness for Experiment E3 (Figures 5-6): counterexample list caching.

Times the motivating benchmark with and without counterexample list caching
and checks the optimization's effect: with the cache, the run needs no more
verification calls (and at least as few CEGIS iterations) than without it.
"""

import pytest

from repro.core.hanoi import HanoiInference
from repro.suite.registry import get_benchmark

BENCHMARK = "/coq/unique-list-::-set"


@pytest.mark.parametrize("caching", [True, False], ids=["with-clc", "without-clc"])
def test_figure5_trace(benchmark, quick_config, caching):
    config = quick_config if caching else quick_config.without_counterexample_list_caching()
    definition = get_benchmark(BENCHMARK)

    def run():
        return HanoiInference(definition, config=config).infer()

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert result.succeeded
    benchmark.extra_info.update({
        "counterexample_list_caching": caching,
        "iterations": result.iterations,
        "verification_calls": result.stats.verification_calls,
        "synthesis_calls": result.stats.synthesis_calls,
        "trace_replays": result.stats.trace_replays,
    })


def test_caching_reduces_work(quick_config):
    definition = get_benchmark(BENCHMARK)
    with_cache = HanoiInference(definition, config=quick_config).infer()
    without_cache = HanoiInference(
        get_benchmark(BENCHMARK),
        config=quick_config.without_counterexample_list_caching(),
    ).infer()
    assert with_cache.succeeded and without_cache.succeeded
    assert with_cache.stats.verification_calls <= without_cache.stats.verification_calls
    assert with_cache.iterations <= without_cache.iterations
