"""Benchmark harness for the synthesis evaluation (term-pool) cache.

Two angles on the same optimization, mirroring the evaluation-cache harness:

* the end-to-end ablation (full Hanoi runs over the multi-iteration subset,
  pool cache on vs. off) - the wall-clock speedup ``python -m repro run``
  users see;
* the warm re-synthesis hot path in isolation (a warmed synthesizer asked
  the same question again: pure pool replay when cached) - the asymptotic
  win, with all first-pass enumeration amortized away.

Every test carries the ``poolcache`` marker, so the whole ablation is one
command::

    python -m pytest benchmarks -m poolcache --benchmark-only
"""

import pytest

from repro.core.hanoi import HanoiInference
from repro.lang.values import nat_of_int, v_list
from repro.suite.registry import get_benchmark
from repro.synth.myth import MythSynthesizer
from repro.synth.poolcache import SynthesisEvaluationCache

#: Benchmarks whose quick-profile runs take many CEGIS iterations - the case
#: the cache exists for (synthesis calls dominated by redundant enumeration).
MULTI_ITERATION_SUBSET = [
    "/coq/sorted-list-::-set",
    "/other/stutter-list",
    "/coq/maxfirst-list-::-heap",
]


@pytest.mark.poolcache
@pytest.mark.parametrize("variant", ["pool-cache", "no-pool-cache"])
def test_inference_ablation(benchmark, quick_config, variant):
    """Full inference over the multi-iteration subset, pool cache on vs. off."""
    config = (quick_config if variant == "pool-cache"
              else quick_config.without_synthesis_evaluation_caching())
    definitions = [get_benchmark(name) for name in MULTI_ITERATION_SUBSET]

    def run():
        return [HanoiInference(definition, config=config, mode_name=variant).infer()
                for definition in definitions]

    results = benchmark.pedantic(run, iterations=1, rounds=2)
    assert all(result.succeeded for result in results)
    hits = sum(result.stats.pool_cache_hits for result in results)
    misses = sum(result.stats.pool_cache_misses for result in results)
    if variant == "pool-cache":
        assert hits > 0
    else:
        assert hits == 0 and misses == 0
    benchmark.extra_info.update({
        "variant": variant,
        "pool_cache_hits": hits,
        "pool_cache_misses": misses,
        "iterations": sum(result.iterations for result in results),
    })


@pytest.mark.poolcache
@pytest.mark.parametrize("variant", ["pool-cache", "no-pool-cache"])
def test_warm_resynthesis_hot_path(benchmark, variant):
    """Re-synthesizing against unchanged examples: pure pool replay when
    cached.

    This is the per-call cost once the pool memo is warm - every branch of
    every skeleton replays its stored term structure without evaluating a
    single application.
    """

    def L(*ints):
        return v_list([nat_of_int(i) for i in ints])

    instance = get_benchmark("/coq/sorted-list-::-set").instantiate()
    cache = SynthesisEvaluationCache() if variant == "pool-cache" else None
    synthesizer = MythSynthesizer(instance, pool_cache=cache)
    positives = [L(), L(0), L(1), L(0, 1), L(1, 2), L(0, 1, 2)]
    negatives = [L(1, 0), L(2, 1), L(2, 0, 1), L(1, 1)]

    reference = synthesizer.synthesize(positives, negatives)  # warm the memo
    candidates = benchmark(synthesizer.synthesize, positives, negatives)
    assert ([p.render() for p in candidates]
            == [p.render() for p in reference])
    benchmark.extra_info.update({"variant": variant})
