"""Benchmark harness for Experiment E5: the motivating example (Section 2).

Times end-to-end inference of the no-duplicates invariant for the ListSet
module and checks the inferred invariant against the expected behaviour on
concrete values (rejects a list with duplicates, accepts duplicate-free
lists), mirroring the invariant printed in Section 2 of the paper.
"""

from repro.core.hanoi import HanoiInference
from repro.lang.values import nat_of_int, v_list
from repro.suite.registry import get_benchmark


def test_quickstart_listset(benchmark, quick_config):
    definition = get_benchmark("/coq/unique-list-::-set")

    def run():
        return HanoiInference(definition, config=quick_config).infer()

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert result.succeeded

    invariant = result.invariant
    assert invariant(v_list([]))
    assert invariant(v_list([nat_of_int(3)]))
    assert invariant(v_list([nat_of_int(5), nat_of_int(3)]))
    assert not invariant(v_list([nat_of_int(1), nat_of_int(1)]))
    assert not invariant(v_list([nat_of_int(2), nat_of_int(0), nat_of_int(2)]))

    benchmark.extra_info.update({
        "invariant_size": result.invariant_size,
        "iterations": result.iterations,
    })
