"""Benchmark harness for Experiment E2 (Figure 8): mode comparison.

Times each of the six Figure-8 modes on a small, representative benchmark
subset and records how many benchmarks each mode solves.  The qualitative
ordering of the paper should hold: Hanoi (and its ablations) solve everything
in this subset, ∧Str and LA are slower, and OneShot solves at most the
unique-list benchmark.
"""

import pytest

from repro.experiments.runner import FIGURE8_MODES, MODES
from repro.suite.registry import get_benchmark

SUBSET = [
    "/coq/unique-list-::-set",
    "/coq/maxfirst-list-::-heap",
    "/other/sized-list",
]


@pytest.mark.parametrize("mode", FIGURE8_MODES)
def test_figure8_mode(benchmark, quick_config, mode):
    definitions = [get_benchmark(name) for name in SUBSET]

    def run():
        return [MODES[mode](definition, quick_config) for definition in definitions]

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    solved = sum(1 for r in results if r.succeeded)

    benchmark.extra_info.update({
        "mode": mode,
        "solved": solved,
        "total": len(results),
        "times": [round(r.stats.total_time, 3) for r in results],
    })

    if mode.startswith("hanoi"):
        assert solved == len(SUBSET), f"{mode} should solve the whole subset, solved {solved}"
    else:
        # The baselines are expected to solve at most as many benchmarks as Hanoi.
        assert solved <= len(SUBSET)


def test_hanoi_solves_at_least_as_many_as_baselines(quick_config):
    """The headline Figure-8 claim on the subset: Hanoi dominates every baseline."""
    solved = {}
    for mode in FIGURE8_MODES:
        results = [MODES[mode](get_benchmark(name), quick_config) for name in SUBSET]
        solved[mode] = sum(1 for r in results if r.succeeded)
    for mode in ("conj-str", "linear-arbitrary", "oneshot"):
        assert solved["hanoi"] >= solved[mode]
