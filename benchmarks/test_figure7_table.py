"""Benchmark harness for Experiment E1 (Figure 7 / Figure 9).

One pytest-benchmark entry per fast-subset benchmark, timing a full Hanoi
inference run and asserting it succeeds.  The Figure-7 statistics columns
(TVT, TVC, MVT, TST, TSC, MST) are attached to the benchmark's ``extra_info``
so the JSON output of ``pytest --benchmark-json`` contains the full table.

Regenerate the complete 28-row table (including the slow and timing-out
benchmarks) with ``python -m repro.experiments.figure7 --all``.
"""

import pytest

from repro.core.hanoi import HanoiInference
from repro.suite.registry import FAST_BENCHMARKS, PAPER_RESULTS, get_benchmark


@pytest.mark.parametrize("name", FAST_BENCHMARKS)
def test_figure7_row(benchmark, quick_config, name):
    definition = get_benchmark(name)

    def run():
        return HanoiInference(definition, config=quick_config).infer()

    result = benchmark.pedantic(run, iterations=1, rounds=1)

    assert result.succeeded, f"{name} failed: {result.status} ({result.message})"
    benchmark.extra_info.update({
        "benchmark": name,
        "paper_invariant_size": PAPER_RESULTS.get(name),
        "status": result.status,
        "invariant_size": result.invariant_size,
        **{key: value for key, value in result.stats.as_dict().items()
           if key in ("tvt", "tvc", "mvt", "tst", "tsc", "mst")},
    })
