"""Unit tests for the Program wrapper (parse + check + load)."""

import pytest

from repro.lang.errors import TypeError_
from repro.lang.parser import parse_program
from repro.lang.program import Program
from repro.lang.types import TArrow, TData
from repro.lang.values import bool_of_value, int_of_nat, nat_of_int


def test_from_source_includes_prelude_by_default():
    program = Program.from_source("let three : nat = 3")
    assert program.has_global("plus")
    assert int_of_nat(program.global_value("three")) == 3


def test_without_prelude_prelude_names_absent():
    program = Program.from_source("type unit = Unit", include_prelude=False)
    assert not program.has_global("plus")


def test_extend_adds_declarations():
    program = Program.from_source("")
    program.extend("let rec double (n : nat) : nat = match n with | O -> O | S x -> S (S (double x))")
    assert int_of_nat(program.call("double", nat_of_int(4))) == 8


def test_global_type_and_value_lookup_errors():
    program = Program.from_source("")
    with pytest.raises(TypeError_):
        program.global_value("missing")
    with pytest.raises(TypeError_):
        program.global_type("missing")
    with pytest.raises(TypeError_):
        program.datatype("missing")


def test_define_function_programmatically():
    program = Program.from_source("")
    (decl,) = parse_program("let inc (n : nat) : nat = S n")
    program.define_function(decl)
    assert int_of_nat(program.call("inc", nat_of_int(1))) == 2
    assert program.global_type("inc") == TArrow(TData("nat"), TData("nat"))


def test_mutual_recursion_through_globals():
    program = Program.from_source("""
let rec is_even (n : nat) : bool =
  match n with
  | O -> True
  | S x -> is_odd x

let rec is_odd (n : nat) : bool =
  match n with
  | O -> False
  | S x -> is_even x
""")
    # ``is_even`` calls ``is_odd`` which is defined later; resolution happens
    # through the global environment at call time.
    assert bool_of_value(program.call("is_even", nat_of_int(10)))
    assert not bool_of_value(program.call("is_even", nat_of_int(7)))


def test_function_size_reports_ast_size():
    program = Program.from_source("let id (n : nat) : nat = n")
    assert program.function_size("id") == 3  # body + one parameter + function node
    with pytest.raises(TypeError_):
        program.function_size("missing")


def test_ill_typed_source_rejected_atomically():
    program = Program.from_source("")
    with pytest.raises(TypeError_):
        program.extend("let broken : nat = True")
