"""Unit tests for the lexer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind != "EOF"]


def test_keywords_and_identifiers():
    tokens = tokenize("let rec foo (x : nat) = Bar x")
    assert [t.kind for t in tokens[:4]] == ["KEYWORD", "KEYWORD", "LIDENT", "LPAREN"]
    assert tokens[2].text == "foo"
    ctor = [t for t in tokens if t.kind == "UIDENT"]
    assert [t.text for t in ctor] == ["Bar"]


def test_arrow_and_punctuation():
    assert kinds("( ) , | * -> = : _")[:-1] == [
        "LPAREN", "RPAREN", "COMMA", "BAR", "STAR", "ARROW", "EQUAL", "COLON", "UNDERSCORE",
    ]


def test_integer_literals():
    tokens = tokenize("foo 42 0")
    ints = [t for t in tokens if t.kind == "INT"]
    assert [t.text for t in ints] == ["42", "0"]


def test_underscore_prefixed_identifier_is_identifier():
    tokens = tokenize("_private")
    assert tokens[0].kind == "LIDENT"
    assert tokens[0].text == "_private"


def test_comments_are_skipped_and_nest():
    source = "let (* outer (* inner *) still outer *) x = O"
    assert texts(source) == ["let", "x", "=", "O"]


def test_unterminated_comment_raises():
    with pytest.raises(LexError):
        tokenize("let x = (* never closed")


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("let x = $")


def test_positions_are_tracked():
    tokens = tokenize("let\n  foo = O")
    foo = next(t for t in tokens if t.text == "foo")
    assert foo.line == 2
    assert foo.column == 3


def test_primes_allowed_in_identifiers():
    tokens = tokenize("x' foo'bar")
    assert [t.text for t in tokens if t.kind == "LIDENT"] == ["x'", "foo'bar"]
