"""Unit tests for the lexer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind != "EOF"]


def test_keywords_and_identifiers():
    tokens = tokenize("let rec foo (x : nat) = Bar x")
    assert [t.kind for t in tokens[:4]] == ["KEYWORD", "KEYWORD", "LIDENT", "LPAREN"]
    assert tokens[2].text == "foo"
    ctor = [t for t in tokens if t.kind == "UIDENT"]
    assert [t.text for t in ctor] == ["Bar"]


def test_arrow_and_punctuation():
    assert kinds("( ) , | * -> = : _")[:-1] == [
        "LPAREN", "RPAREN", "COMMA", "BAR", "STAR", "ARROW", "EQUAL", "COLON", "UNDERSCORE",
    ]


def test_integer_literals():
    tokens = tokenize("foo 42 0")
    ints = [t for t in tokens if t.kind == "INT"]
    assert [t.text for t in ints] == ["42", "0"]


def test_underscore_prefixed_identifier_is_identifier():
    tokens = tokenize("_private")
    assert tokens[0].kind == "LIDENT"
    assert tokens[0].text == "_private"


def test_comments_are_skipped_and_nest():
    source = "let (* outer (* inner *) still outer *) x = O"
    assert texts(source) == ["let", "x", "=", "O"]


def test_unterminated_comment_raises():
    with pytest.raises(LexError):
        tokenize("let x = (* never closed")


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("let x = $")


def test_positions_are_tracked():
    tokens = tokenize("let\n  foo = O")
    foo = next(t for t in tokens if t.text == "foo")
    assert foo.line == 2
    assert foo.column == 3


def test_primes_allowed_in_identifiers():
    tokens = tokenize("x' foo'bar")
    assert [t.text for t in tokens if t.kind == "LIDENT"] == ["x'", "foo'bar"]


def test_string_literals():
    tokens = tokenize('benchmark "/coq/unique-list-::-set*"')
    assert tokens[1].kind == "STRING"
    assert tokens[1].text == "/coq/unique-list-::-set*"


def test_string_escapes():
    tokens = tokenize(r'"a\"b\\c\n\t"')
    assert tokens[0].kind == "STRING"
    assert tokens[0].text == 'a"b\\c\n\t'


def test_string_position_is_the_opening_quote():
    tokens = tokenize('\n  "hello"')
    assert (tokens[0].line, tokens[0].column) == (2, 3)


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize('"never closed')


def test_string_with_raw_newline_raises():
    with pytest.raises(LexError):
        tokenize('"split\nstring"')


def test_unknown_string_escape_raises():
    with pytest.raises(LexError):
        tokenize(r'"bad \q escape"')
