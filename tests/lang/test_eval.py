"""Unit tests for the evaluator and the Program wrapper."""

import pytest

from repro.lang.errors import EvalError, FuelExhausted, MatchFailure
from repro.lang.eval import EvalBudget, Evaluator, match_pattern
from repro.lang.parser import parse_expression
from repro.lang.program import Program
from repro.lang.values import (
    VCtor,
    VNative,
    VTuple,
    bool_of_value,
    int_of_nat,
    nat_of_int,
    v_list,
)
from repro.lang.ast import PCtor, PTuple, PVar, PWild


@pytest.fixture(scope="module")
def program():
    return Program.from_source("""
type list = Nil | Cons of nat * list

let rec length (l : list) : nat =
  match l with
  | Nil -> O
  | Cons (hd, tl) -> S (length tl)

let rec append (a : list) (b : list) : list =
  match a with
  | Nil -> b
  | Cons (hd, tl) -> Cons (hd, append tl b)

let twice (f : nat -> nat) (x : nat) : nat = f (f x)
""")


def test_prelude_arithmetic(program):
    assert int_of_nat(program.call("plus", nat_of_int(2), nat_of_int(3))) == 5
    assert int_of_nat(program.call("minus", nat_of_int(7), nat_of_int(3))) == 4
    assert int_of_nat(program.call("nat_max", nat_of_int(2), nat_of_int(9))) == 9
    assert bool_of_value(program.call("nat_leq", nat_of_int(3), nat_of_int(3)))
    assert not bool_of_value(program.call("nat_lt", nat_of_int(3), nat_of_int(3)))


def test_recursive_list_functions(program):
    values = v_list([nat_of_int(i) for i in (4, 1, 2)])
    assert int_of_nat(program.call("length", values)) == 3
    appended = program.call("append", values, v_list([nat_of_int(9)]))
    assert int_of_nat(program.call("length", appended)) == 4


def test_higher_order_application(program):
    succ = program.global_value("succ")
    assert int_of_nat(program.call("twice", succ, nat_of_int(3))) == 5


def test_native_function_applies(program):
    double = VNative(lambda v: nat_of_int(int_of_nat(v) * 2), name="double")
    assert int_of_nat(program.call("twice", double, nat_of_int(3))) == 12


def test_eval_expression_with_env(program):
    expr = parse_expression("plus x (S x)")
    result = program.eval_expr(expr, {"x": nat_of_int(2)})
    assert int_of_nat(result) == 5


def test_match_failure_raises(program):
    evaluator = Evaluator({})
    expr = parse_expression("match x with | O -> O")
    with pytest.raises(MatchFailure):
        evaluator.eval(expr, {"x": nat_of_int(1)})


def test_unbound_variable_raises(program):
    with pytest.raises(EvalError):
        program.eval_expr(parse_expression("unknown_variable"))


def test_fuel_exhaustion(program):
    big = nat_of_int(40)
    with pytest.raises(FuelExhausted):
        program.call("plus", big, big, fuel=20)


def test_application_of_non_function_raises(program):
    with pytest.raises(EvalError):
        program.apply(nat_of_int(1), nat_of_int(2))


def test_match_pattern_bindings():
    value = VCtor("Cons", VTuple((nat_of_int(1), VCtor("Nil"))))
    bindings = match_pattern(PCtor("Cons", PTuple((PVar("hd"), PVar("tl")))), value)
    assert int_of_nat(bindings["hd"]) == 1
    assert bindings["tl"] == VCtor("Nil")
    assert match_pattern(PCtor("Nil"), value) is None
    assert match_pattern(PWild(), value) == {}


def test_budget_is_shared_across_nested_calls():
    budget = EvalBudget(5)
    budget.spend(3)
    budget.spend(2)
    with pytest.raises(FuelExhausted):
        budget.spend(1)
