"""Source-position plumbing: every diagnostic layer carries line anchors.

The analyzer (``repro lint``) renders ``path:line:`` prefixes, so the
parser must stamp declarations/match expressions with their lines, the
typechecker must anchor escaping errors to the enclosing declaration,
and the ``.hanoi`` loader must surface positions on
:class:`SpecFileError`.
"""

import pytest

from repro.lang.errors import LexError, ParseError, TypeError_
from repro.lang.parser import parse_program
from repro.lang.prelude import PRELUDE_SOURCE
from repro.lang.program import Program
from repro.spec.errors import SpecFileError
from repro.spec.loader import load_module_text

SOURCE = """\
type color = Red | Green

let pick (n : nat) : color =
  match n with
  | O -> Red
  | S m -> Green

let rec spin (n : nat) : nat = spin n
"""


def test_parser_stamps_declaration_lines():
    decls = parse_program(SOURCE)
    assert [d.line for d in decls] == [1, 3, 8]


def test_parser_stamps_match_lines():
    decls = parse_program(SOURCE)
    assert decls[1].body.line == 4


def test_lex_and_parse_errors_carry_positions():
    with pytest.raises(LexError) as exc:
        parse_program("let f = ???")
    assert exc.value.line == 1
    with pytest.raises(ParseError) as exc:
        parse_program("let f (n : nat) : nat =\n  match n")
    assert exc.value.line >= 1


def test_typechecker_anchors_errors_to_declaration():
    program = Program()
    program.extend(PRELUDE_SOURCE)
    with pytest.raises(TypeError_) as exc:
        program.extend("\n\nlet bad (n : nat) : nat = True")
    assert exc.value.line == 3
    assert "line 3" in str(exc.value)
    assert exc.value.bare_message  # position-free form for the loader


def test_with_line_does_not_overwrite():
    error = TypeError_("boom", line=7)
    assert error.with_line(9).line == 7
    assert TypeError_("boom").with_line(9).line == 9


def test_loader_positions_on_type_errors():
    text = """\
benchmark "/test/pos"
group testing

abstract type t = nat

operation zero : t

spec spec : t -> bool

let zero : nat = O
let spec (c : nat) : bool = True
let bad (n : nat) : nat = True
"""
    with pytest.raises(SpecFileError) as exc:
        load_module_text(text, path="pos.hanoi")
    assert exc.value.path == "pos.hanoi"
    assert exc.value.line == 12


def test_loader_positions_on_directive_errors():
    text = """\
benchmark "/test/pos"
group testing
group again

abstract type t = nat

operation zero : t

spec spec : t -> bool

let zero : nat = O
let spec (c : nat) : bool = True
"""
    with pytest.raises(SpecFileError) as exc:
        load_module_text(text, path="pos.hanoi")
    assert exc.value.line == 3
