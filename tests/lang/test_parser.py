"""Unit tests for the parser."""

import pytest

from repro.lang.ast import (
    ECtor,
    EFun,
    ELet,
    EMatch,
    ETuple,
    EVar,
    EApp,
    FunDecl,
    PCtor,
    PTuple,
    PVar,
    PWild,
    TypeDecl,
)
from repro.lang.errors import ParseError
from repro.lang.parser import parse_expression, parse_program, parse_type
from repro.lang.types import TArrow, TData, TProd


def test_parse_type_arrow_right_associative():
    ty = parse_type("nat -> nat -> bool")
    assert ty == TArrow(TData("nat"), TArrow(TData("nat"), TData("bool")))


def test_parse_type_product_binds_tighter_than_arrow():
    ty = parse_type("nat * list -> bool")
    assert ty == TArrow(TProd((TData("nat"), TData("list"))), TData("bool"))


def test_parse_type_parentheses():
    ty = parse_type("(nat -> nat) -> list")
    assert isinstance(ty.arg, TArrow)


def test_parse_type_decl():
    (decl,) = parse_program("type list = Nil | Cons of nat * list")
    assert isinstance(decl, TypeDecl)
    assert [c.name for c in decl.ctors] == ["Nil", "Cons"]
    assert decl.ctors[0].payload is None
    assert decl.ctors[1].payload == TProd((TData("nat"), TData("list")))


def test_parse_fun_decl_with_params():
    (decl,) = parse_program("let rec plus (a : nat) (b : nat) : nat = b")
    assert isinstance(decl, FunDecl)
    assert decl.recursive
    assert decl.params == (("a", TData("nat")), ("b", TData("nat")))
    assert decl.return_type == TData("nat")


def test_parse_value_decl_without_params():
    (decl,) = parse_program("let empty : list = Nil")
    assert decl.params == ()
    assert decl.body == ECtor("Nil")


def test_application_is_left_associative():
    expr = parse_expression("f a b c")
    assert expr == EApp(EApp(EApp(EVar("f"), EVar("a")), EVar("b")), EVar("c"))


def test_constructor_takes_single_payload_atom():
    expr = parse_expression("Cons (x, xs)")
    assert expr == ECtor("Cons", ETuple((EVar("x"), EVar("xs"))))


def test_constructor_with_two_arguments_rejected():
    with pytest.raises(ParseError):
        parse_expression("Cons x xs")


def test_integer_literal_expands_to_peano():
    assert parse_expression("2") == ECtor("S", ECtor("S", ECtor("O")))
    assert parse_expression("0") == ECtor("O")


def test_if_desugars_to_match_on_bool():
    expr = parse_expression("if c then a else b")
    assert isinstance(expr, EMatch)
    assert [b.pattern for b in expr.branches] == [PCtor("True"), PCtor("False")]


def test_match_with_patterns():
    expr = parse_expression(
        "match l with | Nil -> True | Cons (hd, tl) -> False | _ -> False"
    )
    assert isinstance(expr, EMatch)
    patterns = [b.pattern for b in expr.branches]
    assert patterns[0] == PCtor("Nil")
    assert patterns[1] == PCtor("Cons", PTuple((PVar("hd"), PVar("tl"))))
    assert isinstance(patterns[2], PWild)


def test_nested_match_requires_parentheses_and_parses():
    expr = parse_expression(
        "match l with | Nil -> True | Cons (hd, tl) -> (match tl with | Nil -> True | Cons (a, b) -> False)"
    )
    outer = expr
    assert len(outer.branches) == 2
    inner = outer.branches[1].body
    assert isinstance(inner, EMatch)
    assert len(inner.branches) == 2


def test_let_in_and_fun():
    expr = parse_expression("let y = f x in fun (z : nat) -> g y z")
    assert isinstance(expr, ELet)
    assert isinstance(expr.body, EFun)


def test_tuple_expression():
    expr = parse_expression("(a, b, c)")
    assert expr == ETuple((EVar("a"), EVar("b"), EVar("c")))


def test_trailing_input_rejected():
    with pytest.raises(ParseError):
        parse_expression("f x) y")


def test_missing_branch_body_rejected():
    with pytest.raises(ParseError):
        parse_program("let f (x : nat) : nat = match x with | O ->")
