"""Unit tests for the type checker."""

import pytest

from repro.lang.errors import TypeError_
from repro.lang.parser import parse_program
from repro.lang.prelude import PRELUDE_SOURCE
from repro.lang.typecheck import TypeChecker
from repro.lang.types import TArrow, TData, TProd


def check(source, with_prelude=True):
    checker = TypeChecker()
    if with_prelude:
        checker.check_declarations(parse_program(PRELUDE_SOURCE))
    return checker.check_declarations(parse_program(source))


def test_prelude_typechecks():
    env = check("", with_prelude=True)
    assert env.globals["plus"] == TArrow(TData("nat"), TArrow(TData("nat"), TData("nat")))
    assert env.globals["notb"] == TArrow(TData("bool"), TData("bool"))


def test_function_type_recorded():
    env = check("""
type list = Nil | Cons of nat * list
let rec length (l : list) : nat =
  match l with
  | Nil -> O
  | Cons (hd, tl) -> S (length tl)
""")
    assert env.globals["length"] == TArrow(TData("list"), TData("nat"))


def test_branch_type_mismatch_rejected():
    with pytest.raises(TypeError_):
        check("""
let bad (b : bool) : bool =
  match b with
  | True -> O
  | False -> False
""")


def test_recursive_function_requires_annotation():
    with pytest.raises(TypeError_):
        check("let rec loop (n : nat) = loop n")


def test_constructor_payload_mismatch_rejected():
    with pytest.raises(TypeError_):
        check("let x : nat = S True")


def test_unknown_constructor_rejected():
    with pytest.raises(TypeError_):
        check("let x : nat = Foo")


def test_unbound_variable_rejected():
    with pytest.raises(TypeError_):
        check("let x : nat = y")


def test_application_argument_mismatch_rejected():
    with pytest.raises(TypeError_):
        check("let x : nat = plus O True")


def test_duplicate_type_declaration_rejected():
    with pytest.raises(TypeError_):
        check("type bool = T | F")


def test_duplicate_constructor_rejected():
    with pytest.raises(TypeError_):
        check("type other = True | Maybe")


def test_pattern_constructor_of_wrong_type_rejected():
    with pytest.raises(TypeError_):
        check("""
let bad (n : nat) : bool =
  match n with
  | True -> False
  | False -> True
""")


def test_tuple_pattern_arity_checked():
    with pytest.raises(TypeError_):
        check("""
type pairlist = PNil | PCons of nat * nat
let bad (p : pairlist) : nat =
  match p with
  | PNil -> O
  | PCons (a, b, c) -> a
""")


def test_annotated_return_type_checked():
    with pytest.raises(TypeError_):
        check("let f (n : nat) : bool = n")


def test_product_and_nested_match():
    env = check("""
type list = Nil | Cons of nat * list
let swap (p : nat * list) : list * nat =
  match p with
  | (n, l) -> (l, n)
""")
    assert env.globals["swap"] == TArrow(
        TProd((TData("nat"), TData("list"))), TProd((TData("list"), TData("nat")))
    )
