"""Unit tests for runtime values, conversions, and pretty printing."""

import pytest

from repro.lang.ast import expr_size, free_vars
from repro.lang.parser import parse_expression, parse_program
from repro.lang.pretty import pretty_expr, pretty_fun_decl, pretty_type, pretty_type_decl
from repro.lang.types import TArrow, TData, TProd
from repro.lang.values import (
    VClosure,
    VCtor,
    VTuple,
    bool_of_value,
    int_of_nat,
    is_first_order,
    list_of_value,
    nat_of_int,
    v_bool,
    v_list,
    value_size,
)


def test_nat_roundtrip():
    for n in (0, 1, 5, 17):
        assert int_of_nat(nat_of_int(n)) == n


def test_nat_of_negative_rejected():
    with pytest.raises(ValueError):
        nat_of_int(-1)


def test_bool_conversions():
    assert bool_of_value(v_bool(True)) is True
    assert bool_of_value(v_bool(False)) is False
    with pytest.raises(ValueError):
        bool_of_value(nat_of_int(0))


def test_list_roundtrip():
    items = [nat_of_int(i) for i in (3, 1, 2)]
    value = v_list(items)
    assert list_of_value(value) == items
    with pytest.raises(ValueError):
        list_of_value(nat_of_int(2))


def test_value_size_counts_nodes():
    assert value_size(nat_of_int(0)) == 1
    assert value_size(nat_of_int(3)) == 4
    # Cons node + tuple node + element + Nil
    assert value_size(v_list([nat_of_int(0)])) == 4


def test_values_are_hashable_and_comparable():
    a = v_list([nat_of_int(1)])
    b = v_list([nat_of_int(1)])
    assert a == b
    assert len({a, b}) == 1


def test_is_first_order():
    assert is_first_order(v_list([nat_of_int(1)]))
    closure = VClosure("x", None, parse_expression("x"), {})
    assert not is_first_order(closure)
    assert not is_first_order(VTuple((nat_of_int(1), closure)))


def test_value_rendering_uses_sugar():
    assert str(nat_of_int(3)) == "3"
    assert str(v_list([nat_of_int(1), nat_of_int(2)])) == "[1; 2]"
    assert str(VCtor("Leaf")) == "Leaf"


def test_expr_size_and_free_vars():
    expr = parse_expression("andb (notb (lookup tl hd)) (inv tl)")
    assert expr_size(expr) == 13  # 7 leaves + 6 application nodes
    assert free_vars(expr) == frozenset({"andb", "notb", "lookup", "inv", "tl", "hd"})


def test_pretty_type():
    ty = TArrow(TProd((TData("nat"), TData("list"))), TData("bool"))
    assert pretty_type(ty) == "nat * list -> bool"


def test_pretty_fun_decl_matches_paper_style():
    (decl,) = parse_program("""
let rec inv (l : list) : bool =
  match l with
  | Nil -> True
  | Cons (hd, tl) -> andb (notb (lookup tl hd)) (inv tl)
""")
    rendered = pretty_fun_decl(decl)
    assert rendered.startswith("let rec inv (l : list) : bool =")
    assert "| Nil -> True" in rendered
    assert "andb (notb (lookup tl hd)) (inv tl)" in rendered


def test_pretty_type_decl():
    (decl,) = parse_program("type list = Nil | Cons of nat * list")
    assert pretty_type_decl(decl) == "type list = Nil | Cons of nat * list"


def test_pretty_expr_handles_let_and_fun():
    expr = parse_expression("let y = S x in fun (z : nat) -> plus y z")
    rendered = pretty_expr(expr)
    assert "let y = S x in" in rendered
    assert "fun (z : nat)" in rendered
