"""Property-based tests (hypothesis) for the object-language substrate.

These check executable versions of the algebraic facts the rest of the system
relies on: conversions between Python data and prelude values are inverses,
prelude arithmetic agrees with Python arithmetic, structural equality of
values is consistent with hashing, and the evaluator is deterministic.
"""

from hypothesis import given, settings, strategies as st

from repro.lang.program import Program
from repro.lang.values import (
    bool_of_value,
    int_of_nat,
    nat_of_int,
    v_list,
    list_of_value,
    value_size,
)

_PROGRAM = Program.from_source("")

small_nats = st.integers(min_value=0, max_value=40)
tiny_nats = st.integers(min_value=0, max_value=12)
nat_lists = st.lists(st.integers(min_value=0, max_value=6), max_size=6)


@given(small_nats)
def test_nat_roundtrip(n):
    assert int_of_nat(nat_of_int(n)) == n


@given(small_nats)
def test_nat_size_is_value_plus_one(n):
    assert value_size(nat_of_int(n)) == n + 1


@given(nat_lists)
def test_list_roundtrip(xs):
    values = [nat_of_int(x) for x in xs]
    assert list_of_value(v_list(values)) == values


@settings(max_examples=40, deadline=None)
@given(tiny_nats, tiny_nats)
def test_plus_agrees_with_python(a, b):
    result = _PROGRAM.call("plus", nat_of_int(a), nat_of_int(b))
    assert int_of_nat(result) == a + b


@settings(max_examples=40, deadline=None)
@given(tiny_nats, tiny_nats)
def test_minus_is_truncated_subtraction(a, b):
    result = _PROGRAM.call("minus", nat_of_int(a), nat_of_int(b))
    assert int_of_nat(result) == max(0, a - b)


@settings(max_examples=40, deadline=None)
@given(tiny_nats, tiny_nats)
def test_comparisons_agree_with_python(a, b):
    leq = bool_of_value(_PROGRAM.call("nat_leq", nat_of_int(a), nat_of_int(b)))
    lt = bool_of_value(_PROGRAM.call("nat_lt", nat_of_int(a), nat_of_int(b)))
    eq = bool_of_value(_PROGRAM.call("nat_eq", nat_of_int(a), nat_of_int(b)))
    assert leq == (a <= b)
    assert lt == (a < b)
    assert eq == (a == b)


@settings(max_examples=40, deadline=None)
@given(tiny_nats, tiny_nats)
def test_max_min_agree_with_python(a, b):
    assert int_of_nat(_PROGRAM.call("nat_max", nat_of_int(a), nat_of_int(b))) == max(a, b)
    assert int_of_nat(_PROGRAM.call("nat_min", nat_of_int(a), nat_of_int(b))) == min(a, b)


@given(nat_lists)
def test_structural_equality_consistent_with_hash(xs):
    left = v_list([nat_of_int(x) for x in xs])
    right = v_list([nat_of_int(x) for x in xs])
    assert left == right
    assert hash(left) == hash(right)


@settings(max_examples=30, deadline=None)
@given(tiny_nats, tiny_nats)
def test_evaluation_is_deterministic(a, b):
    first = _PROGRAM.call("plus", nat_of_int(a), nat_of_int(b))
    second = _PROGRAM.call("plus", nat_of_int(a), nat_of_int(b))
    assert first == second
