"""Unit tests for first-order collection and higher-order contracts."""

import pytest

from repro.contracts.firstorder import collect_abstract
from repro.contracts.higherorder import ContractLog, wrap_function
from repro.lang.types import TAbstract, TArrow, TData, TProd
from repro.lang.values import VNative, VTuple, nat_of_int, v_list
from repro.suite.registry import get_benchmark

ABSTRACT = TAbstract()
NAT = TData("nat")


def test_collect_at_abstract_position_returns_value():
    value = v_list([nat_of_int(1)])
    assert collect_abstract(value, ABSTRACT) == [value]


def test_collect_at_base_type_returns_nothing():
    assert collect_abstract(nat_of_int(3), NAT) == []


def test_collect_walks_products_left_to_right():
    left = v_list([nat_of_int(1)])
    right = v_list([])
    value = VTuple((left, nat_of_int(0), right))
    interface = TProd((ABSTRACT, NAT, ABSTRACT))
    assert collect_abstract(value, interface) == [left, right]


def test_collect_product_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        collect_abstract(nat_of_int(1), TProd((ABSTRACT, NAT)))


def test_collect_ignores_functional_positions():
    fn = VNative(lambda v: v, name="id")
    assert collect_abstract(fn, TArrow(NAT, NAT)) == []


def test_wrap_function_without_abstract_type_is_identity():
    instance = get_benchmark("/coq/unique-list-::-set").instantiate()
    log = ContractLog()
    fn = instance.program.global_value("succ")
    wrapped = wrap_function(fn, TArrow(NAT, NAT), instance.program, log)
    assert wrapped is fn


def test_wrap_function_logs_boundary_crossings():
    """A fold-style argument ``nat -> t -> t``: the module passes abstract
    values in (module->client) and receives abstract results (client->module)."""
    instance = get_benchmark("/coq/unique-list-::-set").instantiate()
    program = instance.program
    log = ContractLog()

    # The client function inserts its first argument into its second.
    insert = program.global_value("insert")

    def client(i):
        return VNative(lambda s: program.apply(insert, s, i), name="insert-flip")

    fn = VNative(client, name="client")
    interface = TArrow(NAT, TArrow(ABSTRACT, ABSTRACT))
    wrapped = wrap_function(fn, interface, program, log)

    argument = v_list([nat_of_int(2)])
    inner = program.apply(wrapped, nat_of_int(1))
    result = program.apply(inner, argument)

    assert log.module_to_client == [argument]
    assert log.client_to_module == [result]


def test_contract_log_clear():
    log = ContractLog()
    log.module_to_client.append(nat_of_int(1))
    log.client_to_module.append(nat_of_int(2))
    log.clear()
    assert log.module_to_client == [] and log.client_to_module == []
