"""Unit and property tests for size-ordered value enumeration."""

from hypothesis import given, settings, strategies as st

from repro.enumeration.values import ValueEnumerator
from repro.lang.program import Program
from repro.lang.types import TData, TProd
from repro.lang.values import int_of_nat, value_size


def make_enumerator():
    program = Program.from_source("""
type list = Nil | Cons of nat * list
type tree = Leaf | Node of tree * nat * tree
""")
    return ValueEnumerator(program.types), program


def test_nat_enumeration_counts():
    enumerator, _ = make_enumerator()
    # There is exactly one natural of each size: S^(n-1) O.
    for size in range(1, 6):
        values = enumerator.values_of_size(TData("nat"), size)
        assert len(values) == 1
        assert int_of_nat(values[0]) == size - 1


def test_bool_enumeration():
    enumerator, _ = make_enumerator()
    assert len(enumerator.values_of_size(TData("bool"), 1)) == 2
    assert enumerator.values_of_size(TData("bool"), 2) == ()


def test_list_enumeration_sizes_and_order():
    enumerator, _ = make_enumerator()
    values = enumerator.smallest(TData("list"), 30)
    sizes = [value_size(v) for v in values]
    assert sizes == sorted(sizes)
    assert str(values[0]) == "[]"
    # every produced value has the size the enumerator claims
    for size in range(1, 8):
        for value in enumerator.values_of_size(TData("list"), size):
            assert value_size(value) == size


def test_product_enumeration():
    enumerator, _ = make_enumerator()
    pair = TProd((TData("nat"), TData("bool")))
    values = enumerator.values_of_size(pair, 3)
    # size 3 = tuple node + nat of size 1 + bool of size 1
    assert len(values) == 2
    assert all(value_size(v) == 3 for v in values)


def test_enumerate_respects_bounds():
    enumerator, _ = make_enumerator()
    assert len(list(enumerator.enumerate(TData("list"), max_count=17))) == 17
    assert all(value_size(v) <= 5 for v in enumerator.enumerate(TData("list"), max_size=5))


def test_count_up_to_matches_enumeration():
    enumerator, _ = make_enumerator()
    total = enumerator.count_up_to(TData("tree"), 8)
    assert total == len(list(enumerator.enumerate(TData("tree"), max_size=8)))


def test_arrow_types_not_enumerated():
    enumerator, _ = make_enumerator()
    from repro.lang.types import TArrow
    assert enumerator.values_of_size(TArrow(TData("nat"), TData("nat")), 3) == ()


def test_enumeration_is_deterministic_and_duplicate_free():
    enumerator, _ = make_enumerator()
    first = enumerator.smallest(TData("tree"), 60)
    second = ValueEnumerator(make_enumerator()[1].types).smallest(TData("tree"), 60)
    assert first == second
    assert len(set(first)) == len(first)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=9))
def test_every_value_of_claimed_size_has_that_size(size):
    enumerator, _ = make_enumerator()
    for value in enumerator.values_of_size(TData("tree"), size):
        assert value_size(value) == size


# -- proven-exhausted termination (regression: finite types used to hang) ---------


def test_finite_type_with_only_max_count_terminates():
    """Regression: ``enumerate(bool, max_count=10)`` used to spin forever on
    ever larger empty size classes once both booleans were produced."""
    enumerator, _ = make_enumerator()
    values = list(enumerator.enumerate(TData("bool"), max_count=10))
    assert len(values) == 2
    assert {str(v) for v in values} == {"True", "False"}


def test_finite_product_with_only_max_count_terminates():
    enumerator, _ = make_enumerator()
    pair = TProd((TData("bool"), TData("bool")))
    values = list(enumerator.enumerate(pair, max_count=100))
    assert len(values) == 4
    assert all(value_size(v) == 3 for v in values)


def test_arrow_enumeration_with_only_max_count_terminates():
    from repro.lang.types import TArrow
    enumerator, _ = make_enumerator()
    assert list(enumerator.enumerate(TArrow(TData("nat"), TData("nat")), max_count=3)) == []


def test_size_bound_classification():
    from repro.lang.types import TArrow
    enumerator, _ = make_enumerator()
    assert enumerator.size_bound(TData("bool")) == 1
    assert enumerator.size_bound(TData("nat")) is None       # recursive
    assert enumerator.size_bound(TData("list")) is None      # recursive
    assert enumerator.size_bound(TProd((TData("bool"), TData("bool")))) == 3
    assert enumerator.size_bound(TProd((TData("bool"), TData("nat")))) is None
    assert enumerator.size_bound(TArrow(TData("nat"), TData("nat"))) == 0
    # A product over an uninhabitable component is itself uninhabitable.
    assert enumerator.size_bound(
        TProd((TData("bool"), TArrow(TData("nat"), TData("nat"))))) == 0


def test_smallest_on_finite_type_is_unaffected():
    enumerator, _ = make_enumerator()
    assert len(enumerator.smallest(TData("bool"), 10)) == 2
    assert len(enumerator.smallest(TData("list"), 10)) == 10
