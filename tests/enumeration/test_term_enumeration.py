"""Unit tests for syntactic term enumeration and function-argument enumeration."""

from repro.enumeration.functions import FunctionEnumerator
from repro.enumeration.ordering import diagonal_product
from repro.enumeration.terms import Component, TermEnumerator
from repro.lang.ast import expr_size
from repro.lang.program import Program
from repro.lang.types import TAbstract, TArrow, TData, arrow
from repro.lang.values import int_of_nat, nat_of_int, v_list
from repro.suite.registry import get_benchmark


def make_enumerator():
    program = Program.from_source("type list = Nil | Cons of nat * list")
    components = [
        Component("plus", arrow(TData("nat"), TData("nat"), TData("nat"))),
        Component("nat_eq", arrow(TData("nat"), TData("nat"), TData("bool"))),
        Component("notb", arrow(TData("bool"), TData("bool"))),
    ]
    return TermEnumerator(program.types, components), program


def test_terms_are_well_sized_and_typed():
    enumerator, _ = make_enumerator()
    context = (("x", TData("nat")),)
    terms = list(enumerator.terms(TData("bool"), context, max_size=5))
    assert terms, "expected some boolean terms"
    assert all(expr_size(t) <= 5 for t in terms)
    # size order
    sizes = [expr_size(t) for t in terms]
    assert sizes == sorted(sizes)


def test_variables_and_constants_at_size_one():
    enumerator, _ = make_enumerator()
    context = (("x", TData("nat")),)
    terms = enumerator.terms_of_size(TData("nat"), context, 1)
    assert {str(t) for t in terms} == {"x", "O"}
    bools = enumerator.terms_of_size(TData("bool"), context, 1)
    assert {str(t) for t in bools} == {"True", "False"}


def test_applications_generated():
    enumerator, _ = make_enumerator()
    context = (("x", TData("nat")), ("y", TData("nat")))
    terms = [str(t) for t in enumerator.terms(TData("bool"), context, max_size=5)]
    assert "((nat_eq x) y)" in terms


def test_argument_restrictions_respected():
    program = Program.from_source("type list = Nil | Cons of nat * list")
    restricted = Component(
        "self", arrow(TData("list"), TData("bool")),
        argument_restrictions=(frozenset({"tl"}),),
    )
    enumerator = TermEnumerator(program.types, [restricted], allow_constructors=False)
    context = (("x", TData("list")), ("tl", TData("list")))
    terms = [str(t) for t in enumerator.terms(TData("bool"), context, max_size=4)]
    assert "(self tl)" in terms
    assert "(self x)" not in terms


def test_functional_context_variables_can_be_applied():
    enumerator, _ = make_enumerator()
    context = (("f", TArrow(TData("nat"), TData("bool"))), ("x", TData("nat")))
    terms = [str(t) for t in enumerator.terms(TData("bool"), context, max_size=3)]
    assert "(f x)" in terms


def test_function_enumerator_simple_arrow():
    instance = get_benchmark("/coq/unique-list-::-set").instantiate()
    enumerator = FunctionEnumerator(instance)
    functions = enumerator.functions(TArrow(TData("nat"), TData("nat")), limit=4)
    assert 1 <= len(functions) <= 4
    # Each enumerated function must be applicable to a natural number.
    for fn in functions:
        result = instance.program.apply(fn, nat_of_int(2))
        int_of_nat(result)  # does not raise


def test_function_enumerator_abstract_arrow_uses_module_operations():
    instance = get_benchmark("/coq/unique-list-::-set").instantiate()
    enumerator = FunctionEnumerator(instance)
    fold_arg = TArrow(TData("nat"), TArrow(TAbstract(), TAbstract()))
    functions = enumerator.functions(fold_arg, limit=5)
    assert functions
    value = v_list([nat_of_int(1)])
    for fn in functions:
        result = instance.program.apply(fn, nat_of_int(0), value)
        assert result is not None


def test_diagonal_product_is_fair_and_bounded():
    pools = [[0, 1, 2, 3], ["a", "b", "c"], [True, False]]
    combos = list(diagonal_product(pools, max_total=10))
    assert len(combos) == 10
    assert combos[0] == (0, "a", True)
    # Within the first ten combos every pool should already have advanced.
    assert any(c[0] != 0 for c in combos)
    assert any(c[1] != "a" for c in combos)
    assert any(c[2] is not True for c in combos)


def test_diagonal_product_empty_pool_yields_nothing():
    assert list(diagonal_product([[1, 2], []], max_total=5)) == []
