"""Shared fixtures for the test suite.

Tests run under the ``FAST_VERIFIER_BOUNDS`` profile so the whole suite stays
fast; the bounds only affect how unsound the enumerative verifier is, not the
structure of the algorithms under test.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.core.config import FAST_VERIFIER_BOUNDS, HanoiConfig
from repro.lang.values import nat_of_int, v_list
from repro.suite.registry import get_benchmark

LIST_SET_NAME = "/coq/unique-list-::-set"


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "fuzz: property-based generator / differential-fuzzing tests "
        "(deselect with `-m 'not fuzz'`; deep sweeps gate on FUZZ_FULL=1)")
    config.addinivalue_line(
        "markers",
        "absint: abstract-interpretation verifier cross-checks "
        "(deselect with `-m 'not absint'`; the full differential sweep "
        "gates on ABSINT_FULL=1)")


@pytest.fixture(scope="session")
def fast_config() -> HanoiConfig:
    """The configuration used by end-to-end tests."""
    return HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=90)


@pytest.fixture(scope="session")
def listset_definition():
    """The motivating-example benchmark definition (fresh copy per session)."""
    return get_benchmark(LIST_SET_NAME)


@pytest.fixture(scope="session")
def listset_instance(listset_definition):
    """The motivating-example module, loaded and ready to execute."""
    return listset_definition.instantiate()


def make_list(*ints):
    """A prelude list value of Peano naturals from Python ints."""
    return v_list([nat_of_int(i) for i in ints])


@pytest.fixture(scope="session")
def listv():
    """Factory fixture: ``listv(1, 2, 3)`` builds the object-language list."""
    return make_list
