"""The hand-written oracle invariants shipped with the fast benchmarks are
themselves sufficient and fully inductive (under the bounded verifier).

This is the executable counterpart of the paper's claim that the benchmark
problems admit sufficient representation invariants, and it guards the
benchmark definitions against regressions (a broken module operation or
specification usually breaks one of these checks)."""

import pytest

from repro.core.config import FAST_VERIFIER_BOUNDS
from repro.core.predicate import Predicate
from repro.inductive.relation import ConditionalInductivenessChecker
from repro.suite.registry import FAST_BENCHMARKS, get_benchmark
from repro.verify.result import Valid
from repro.verify.tester import Verifier

#: Benchmarks whose oracle invariant should be checked (all fast ones have one).
CHECKED = [name for name in FAST_BENCHMARKS if get_benchmark(name).expected_invariant]


@pytest.mark.parametrize("name", CHECKED)
def test_oracle_invariant_is_sufficient(name):
    definition = get_benchmark(name)
    instance = definition.instantiate()
    oracle = Predicate.from_source(definition.expected_invariant, instance.program)
    verifier = Verifier(instance, bounds=FAST_VERIFIER_BOUNDS)
    assert isinstance(verifier.check_sufficiency(oracle), Valid), (
        f"oracle invariant for {name} is not sufficient for its specification"
    )


@pytest.mark.parametrize("name", CHECKED)
def test_oracle_invariant_is_fully_inductive(name):
    definition = get_benchmark(name)
    instance = definition.instantiate()
    oracle = Predicate.from_source(definition.expected_invariant, instance.program)
    checker = ConditionalInductivenessChecker(instance, bounds=FAST_VERIFIER_BOUNDS)
    assert isinstance(checker.check(oracle, oracle), Valid), (
        f"oracle invariant for {name} is not inductive"
    )
