"""Tests for the benchmark registry and the behaviour of the benchmark modules."""

import pytest

from repro.lang.types import mentions_abstract
from repro.lang.values import bool_of_value, int_of_nat, nat_of_int, VCtor, VTuple
from repro.suite.registry import (
    BENCHMARKS,
    FAST_BENCHMARKS,
    GROUPS,
    PAPER_RESULTS,
    all_benchmark_names,
    benchmarks_in_group,
    fast_benchmarks,
    get_benchmark,
)


def test_registry_has_28_benchmarks_with_paper_group_sizes():
    assert len(BENCHMARKS) == 28
    assert len(GROUPS["vfa"]) == 5
    assert len(GROUPS["vfa-extended"]) == 3
    assert len(GROUPS["coq"]) == 14
    assert len(GROUPS["other"]) == 6
    assert set(PAPER_RESULTS) == set(BENCHMARKS)
    assert set(FAST_BENCHMARKS) <= set(BENCHMARKS)


def test_unknown_names_rejected():
    with pytest.raises(KeyError):
        get_benchmark("/no/such-benchmark")
    with pytest.raises(KeyError):
        benchmarks_in_group("unknown-group")


def test_factories_return_fresh_definitions():
    a = get_benchmark("/coq/unique-list-::-set")
    b = get_benchmark("/coq/unique-list-::-set")
    assert a is not b and a.name == b.name


def test_paper_results_record_22_solved():
    solved = [name for name, size in PAPER_RESULTS.items() if size is not None]
    assert len(solved) == 22


@pytest.mark.parametrize("name", all_benchmark_names())
def test_every_benchmark_instantiates_and_is_well_formed(name):
    definition = get_benchmark(name)
    instance = definition.instantiate()
    # The spec function exists and has one argument per declared quantifier.
    spec_type = instance.program.global_type(definition.spec_name)
    from repro.lang.types import arrow_args, arrow_result, TData
    assert len(list(arrow_args(spec_type))) == len(definition.spec_signature)
    assert arrow_result(spec_type) == TData("bool")
    # At least one operation produces abstract values (otherwise nothing is constructible).
    assert any(op.produces_abstract for op in definition.operations)
    # The spec quantifies over at least one abstract value.
    assert any(mentions_abstract(t) for t in definition.spec_signature)


@pytest.mark.parametrize("name", [n for n in all_benchmark_names()
                                  if get_benchmark(n).expected_invariant is not None])
def test_expected_invariants_parse_and_accept_empty_structure(name):
    from repro.core.predicate import Predicate
    definition = get_benchmark(name)
    instance = definition.instantiate()
    oracle = Predicate.from_source(definition.expected_invariant, instance.program)
    # Find a "seed" operation that builds an abstract value from base-type
    # inputs only (``empty``, or ``whole`` for the rational benchmark).
    from repro.enumeration.values import ValueEnumerator
    seed_op = next(
        op for op in definition.operations
        if op.produces_abstract and not any(mentions_abstract(t) for t in op.argument_types)
    )
    enumerator = ValueEnumerator(instance.program.types)
    args = [enumerator.smallest(t, 1)[0] for t in seed_op.argument_types]
    seed_value = (instance.program.apply(instance.operation_value(seed_op), *args)
                  if args else instance.program.global_value(seed_op.name))
    assert oracle(seed_value)


def test_listset_module_behaviour(listset_instance):
    program = listset_instance.program
    empty = program.global_value("empty")
    s = program.call("insert", program.call("insert", empty, nat_of_int(3)), nat_of_int(5))
    assert bool_of_value(program.call("lookup", s, nat_of_int(3)))
    assert not bool_of_value(program.call("lookup", s, nat_of_int(7)))
    after = program.call("delete", s, nat_of_int(3))
    assert not bool_of_value(program.call("lookup", after, nat_of_int(3)))


def test_sorted_list_module_keeps_order():
    instance = get_benchmark("/coq/sorted-list-::-set").instantiate()
    program = instance.program
    s = program.global_value("empty")
    for x in (5, 1, 3, 1):
        s = program.call("insert", s, nat_of_int(x))
    from repro.lang.values import list_of_value
    items = [int_of_nat(v) for v in list_of_value(s)]
    assert items == sorted(set(items))


def test_bst_module_behaviour():
    instance = get_benchmark("/coq/bst-::-set*").instantiate()
    program = instance.program
    t = program.global_value("empty")
    for x in (4, 2, 6, 2):
        t = program.call("insert", t, nat_of_int(x))
    assert bool_of_value(program.call("member", t, nat_of_int(6)))
    t = program.call("delete", t, nat_of_int(4))
    assert not bool_of_value(program.call("member", t, nat_of_int(4)))
    assert bool_of_value(program.call("member", t, nat_of_int(2)))


def test_priqueue_module_behaviour():
    instance = get_benchmark("/vfa/tree-::-priqueue*").instantiate()
    program = instance.program
    q = program.global_value("empty")
    for x in (3, 7, 1):
        q = program.call("insert", q, nat_of_int(x))
    assert int_of_nat(program.call("get_max", q)) == 7
    q = program.call("delete_max", q)
    assert int_of_nat(program.call("get_max", q)) == 3


def test_trie_table_behaviour():
    instance = get_benchmark("/vfa/trie-::-table").instantiate()
    program = instance.program
    key = VCtor("XO", VCtor("XI", VCtor("XH")))
    other = VCtor("XH")
    table = program.call("set", program.global_value("empty"), key, nat_of_int(5))
    assert int_of_nat(program.call("get", table, key)) == 5
    assert int_of_nat(program.call("get", table, other)) == 0


def test_rational_module_behaviour():
    instance = get_benchmark("/other/rational").instantiate()
    program = instance.program
    half = VTuple((nat_of_int(1), nat_of_int(2)))
    one = program.call("whole", nat_of_int(1))
    total = program.call("rat_add", half, one)
    # 1/2 + 1/1 = 3/2
    assert int_of_nat(program.call("numer", total)) == 3
    assert int_of_nat(program.call("denom", total)) == 2


def test_fast_benchmarks_helper_returns_definitions():
    definitions = fast_benchmarks()
    assert len(definitions) == len(FAST_BENCHMARKS)
    assert all(d.name in FAST_BENCHMARKS for d in definitions)
