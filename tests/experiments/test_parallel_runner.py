"""Tests for the parallel experiment runner and the CLI's resume path."""

import multiprocessing
import time

import pytest

from repro import cli
from repro.core.config import FAST_VERIFIER_BOUNDS, HanoiConfig
from repro.core.result import Status
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import ExperimentTask, execute_tasks, expand_tasks
from repro.experiments.store import ResultStore
from repro.suite import registry

CONFIG = HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=60)
SMALL = ["/coq/unique-list-::-set", "/other/sized-list"]


def _has_fork() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def test_parallel_matches_serial_results():
    tasks = expand_tasks(SMALL, modes=["hanoi"], config=CONFIG)
    parallel = ParallelRunner(jobs=2).run(tasks)
    serial = execute_tasks(tasks)

    assert len(parallel) == len(serial) == len(tasks)
    for par, ser, task in zip(parallel, serial, tasks):
        # Results come back in task order regardless of completion order.
        assert (par.benchmark, par.mode) == task.key
        assert par.status == ser.status == Status.SUCCESS
        assert par.invariant_size == ser.invariant_size
        assert par.iterations == ser.iterations
        assert par.render_invariant() == ser.render_invariant()


def test_parallel_reports_progress_and_persists(tmp_path):
    tasks = expand_tasks(SMALL, modes=["hanoi"], config=CONFIG)
    store = ResultStore(str(tmp_path / "sweep.jsonl"))
    seen = []
    ParallelRunner(jobs=2).run(tasks, progress=seen.append, store=store)
    assert {(r.benchmark, r.mode) for r in seen} == {t.key for t in tasks}
    assert store.completed_pairs() == {t.key for t in tasks}


@pytest.mark.skipif(not _has_fork(), reason="hanging-benchmark fixture needs fork")
def test_timeout_isolation_kills_hung_worker_without_stalling_sweep():
    def hanging_factory():
        time.sleep(300)

    registry.BENCHMARKS["/test/hang"] = hanging_factory
    try:
        tasks = [ExperimentTask("/test/hang", "hanoi", CONFIG),
                 ExperimentTask(SMALL[0], "hanoi", CONFIG)]
        started = time.monotonic()
        results = ParallelRunner(jobs=2, task_timeout=2.0).run(tasks)
        elapsed = time.monotonic() - started
    finally:
        del registry.BENCHMARKS["/test/hang"]

    assert results[0].status == Status.TIMEOUT
    assert "killed by the pool" in results[0].message
    # The healthy task completed normally alongside the hung one.
    assert results[1].status == Status.SUCCESS
    # The sweep did not wait out the hung worker's 300s sleep.
    assert elapsed < 60


def test_worker_crash_is_reported_not_fatal():
    def crashing_factory():
        raise RuntimeError("boom")

    registry.BENCHMARKS["/test/crash"] = crashing_factory
    try:
        results = ParallelRunner(jobs=2).run(
            [ExperimentTask("/test/crash", "hanoi", CONFIG),
             ExperimentTask(SMALL[1], "hanoi", CONFIG)])
    finally:
        del registry.BENCHMARKS["/test/crash"]

    assert results[0].status == Status.FAILURE
    assert "boom" in results[0].message
    assert results[1].status == Status.SUCCESS


def test_parallel_workers_stream_events_to_parent():
    from repro.obs.sinks import InMemorySink, install_sink, reset_sinks

    tasks = expand_tasks(SMALL, modes=["hanoi"], config=CONFIG)
    reset_sinks()
    sink = install_sink(InMemorySink())
    try:
        results = ParallelRunner(jobs=2).run(tasks)
    finally:
        reset_sinks()

    assert all(r.status == Status.SUCCESS for r in results)
    # Every record that crossed the queue carries its worker's task label.
    labels = {r.get("task") for r in sink.records}
    assert labels == {t.label for t in tasks}
    # Each task streamed a complete run: start and end both made it across.
    for task in tasks:
        names = [r["name"] for r in sink.records if r.get("task") == task.label]
        assert "run-start" in names and "run-end" in names
        assert "iteration" in names  # spans stream too, not just run markers
    # Within one worker the stream stays ordered even after the merge.
    for task in tasks:
        seqs = [r["seq"] for r in sink.records
                if r.get("task") == task.label and r.get("cat") != "stream"]
        assert seqs == sorted(seqs)


def test_parallel_without_sinks_does_not_stream():
    from repro.obs.sinks import installed_sinks

    assert installed_sinks() == []
    tasks = expand_tasks([SMALL[0]], modes=["hanoi"], config=CONFIG)
    runner = ParallelRunner(jobs=1)
    assert runner.run(tasks)[0].status == Status.SUCCESS


@pytest.mark.skipif(not _has_fork(), reason="hanging-benchmark fixture needs fork")
def test_timeout_report_names_last_streamed_event():
    def hanging_factory():
        time.sleep(300)

    registry.BENCHMARKS["/test/hang"] = hanging_factory
    try:
        results = ParallelRunner(
            jobs=1, task_timeout=1.0, timeout_grace=0.5,
            stream_events=True, heartbeat_interval=0.2,
        ).run([ExperimentTask("/test/hang", "hanoi", CONFIG)])
    finally:
        del registry.BENCHMARKS["/test/hang"]

    result = results[0]
    assert result.status == Status.TIMEOUT
    assert "killed by the pool" in result.message
    # The factory hangs before any phase runs, so the heartbeat is the last
    # (and only) streamed record - the report says so, with its timestamp.
    assert "; last event: heartbeat at t=" in result.message


def test_cli_resume_skips_completed_pairs(tmp_path, capsys):
    output = str(tmp_path / "results.jsonl")
    argv = ["run", "--jobs", "2", "--profile", "quick", "--output", output,
            "--benchmarks", *SMALL]

    assert cli.main(argv) == 0
    first = capsys.readouterr().out
    assert f"running {len(SMALL)} task(s)" in first

    assert cli.main(argv + ["--resume"]) == 0
    second = capsys.readouterr().out
    assert f"resume: skipping {len(SMALL)} completed pair(s)" in second
    assert "running 0 task(s)" in second
    # The report still covers the full stored sweep.
    assert all(name in second for name in SMALL)
