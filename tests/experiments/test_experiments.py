"""Tests for the experiment harnesses (runner, Figure 7, Figure 8, Figure 5)."""

import pytest

from repro.core.config import FAST_VERIFIER_BOUNDS, HanoiConfig
from repro.experiments.figure5 import run_figure5, trace_lines
from repro.experiments.figure7 import HEADERS, figure7_rows, run_figure7
from repro.experiments.figure8 import completion_series, mode_summary, run_figure8
from repro.experiments.report import format_seconds, format_table, rows_to_csv
from repro.experiments.runner import FIGURE8_MODES, MODES, PROFILES, quick_config, run_benchmark

CONFIG = HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=60)
SMALL = ["/coq/unique-list-::-set", "/other/sized-list"]


def test_modes_and_profiles_registered():
    assert set(FIGURE8_MODES) <= set(MODES)
    assert "hanoi-fold" in MODES
    assert set(PROFILES) == {"quick", "paper"}
    assert quick_config(30).timeout_seconds == 30
    paper = PROFILES["paper"](None)
    assert paper.verifier_bounds.max_structures_single == 3000


def test_run_benchmark_rejects_unknown_mode():
    with pytest.raises(KeyError):
        run_benchmark("/coq/unique-list-::-set", mode="not-a-mode", config=CONFIG)


def test_figure7_rows_have_all_columns():
    results = run_figure7(SMALL, config=CONFIG)
    rows = figure7_rows(results)
    assert len(rows) == len(SMALL)
    assert all(len(row) == len(HEADERS) for row in rows)
    # The motivating example solves, so its Size column is an integer.
    assert isinstance(rows[0][3], int)
    table = format_table(HEADERS, rows)
    assert "/coq/unique-list-::-set" in table
    csv_text = rows_to_csv(HEADERS, rows)
    assert csv_text.splitlines()[0].startswith("Name,")


def test_figure8_summary_and_series():
    results = run_figure8(["/coq/unique-list-::-set"],
                          modes=["hanoi", "conj-str", "oneshot"], config=CONFIG)
    summary = {row[0]: row for row in mode_summary(results)}
    assert summary["hanoi"][1] == 1  # solved
    series = completion_series(results)
    assert len(series["hanoi"]) == 1
    assert series["hanoi"][0] > 0
    # Hanoi solves at least as many benchmarks as each baseline.
    for mode in ("conj-str", "oneshot"):
        assert summary["hanoi"][1] >= summary[mode][1]


def test_figure5_traces_show_caching_savings():
    results = run_figure5(config=CONFIG)
    assert set(results) == {"hanoi", "hanoi-clc"}
    assert all(r.succeeded for r in results.values())
    with_cache = results["hanoi"]
    without_cache = results["hanoi-clc"]
    assert with_cache.stats.verification_calls <= without_cache.stats.verification_calls
    lines = trace_lines(with_cache)
    assert any("candidate" in line for line in lines)
    assert any("success" in line for line in lines)


def test_figure5_renders_every_event_kind_golden():
    """Every event kind the inference loop logs has a rendering, pinned
    line-for-line (a kind falling through unrendered regresses silently)."""
    from repro.core.result import InferenceResult
    from repro.core.stats import InferenceStats

    events = [
        {"event": "synthesized", "candidate_size": 5},
        {"event": "synthesis-cache-hit", "candidate_size": 3},
        {"event": "sufficiency-counterexample", "candidate_size": 3,
         "added": ["(cons 1 nil)"]},
        {"event": "inductiveness-counterexample", "candidate_size": 3,
         "operation": "insert", "added": ["(cons 2 nil)"]},
        {"event": "visible-counterexample", "candidate_size": 3,
         "operation": "insert", "added": ["(cons 3 nil)"]},
        {"event": "late-visible-counterexample", "candidate_size": 3,
         "operation": "delete", "added": ["(cons 4 nil)"]},
        {"event": "synthesis-recovery", "operation": "insert",
         "added": ["(cons 5 nil)"]},
        {"event": "spec-violation", "candidate_size": 3,
         "witnesses": ["(cons 6 (cons 6 nil))"]},
        {"event": "trace-replay", "kept": 7},
        {"event": "success", "candidate_size": 9},
    ]
    result = InferenceResult(benchmark="/test/golden", mode="hanoi",
                             status="success", invariant=None,
                             stats=InferenceStats(), events=events)

    assert trace_lines(result) == [
        "  1. candidate (size 5) from synth",
        "  2. candidate (size 3) from cache",
        "  3.   negative counterexample (sufficiency): ['(cons 1 nil)']",
        "  4.   negative counterexample (insert): ['(cons 2 nil)']",
        "  5.   positive counterexample (insert): ['(cons 3 nil)']",
        "  6.   positive counterexample, found late (delete): ['(cons 4 nil)']",
        "  7.   synthesis failed; recovered by promoting (insert): ['(cons 5 nil)']",
        "  8. specification violation witnessed by ['(cons 6 (cons 6 nil))']",
        "  9.   trace replay kept 7 negative example(s)",
        " 10. success: invariant of size 9",
    ]


def test_every_logged_event_kind_is_rendered():
    """`_log(...)` call sites in the loop and `trace_lines` branches must
    stay in sync: a newly logged kind needs a rendering (and a line in the
    golden test above)."""
    import re

    from repro.core import hanoi
    from repro.experiments import figure5

    logged = set(re.findall(r'self\._log\(\s*"([a-z-]+)"',
                            inspect_source(hanoi)))
    rendered = set(re.findall(r'kind (?:==|in) \(?"?([a-z-]+(?:", "[a-z-]+)*)"?\)?',
                              inspect_source(figure5)))
    flattened = set()
    for match in rendered:
        flattened.update(match.split('", "'))
    assert logged, "no _log call sites found (pattern rot?)"
    assert logged <= flattened, f"unrendered event kinds: {logged - flattened}"


def inspect_source(module):
    import inspect

    return inspect.getsource(module)


def test_report_formatting_helpers():
    assert format_seconds(None) == "t/o"
    assert format_seconds(1.234) == "1.2"
    table = format_table(["A", "B"], [[1, None], ["xy", 2.5]])
    assert "t/o" in table and "2.50" in table
