"""Tests for the JSONL result store (serialization round-trip, resume bookkeeping)."""

import json

import pytest

from repro.core.config import FAST_VERIFIER_BOUNDS, HanoiConfig
from repro.core.result import InferenceResult, Status, StoredInvariant
from repro.core.stats import InferenceStats
from repro.experiments.runner import run_benchmark
from repro.experiments.store import ResultStore

CONFIG = HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=60)
BENCHMARK = "/coq/unique-list-::-set"


@pytest.fixture(scope="module")
def solved_result() -> InferenceResult:
    result = run_benchmark(BENCHMARK, mode="hanoi", config=CONFIG)
    assert result.succeeded
    return result


def test_result_dict_round_trip_preserves_everything(solved_result):
    payload = solved_result.to_dict()
    # The payload must be pure JSON (this is what crosses process and disk
    # boundaries).
    restored = InferenceResult.from_dict(json.loads(json.dumps(payload)))

    assert restored.benchmark == solved_result.benchmark
    assert restored.mode == solved_result.mode
    assert restored.status == Status.SUCCESS
    assert restored.iterations == solved_result.iterations
    assert restored.invariant_size == solved_result.invariant_size
    assert restored.render_invariant() == solved_result.render_invariant()
    assert isinstance(restored.invariant, StoredInvariant)
    # Events survive verbatim (the Figure-5 traces are rendered from them).
    assert restored.events == solved_result.events
    # Every Figure-7 column survives exactly, including derived means.
    assert restored.as_row() == solved_result.as_row()


def test_stats_round_trip_freezes_total_time(solved_result):
    stats = InferenceStats.from_dict(solved_result.stats.to_dict())
    assert stats.total_time == pytest.approx(solved_result.stats.total_time)
    assert stats.verification_calls == solved_result.stats.verification_calls
    assert stats.mean_synthesis_time == pytest.approx(
        solved_result.stats.mean_synthesis_time)
    # A deserialized stats object is finished: total_time must not keep growing.
    frozen = stats.total_time
    assert stats.total_time == frozen


def test_store_append_load_and_completed_pairs(tmp_path, solved_result):
    store = ResultStore(str(tmp_path / "results.jsonl"))
    assert not store.exists()
    assert store.completed_pairs() == set()
    assert store.load() == []

    store.append(solved_result)
    assert store.exists()
    assert len(store) == 1
    assert store.completed_pairs() == {(BENCHMARK, "hanoi")}

    loaded = store.load()
    assert len(loaded) == 1
    assert loaded[0].as_row() == solved_result.as_row()


def test_store_tolerates_truncated_trailing_line(tmp_path, solved_result):
    path = tmp_path / "results.jsonl"
    store = ResultStore(str(path))
    store.append(solved_result)
    # Simulate a sweep killed mid-append: a partial JSON line at the end.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"benchmark": "/other/rational", "mode": "han')
    assert store.completed_pairs() == {(BENCHMARK, "hanoi")}
    assert len(store.load()) == 1


def test_store_later_entries_supersede_earlier_ones(tmp_path, solved_result):
    store = ResultStore(str(tmp_path / "results.jsonl"))
    store.append(solved_result)
    rerun = InferenceResult.from_dict(solved_result.to_dict())
    rerun.message = "second run"
    store.append(rerun)
    loaded = store.load()
    assert len(loaded) == 1
    assert loaded[0].message == "second run"
