"""Tests for the JSONL result store (serialization round-trip, resume bookkeeping)."""

import json

import pytest

from repro.core.config import FAST_VERIFIER_BOUNDS, HanoiConfig
from repro.core.result import InferenceResult, Status, StoredInvariant
from repro.core.stats import InferenceStats
from repro.experiments.runner import run_benchmark
from repro.experiments.store import ResultStore

CONFIG = HanoiConfig(verifier_bounds=FAST_VERIFIER_BOUNDS, timeout_seconds=60)
BENCHMARK = "/coq/unique-list-::-set"


@pytest.fixture(scope="module")
def solved_result() -> InferenceResult:
    result = run_benchmark(BENCHMARK, mode="hanoi", config=CONFIG)
    assert result.succeeded
    return result


def test_result_dict_round_trip_preserves_everything(solved_result):
    payload = solved_result.to_dict()
    # The payload must be pure JSON (this is what crosses process and disk
    # boundaries).
    restored = InferenceResult.from_dict(json.loads(json.dumps(payload)))

    assert restored.benchmark == solved_result.benchmark
    assert restored.mode == solved_result.mode
    assert restored.status == Status.SUCCESS
    assert restored.iterations == solved_result.iterations
    assert restored.invariant_size == solved_result.invariant_size
    assert restored.render_invariant() == solved_result.render_invariant()
    assert isinstance(restored.invariant, StoredInvariant)
    # Events survive verbatim (the Figure-5 traces are rendered from them).
    assert restored.events == solved_result.events
    # Every Figure-7 column survives exactly, including derived means.
    assert restored.as_row() == solved_result.as_row()


def test_stats_round_trip_freezes_total_time(solved_result):
    stats = InferenceStats.from_dict(solved_result.stats.to_dict())
    assert stats.total_time == pytest.approx(solved_result.stats.total_time)
    assert stats.verification_calls == solved_result.stats.verification_calls
    assert stats.mean_synthesis_time == pytest.approx(
        solved_result.stats.mean_synthesis_time)
    # A deserialized stats object is finished: total_time must not keep growing.
    frozen = stats.total_time
    assert stats.total_time == frozen


def test_store_append_load_and_completed_pairs(tmp_path, solved_result):
    store = ResultStore(str(tmp_path / "results.jsonl"))
    assert not store.exists()
    assert store.completed_pairs() == set()
    assert store.load() == []

    store.append(solved_result)
    assert store.exists()
    assert len(store) == 1
    assert store.completed_pairs() == {(BENCHMARK, "hanoi")}

    loaded = store.load()
    assert len(loaded) == 1
    assert loaded[0].as_row() == solved_result.as_row()


def test_store_tolerates_truncated_trailing_line(tmp_path, solved_result):
    path = tmp_path / "results.jsonl"
    store = ResultStore(str(path))
    store.append(solved_result)
    # Simulate a sweep killed mid-append: a partial JSON line at the end.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"benchmark": "/other/rational", "mode": "han')
    assert store.completed_pairs() == {(BENCHMARK, "hanoi")}
    assert len(store.load()) == 1


def test_store_later_entries_supersede_earlier_ones(tmp_path, solved_result):
    store = ResultStore(str(tmp_path / "results.jsonl"))
    store.append(solved_result)
    rerun = InferenceResult.from_dict(solved_result.to_dict())
    rerun.message = "second run"
    store.append(rerun)
    loaded = store.load()
    assert len(loaded) == 1
    assert loaded[0].message == "second run"


def test_pack_benchmark_does_not_collide_with_same_named_builtin(tmp_path, solved_result):
    """Regression: rows used to be keyed by (benchmark, mode) only, so a pack
    benchmark named like a built-in silently superseded it on load and made
    --resume wrongly skip the other one."""
    path = str(tmp_path / "results.jsonl")
    ResultStore(path).append(solved_result)
    packed = InferenceResult.from_dict(solved_result.to_dict())
    packed.message = "from the pack"
    ResultStore(path, pack="my-pack").append(packed)

    store = ResultStore(path)
    loaded = store.load()
    assert len(loaded) == 2
    by_pack = {result.pack: result for result in loaded}
    assert by_pack[None].message == solved_result.message
    assert by_pack["my-pack"].message == "from the pack"

    assert store.completed_keys() == {
        (BENCHMARK, "hanoi", None, None),
        (BENCHMARK, "hanoi", "my-pack", None),
    }
    # The pack-blind view still collapses them (legacy callers).
    assert store.completed_pairs() == {(BENCHMARK, "hanoi")}


def test_pack_rows_supersede_within_their_pack_only(tmp_path, solved_result):
    path = str(tmp_path / "results.jsonl")
    pack_store = ResultStore(path, pack="my-pack")
    first = InferenceResult.from_dict(solved_result.to_dict())
    first.message = "first pack run"
    pack_store.append(first)
    second = InferenceResult.from_dict(solved_result.to_dict())
    second.message = "second pack run"
    pack_store.append(second)
    ResultStore(path).append(solved_result)

    loaded = ResultStore(path).load()
    assert len(loaded) == 2
    by_pack = {result.pack: result for result in loaded}
    assert by_pack["my-pack"].message == "second pack run"


def test_task_resume_keys_distinguish_packs(solved_result):
    from repro.experiments.runner import ExperimentTask, expand_tasks

    builtin = ExperimentTask(benchmark=BENCHMARK, mode="hanoi")
    packed = ExperimentTask(benchmark=BENCHMARK, mode="hanoi",
                            pack="/tmp/my-pack", pack_name="my-pack")
    assert builtin.key == packed.key  # the pack-blind identity
    assert builtin.resume_key != packed.resume_key
    assert packed.resume_key == (BENCHMARK, "hanoi", "my-pack", None)

    # expand_tasks tags only the pack's benchmarks with the pack name.
    tasks = expand_tasks([BENCHMARK, "pack-only"], modes="hanoi",
                         pack="/tmp/my-pack", pack_benchmarks=["pack-only"])
    keyed = {task.benchmark: task for task in tasks}
    assert keyed[BENCHMARK].resume_key == (BENCHMARK, "hanoi", None, None)
    assert keyed["pack-only"].resume_key == ("pack-only", "hanoi", "my-pack", None)
    # Both carry the pack path so pool workers can register it.
    assert all(task.pack == "/tmp/my-pack" for task in tasks)
