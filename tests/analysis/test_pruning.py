"""Pruning-equivalence tests: reachability pruning never changes results.

Three layers of evidence, cheapest first:

* **pool level** — a :class:`TermPool` built from the pruned component
  list enumerates exactly the same term stream as one built from the
  full list;
* **end-to-end** — inference over a module with an injected junk
  component (unreachable result type) produces an identical outcome
  fingerprint with pruning on and off, and the pruned run actually
  dropped the junk;
* **suite sweep** — every fast built-in infers the same invariant under
  both configurations (the full 28-benchmark sweep is gated behind
  ``PRUNING_FULL=1``).
"""

import dataclasses
import os

import pytest

from repro.analysis.reachability import prune_components
from repro.experiments.runner import quick_config, run_module
from repro.gen.diff import outcome_fingerprint
from repro.lang.parser import parse_expression
from repro.lang.prelude import PRELUDE_SOURCE
from repro.lang.program import Program
from repro.lang.types import TData
from repro.suite.registry import BENCHMARKS, FAST_BENCHMARKS, get_benchmark
from repro.synth.bottomup import TermPool, TypedComponent

NAT = TData("nat")
BOOL = TData("bool")

POOL_SOURCE = """
type ghost = Mist of nat

let is_zero (n : nat) : bool = match n with | O -> True | S m -> False
let rec double (n : nat) : nat = match n with | O -> O | S m -> S (S (double m))
let haunt (n : nat) : ghost = Mist n
"""


def _junk_extended(definition):
    """``definition`` plus a component whose result type cannot reach bool."""
    return dataclasses.replace(
        definition,
        source=definition.source
        + "\n\ntype ghost = Mist of nat\n\nlet haunt (n : nat) : ghost = Mist n\n",
        synthesis_components=definition.synthesis_components + ("haunt",))


def _render_stream(pool, result_type):
    from repro.lang.pretty import pretty_expr
    return [pretty_expr(e.expr) for e in pool.entries(result_type)]


def test_pool_stream_identical_after_pruning():
    program = Program()
    program.extend(PRELUDE_SOURCE)
    program.extend(POOL_SOURCE)
    components = [
        TypedComponent(name, program.global_type(name),
                       program.global_value(name))
        for name in ("is_zero", "double", "haunt")]
    context = [("x", NAT)]
    environments = [{"x": program.eval_expr(parse_expression(source))}
                    for source in ("O", "S O", "S (S O)")]
    pruned = prune_components(components, [NAT], program.types, BOOL)
    assert [c.name for c in pruned] == ["is_zero", "double"]

    full_pool = TermPool(program, components, context, environments, max_size=5)
    pruned_pool = TermPool(program, pruned, context, environments, max_size=5)
    assert _render_stream(full_pool, BOOL) == _render_stream(pruned_pool, BOOL)
    assert _render_stream(full_pool, NAT) == _render_stream(pruned_pool, NAT)


def test_junk_component_pruned_same_outcome():
    definition = _junk_extended(get_benchmark("/coq/unique-list-::-set"))
    config = quick_config()
    pruned = run_module(definition, mode="hanoi", config=config)
    ablated = run_module(definition, mode="hanoi",
                         config=config.without_component_pruning())
    assert outcome_fingerprint(pruned) == outcome_fingerprint(ablated)
    assert pruned.stats.components_pruned == 1
    assert ablated.stats.components_pruned == 0
    assert pruned.succeeded


def test_without_component_pruning_roundtrip():
    config = quick_config()
    assert config.synthesis_bounds.component_pruning
    ablation = config.without_component_pruning()
    assert not ablation.synthesis_bounds.component_pruning
    # Everything else is untouched.
    assert ablation.verifier_bounds == config.verifier_bounds
    assert ablation.timeout_seconds == config.timeout_seconds


@pytest.mark.parametrize("name", FAST_BENCHMARKS[:3])
def test_fast_benchmark_equivalence(name):
    definition = get_benchmark(name)
    config = quick_config()
    default = run_module(definition, mode="hanoi", config=config)
    ablated = run_module(definition, mode="hanoi",
                         config=config.without_component_pruning())
    assert outcome_fingerprint(default) == outcome_fingerprint(ablated)


@pytest.mark.skipif(not os.environ.get("PRUNING_FULL"),
                    reason="set PRUNING_FULL=1 for the full suite sweep")
@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_full_suite_equivalence(name):
    definition = get_benchmark(name)
    config = quick_config(timeout_seconds=300.0)
    default = run_module(definition, mode="hanoi", config=config)
    ablated = run_module(definition, mode="hanoi",
                         config=config.without_component_pruning())
    assert outcome_fingerprint(default) == outcome_fingerprint(ablated)
