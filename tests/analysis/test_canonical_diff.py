"""Differential tests for canonicalization and content-keyed caches.

The dead-branch rewriter (and the other canonicalizing passes) must be
*inference-transparent*: running the canonicalized module through every
fuzz mode yields byte-identical outcome fingerprints.  The canonical
hash must also be the content key actually stamped on the evaluation and
synthesis caches.
"""

from repro.analysis.canon import canonical_hash
from repro.core.hanoi import HanoiInference
from repro.gen.diff import canonicalization_mismatches, fuzz_module
from repro.gen.modgen import generate_module
from repro.suite.registry import get_benchmark


def test_canonicalization_transparent_on_benchmark(fast_config):
    definition = get_benchmark("/coq/unique-list-::-set")
    mismatches = canonicalization_mismatches(definition, config=fast_config)
    assert mismatches == []


def test_canonicalization_transparent_on_generated_module(fast_config):
    module = generate_module(7)
    mismatches = canonicalization_mismatches(module.definition,
                                             modes=("hanoi", "oneshot"),
                                             config=fast_config)
    assert mismatches == [], [m.describe() for m in mismatches]


def test_fuzz_module_check_canonical_counts_runs(fast_config):
    definition = get_benchmark("/coq/unique-list-::-set")
    plain = fuzz_module(definition, modes=("hanoi",), config=fast_config)
    checked = fuzz_module(definition, modes=("hanoi",), config=fast_config,
                          check_canonical=True)
    assert checked.mismatches == []
    assert checked.runs == plain.runs + 2


def test_caches_stamped_with_canonical_hash(fast_config):
    definition = get_benchmark("/coq/unique-list-::-set")
    inference = HanoiInference(definition, config=fast_config)
    expected = canonical_hash(definition)
    assert inference.content_key == expected
    assert inference.eval_cache is not None
    assert inference.eval_cache.content_key == expected
    assert inference.pool_cache is not None
    assert inference.pool_cache.content_key == expected


def test_cache_snapshot_carries_content_key(fast_config):
    definition = get_benchmark("/coq/unique-list-::-set")
    inference = HanoiInference(definition, config=fast_config)
    inference.infer()
    assert inference.eval_cache.snapshot()["content_key"] == \
        inference.content_key
    assert inference.pool_cache.snapshot()["content_key"] == \
        inference.content_key
