"""Unit tests for Maranget-style match usefulness analysis."""

from repro.analysis.matches import (
    is_exhaustive,
    missing_witness,
    render_pattern,
    unreachable_branches,
)
from repro.lang.parser import parse_program
from repro.lang.prelude import PRELUDE_SOURCE
from repro.lang.program import Program
from repro.lang.types import TData, TProd


def _env(extra: str = ""):
    program = Program()
    program.extend(PRELUDE_SOURCE)
    if extra:
        program.extend(extra)
    return program.types


def _branches(source: str):
    """The branches of the single match inside ``let f ... = match ...``."""
    decl = parse_program(source)[0]
    return decl.body.branches


NAT = TData("nat")
LIST = TData("list")
BOOL = TData("bool")

# The prelude has no list type; tests that need one extend the env with this.
LIST_DEF = "type list = Nil | Cons of nat * list"


def test_exhaustive_by_constructors():
    branches = _branches("""
let f (n : nat) : bool = match n with | O -> True | S m -> False
""")
    env = _env()
    assert is_exhaustive(branches, NAT, env)
    assert missing_witness(branches, NAT, env) is None


def test_wildcard_is_exhaustive():
    branches = _branches("let f (n : nat) : bool = match n with | _ -> True")
    assert is_exhaustive(branches, NAT, _env())


def test_missing_constructor_witnessed():
    branches = _branches("let f (n : nat) : bool = match n with | O -> True")
    env = _env()
    assert not is_exhaustive(branches, NAT, env)
    witness = missing_witness(branches, NAT, env)
    assert witness is not None
    assert "S" in render_pattern(witness)


def test_witness_terminates_on_recursive_datatype():
    # list's Cons payload recursively contains list; the witness search
    # must use the default-matrix shortcut instead of descending forever.
    branches = _branches("let f (l : list) : bool = match l with | Nil -> True")
    env = _env(LIST_DEF)
    assert not is_exhaustive(branches, LIST, env)
    witness = missing_witness(branches, LIST, env)
    assert witness is not None
    assert "Cons" in render_pattern(witness)


def test_nested_payload_gap_found():
    # Cons (hd, Nil) and Nil covered; Cons (hd, Cons ...) is not.
    branches = _branches("""
let f (l : list) : bool =
  match l with
  | Nil -> True
  | Cons (hd, Nil) -> False
""")
    env = _env(LIST_DEF)
    assert not is_exhaustive(branches, LIST, env)
    assert "Cons" in render_pattern(missing_witness(branches, LIST, env))


def test_tuple_patterns_exhaustive():
    branches = _branches("""
let f (p : nat * bool) : bool =
  match p with
  | (O, b) -> True
  | (S m, b) -> False
""")
    assert is_exhaustive(branches, TProd((NAT, BOOL)), _env())


def test_unreachable_duplicate_branch():
    branches = _branches("""
let f (n : nat) : bool =
  match n with
  | O -> True
  | S m -> False
  | _ -> True
""")
    assert unreachable_branches(branches, NAT, _env()) == [2]


def test_unreachable_after_wildcard():
    branches = _branches("""
let f (n : nat) : bool =
  match n with
  | _ -> True
  | O -> False
""")
    assert unreachable_branches(branches, NAT, _env()) == [1]


def test_all_branches_reachable():
    branches = _branches("""
let f (l : list) : bool =
  match l with
  | Nil -> True
  | Cons (hd, tl) -> False
""")
    assert unreachable_branches(branches, LIST, _env(LIST_DEF)) == []


def test_custom_datatype():
    env = _env("type color = Red | Green | Blue")
    branches = _branches("""
let f (c : color) : bool =
  match c with
  | Red -> True
  | Green -> False
""")
    color = TData("color")
    assert not is_exhaustive(branches, color, env)
    assert "Blue" in render_pattern(missing_witness(branches, color, env))
