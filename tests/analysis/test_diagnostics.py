"""Golden-diagnostic tests: one stable ``HAN0xx`` code per analyzer finding.

Each test crafts a minimal module that triggers exactly one diagnostic kind
and asserts the code, severity, line anchor, and rendered form, so the codes
stay stable across refactors (docs/analysis.md documents them).
"""

import dataclasses

import pytest

from repro.analysis.diagnostics import DIAGNOSTIC_CODES, Diagnostic
from repro.analysis.lint import analyze_definition
from repro.spec.loader import load_module_text

TEMPLATE = """
benchmark "/test/lint"
group testing

abstract type t = nat

operation zero : t
operation get : t -> nat

spec spec : t -> bool

{directives}

let zero : nat = O
let get (c : nat) : nat = c
let spec (c : nat) : bool = True

{extra}
"""


def _load(extra: str = "", directives: str = ""):
    return load_module_text(TEMPLATE.format(extra=extra, directives=directives),
                            path="lint.hanoi")


def _codes(report):
    return [d.code for d in report.diagnostics]


def test_code_table_is_stable():
    assert set(DIAGNOSTIC_CODES) == {
        "HAN000", "HAN001", "HAN002", "HAN003", "HAN004", "HAN005", "HAN006"}
    assert DIAGNOSTIC_CODES["HAN000"][0] == "error"
    assert DIAGNOSTIC_CODES["HAN005"][0] == "info"
    for code in ("HAN001", "HAN002", "HAN003", "HAN004", "HAN006"):
        assert DIAGNOSTIC_CODES[code][0] == "warning"


def test_render_format_matches_spec_errors():
    diagnostic = Diagnostic("HAN001", "non-exhaustive match", line=7,
                            decl="spec", path="m.hanoi")
    rendered = diagnostic.render()
    assert rendered.startswith("m.hanoi:7: HAN001 warning:")
    assert "[spec]" in rendered
    assert "non-exhaustive match" in rendered


def test_clean_module_is_ok():
    report = analyze_definition(_load())
    assert report.ok
    assert report.diagnostics == ()
    assert report.content_hash


def test_han000_module_that_does_not_typecheck():
    definition = _load()
    broken = dataclasses.replace(definition, source="let bad : nat = True")
    report = analyze_definition(broken)
    assert _codes(report) == ["HAN000"]
    assert not report.ok
    assert report.diagnostics[0].severity == "error"


def test_han001_non_exhaustive_match_with_witness():
    report = analyze_definition(_load(extra="""
let classify (n : nat) : bool =
  match n with
  | O -> True
"""))
    findings = [d for d in report.diagnostics if d.code == "HAN001"]
    assert len(findings) == 1
    assert not report.ok
    assert "S" in findings[0].message  # the missing-constructor witness
    assert findings[0].decl == "classify"
    assert findings[0].line is not None


def test_han001_witness_terminates_on_recursive_types():
    # A single-branch match over a recursive payload: the witness search
    # must not recurse forever into the constructor's own type.
    report = analyze_definition(_load(extra="""
type mylist = MNil | MCons of nat * mylist

let has (l : mylist) : bool =
  match l with
  | MNil -> True
"""))
    findings = [d for d in report.diagnostics if d.code == "HAN001"]
    assert len(findings) == 1
    assert "MCons" in findings[0].message


def test_han002_unreachable_branch():
    report = analyze_definition(_load(extra="""
let classify (n : nat) : bool =
  match n with
  | O -> True
  | S m -> False
  | _ -> True
"""))
    findings = [d for d in report.diagnostics if d.code == "HAN002"]
    assert len(findings) == 1
    assert not report.ok
    assert findings[0].decl == "classify"


def test_han003_unused_definition_and_type():
    report = analyze_definition(_load(extra="""
type ghost = Ghost

let orphan (n : nat) : nat = n
"""))
    findings = {d.decl: d for d in report.diagnostics if d.code == "HAN003"}
    assert set(findings) == {"ghost", "orphan"}
    assert "definition 'orphan'" in findings["orphan"].message
    assert "type 'ghost'" in findings["ghost"].message
    assert not report.ok


def test_han003_expected_invariant_keeps_oracle_helpers_live():
    definition = _load(extra="""
let oracle_helper (n : nat) : bool = True
""")
    definition = dataclasses.replace(
        definition,
        expected_invariant="let expected (c : nat) : bool = oracle_helper c")
    report = analyze_definition(definition)
    assert "HAN003" not in _codes(report)


def test_han004_unprovable_termination():
    report = analyze_definition(_load(extra="""
let rec spin (n : nat) : nat = spin n
"""))
    findings = [d for d in report.diagnostics if d.code == "HAN004"]
    assert len(findings) == 1
    assert findings[0].decl == "spin"
    assert not report.ok


def test_han005_unusable_component_is_info_only():
    report = analyze_definition(_load(
        directives="components mk_flag",
        extra="""
type flag = Red | Blue

let mk_flag (n : nat) : flag = Red
"""))
    findings = [d for d in report.diagnostics if d.code == "HAN005"]
    assert len(findings) == 1
    assert findings[0].severity == "info"
    assert findings[0].decl == "mk_flag"
    assert report.pruned_components == ("mk_flag",)
    # Info findings never fail lint.
    assert report.ok


def test_diagnostics_sorted_by_line():
    report = analyze_definition(_load(extra="""
let orphan_one (n : nat) : nat = n

let orphan_two (n : nat) : nat = n
"""))
    lines = [d.line for d in report.diagnostics]
    assert lines == sorted(lines, key=lambda x: (x is None, x or 0))


def test_unknown_code_rejected():
    with pytest.raises(ValueError):
        Diagnostic("HAN999", "nope")
