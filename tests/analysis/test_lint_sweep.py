"""Clean-lint sweeps: every module we ship or generate lints clean.

These are the analyzer's end-to-end regression net — a new pass that
starts flagging curated benchmarks (or fuzz-generated modules from any
scenario family) fails here first.
"""

import pathlib

import pytest

from repro.analysis.lint import analyze_definition, analyze_file
from repro.gen.modgen import FAMILIES, generate_corpus, generate_module
from repro.suite.registry import all_benchmark_names, get_benchmark

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples" / "modules")
    .glob("*.hanoi"))


@pytest.mark.parametrize("name", all_benchmark_names())
def test_builtin_lints_clean(name):
    report = analyze_definition(get_benchmark(name), path=name)
    assert report.ok, report.render()
    assert report.content_hash


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_module_lints_clean(path):
    report = analyze_file(str(path))
    assert report.ok, report.render()


def test_all_families_produce_clean_modules():
    seen = set()
    seed = 0
    # Walk seeds until every scenario family has been linted at least once.
    while seen != set(FAMILIES) and seed < 500:
        module = generate_module(seed)
        report = analyze_definition(module.definition, path=module.name)
        assert report.ok, report.render()
        seen.add(module.family)
        seed += 1
    assert seen == set(FAMILIES)


@pytest.mark.fuzz
def test_generated_corpus_lints_clean():
    for module in generate_corpus(seed=11, count=40):
        report = analyze_definition(module.definition, path=module.name)
        assert report.ok, report.render()
