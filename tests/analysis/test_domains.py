"""Lattice unit and property tests for the abstract domains.

The soundness of the whole static tier reduces to two facts (see
``src/repro/analysis/domains.py``): ``alpha`` abstracts a concrete value
exactly, and ``join``/``widen`` only ever move up the lattice.  Membership
of a concrete value ``v`` in an abstract value ``a`` is expressed as
``leq(alpha(v), a)`` throughout, since ``alpha`` is exact.
"""

import random

from repro.analysis.domains import (
    ABS_FUN,
    ABS_TOP,
    AbsData,
    AbsNat,
    AbsTuple,
    Interval,
    NAT,
    PARITY_EVEN,
    PARITY_ODD,
    PARITY_TOP,
    abs_data,
    abs_nat,
    alpha,
    definitely_false,
    definitely_true,
    interval_join,
    interval_meet,
    interval_widen,
    join,
    leq,
    nat_const,
    size_of,
    top_of,
    widen,
)
from repro.analysis.domains import parity_flip, parity_of
from repro.lang.prelude import PRELUDE_SOURCE
from repro.lang.program import Program
from repro.lang.types import TData, TProd
from repro.lang.values import nat_of_int, v_bool, v_list, value_size


def _env():
    program = Program()
    program.extend(PRELUDE_SOURCE)
    return program.types


ENV = _env()

LIST = TData("list")
BOOL = TData("bool")
NAT_T = TData(NAT)


def _random_interval(rng):
    lo = rng.randrange(0, 6)
    hi = rng.choice([None, lo + rng.randrange(0, 6)])
    return Interval(lo, hi)


def _random_values(rng, count=40):
    values = [nat_of_int(rng.randrange(0, 12)) for _ in range(count // 2)]
    values += [v_list([nat_of_int(rng.randrange(0, 4))
                       for _ in range(rng.randrange(0, 5))])
               for _ in range(count - len(values))]
    return values


# -- intervals --------------------------------------------------------------------


def test_interval_contains_and_shift():
    iv = Interval(2, 5)
    assert iv.contains(2) and iv.contains(5) and not iv.contains(6)
    assert iv.shift(1) == Interval(3, 6)
    assert Interval(0, 1).shift(-2) == Interval(0, 0)
    assert Interval(3, None).shift(-1) == Interval(2, None)
    assert Interval(4, 4).singleton == 4
    assert Interval(4, 5).singleton is None


def test_interval_join_is_upper_bound():
    rng = random.Random(0)
    for _ in range(200):
        a, b = _random_interval(rng), _random_interval(rng)
        joined = interval_join(a, b)
        for n in range(0, 15):
            if a.contains(n) or b.contains(n):
                assert joined.contains(n)


def test_interval_meet_is_intersection():
    rng = random.Random(1)
    for _ in range(200):
        a, b = _random_interval(rng), _random_interval(rng)
        met = interval_meet(a, b)
        for n in range(0, 15):
            both = a.contains(n) and b.contains(n)
            assert both == (met is not None and met.contains(n))


def test_interval_widen_covers_new_and_terminates():
    rng = random.Random(2)
    for _ in range(200):
        old = _random_interval(rng)
        new = interval_join(old, _random_interval(rng))
        widened = interval_widen(old, new)
        for n in range(0, 15):
            if new.contains(n):
                assert widened.contains(n)
        # Each bound jumps to its extreme at most once, so any widening
        # chain changes at most twice, however the iterates arrive.
        current, changes = widened, 0
        for _ in range(10):
            nxt = interval_widen(
                current, interval_join(current, _random_interval(rng)))
            if nxt != current:
                changes += 1
            current = nxt
        assert changes <= 2


# -- smart constructors -----------------------------------------------------------


def test_abs_nat_normalizes_inconsistency_to_bottom():
    assert abs_nat(None) is None
    assert abs_nat(Interval(2, 2), PARITY_ODD) is None
    assert abs_nat(Interval(2, 2), 0) is None
    # A singleton refines the parity set to the exact parity.
    assert abs_nat(Interval(2, 2), PARITY_TOP) == AbsNat(Interval(2, 2), PARITY_EVEN)


def test_abs_data_normalizes_inconsistency_to_bottom():
    assert abs_data("list", frozenset(), Interval(1, None)) is None
    assert abs_data("list", frozenset(("Nil",)), None) is None
    assert abs_data("list", frozenset(("Nil",)), Interval(1, 1)) == \
        AbsData("list", frozenset(("Nil",)), Interval(1, 1))


def test_nat_const_is_exact():
    assert nat_const(3) == AbsNat(Interval(3, 3), PARITY_ODD)
    assert nat_const(0) == AbsNat(Interval(0, 0), PARITY_EVEN)


def test_parity_flip_tracks_successor():
    for n in range(10):
        assert parity_flip(parity_of(n)) == parity_of(n + 1)
    assert parity_flip(PARITY_TOP) == PARITY_TOP


# -- lattice laws over random values ----------------------------------------------


def test_leq_is_reflexive_on_abstractions():
    rng = random.Random(3)
    for value in _random_values(rng):
        a = alpha(value, ENV)
        assert leq(a, a)
    assert leq(None, None) and leq(None, ABS_TOP) and not leq(ABS_TOP, None)


def test_join_is_an_upper_bound_of_abstractions():
    rng = random.Random(4)
    values = _random_values(rng)
    for left in values[:20]:
        for right in values[20:]:
            joined = join(alpha(left, ENV), alpha(right, ENV))
            assert leq(alpha(left, ENV), joined)
            assert leq(alpha(right, ENV), joined)


def test_widen_is_an_upper_bound_of_its_join_argument():
    rng = random.Random(5)
    values = _random_values(rng)
    for left in values[:20]:
        for right in values[20:]:
            old = alpha(left, ENV)
            new = join(old, alpha(right, ENV))
            widened = widen(old, new)
            assert leq(new, widened)


def test_join_with_bottom_and_top():
    a = alpha(nat_of_int(2), ENV)
    assert join(None, a) == a
    assert join(a, None) == a
    assert join(a, ABS_TOP) is ABS_TOP
    # Mismatched shapes lose all information, soundly.
    assert join(a, ABS_FUN) is ABS_TOP


# -- abstraction and type tops ----------------------------------------------------


def test_alpha_is_below_the_type_top():
    rng = random.Random(6)
    for value in _random_values(rng):
        is_nat = value_size(value) >= 1 and alpha(value, ENV).__class__ is AbsNat
        ty = NAT_T if is_nat else LIST
        assert leq(alpha(value, ENV), top_of(ty, ENV))


def test_top_of_products_and_unknowns():
    top = top_of(TProd((NAT_T, BOOL)), ENV)
    assert isinstance(top, AbsTuple) and len(top.items) == 2
    assert top_of(TData("no-such-type"), ENV) is ABS_TOP


def test_size_of_bounds_concrete_value_size():
    rng = random.Random(7)
    for value in _random_values(rng):
        assert size_of(alpha(value, ENV)).contains(value_size(value))


# -- boolean verdicts -------------------------------------------------------------


def test_definitely_true_false_need_singleton_ctor_sets():
    t = alpha(v_bool(True), ENV)
    f = alpha(v_bool(False), ENV)
    assert definitely_true(t) and not definitely_false(t)
    assert definitely_false(f) and not definitely_true(f)
    either = join(t, f)
    assert not definitely_true(either) and not definitely_false(either)
    assert not definitely_true(None) and not definitely_true(ABS_TOP)
