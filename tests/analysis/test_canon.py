"""Canonicalization + content-hash tests.

The invariant under test: the canonical hash is a *content key* — it
collides exactly on behaviourally identical modules (alpha-renamed
locals, dead branches, foldable constants) and separates everything
else (interface changes, behaviour changes).
"""

import dataclasses

import pytest

from repro.analysis.canon import (
    canonical_hash,
    canonicalize_definition,
    canonicalize_fun_decl,
    render_fun_decl,
)
from repro.lang.parser import parse_program
from repro.lang.prelude import PRELUDE_SOURCE
from repro.lang.program import Program
from repro.lang.typecheck import TypeChecker
from repro.spec.loader import load_module_text
from repro.suite.registry import FAST_BENCHMARKS, get_benchmark

TEMPLATE = """
benchmark "/test/canon"
group testing

abstract type t = nat

operation zero : t
operation bump : t -> t

spec spec : t -> bool

let zero : nat = O
let bump (c : nat) : nat = S c

{spec_decl}
"""

BASE_SPEC = "let spec (c : nat) : bool = match c with | O -> True | S m -> False"


def _load(spec_decl: str = BASE_SPEC):
    return load_module_text(TEMPLATE.format(spec_decl=spec_decl),
                            path="canon.hanoi")


def _checker(extra: str = ""):
    program = Program()
    program.extend(PRELUDE_SOURCE)
    if extra:
        program.extend(extra)
    return TypeChecker(program.types)


def _canon_src(source: str, extra: str = "") -> str:
    decl = parse_program(source)[0]
    return render_fun_decl(canonicalize_fun_decl(decl, _checker(extra)))


# -- rewrites ---------------------------------------------------------------


def test_dead_branch_removed():
    out = _canon_src("""
let f (n : nat) : bool =
  match n with
  | O -> True
  | S m -> False
  | _ -> True
""")
    assert out.count("->") == 2  # the wildcard arm is gone


def test_tuple_projection_folded():
    # Projections have no surface syntax; build the node directly.
    from repro.analysis.canon import canonicalize_expr
    from repro.lang.ast import ECtor, EProj, ETuple, EVar
    from repro.lang.types import TData

    expr = EProj(0, ETuple((EVar("n"), ECtor("O", None))))
    folded = canonicalize_expr(expr, _checker(), {"n": TData("nat")})
    assert folded == EVar("n")


def test_literal_match_folded():
    out = _canon_src("""
let f (n : nat) : nat =
  match S n with
  | O -> O
  | S m -> m
""")
    assert "match" not in out


def test_unused_pure_let_dropped():
    out = _canon_src("let f (n : nat) : nat = let unused = O in n")
    assert "unused" not in out


def test_impure_let_preserved():
    # f n may diverge/crash for some f; the binding must not be discarded.
    out = _canon_src("""
let g (n : nat) : nat = let unused = f n in n
""", extra="let f (n : nat) : nat = n")
    assert "f" in out and "let" in out


def test_idempotent():
    definition = _load()
    once = canonicalize_definition(definition)
    twice = canonicalize_definition(once)
    assert once.source == twice.source


# -- hashing ----------------------------------------------------------------


def test_hash_stable_under_alpha_rename():
    renamed = BASE_SPEC.replace("(c : nat)", "(zzz : nat)").replace(
        "match c", "match zzz").replace("S m", "S qqq")
    assert canonical_hash(_load()) == canonical_hash(_load(renamed))


def test_hash_stable_under_dead_branch():
    with_dead = BASE_SPEC + " | _ -> True"
    assert canonical_hash(_load()) == canonical_hash(_load(with_dead))


def test_hash_changes_on_behaviour_change():
    flipped = BASE_SPEC.replace("| O -> True", "| O -> False")
    assert canonical_hash(_load()) != canonical_hash(_load(flipped))


def test_hash_changes_on_interface_change():
    definition = _load()
    other = dataclasses.replace(definition, name="/test/other-name")
    # The name is not part of the interface hash, but the component list is.
    widened = dataclasses.replace(
        definition,
        synthesis_components=definition.synthesis_components + ("bump",))
    assert canonical_hash(definition) == canonical_hash(other)
    assert canonical_hash(definition) != canonical_hash(widened)


def test_canonicalized_module_loads_and_instantiates():
    definition = canonicalize_definition(_load())
    instance = definition.instantiate()
    assert instance is not None


@pytest.mark.parametrize("name", FAST_BENCHMARKS)
def test_hash_fixpoint_on_builtins(name):
    definition = get_benchmark(name)
    assert canonical_hash(canonicalize_definition(definition)) == \
        canonical_hash(definition)


def test_distinct_builtins_distinct_hashes():
    hashes = {canonical_hash(get_benchmark(name)) for name in FAST_BENCHMARKS}
    assert len(hashes) == len(FAST_BENCHMARKS)
