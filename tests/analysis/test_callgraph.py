"""Unit tests for call-graph, unused-definition, and termination analysis."""

from repro.analysis.callgraph import (
    build_call_graph,
    check_structural_recursion,
    scan_module_declarations,
    strongly_connected_components,
    unused_definitions,
)
from repro.lang.parser import parse_program


def _decl(source: str):
    return parse_program(source)[0]


# -- call graph -----------------------------------------------------------------


def test_call_graph_edges():
    decls = parse_program("""
let f (n : nat) : nat = g n
let g (n : nat) : nat = n
let h (n : nat) : nat = f (g n)
""")
    graph = build_call_graph(decls)
    assert graph == {"f": frozenset({"g"}), "g": frozenset(),
                     "h": frozenset({"f", "g"})}


def test_parameters_are_not_edges():
    decls = parse_program("""
let g (n : nat) : nat = n
let f (g : nat) : nat = g
""")
    assert build_call_graph(decls)["f"] == frozenset()


def test_scc_finds_mutual_cycle():
    graph = {"a": frozenset({"b"}), "b": frozenset({"a"}), "c": frozenset()}
    components = strongly_connected_components(graph)
    assert frozenset({"a", "b"}) in components
    assert frozenset({"c"}) in components


# -- unused definitions ----------------------------------------------------------


def test_unused_function_flagged_and_roots_kept():
    decls = parse_program("""
let used (n : nat) : nat = helper n
let helper (n : nat) : nat = n
let orphan (n : nat) : nat = n
""")
    unused = unused_definitions(decls, roots=["used"])
    assert [d.name for d in unused] == ["orphan"]


def test_unused_type_flagged():
    decls = parse_program("""
type ghost = Ghost
type live = Live of nat

let used (x : live) : nat = match x with | Live n -> n
""")
    unused = unused_definitions(decls, roots=["used"])
    assert [d.name for d in unused] == ["ghost"]


def test_type_kept_alive_through_payload():
    decls = parse_program("""
type inner = Inner of nat
type outer = Outer of inner

let used (x : outer) : nat = O
""")
    assert unused_definitions(decls, roots=["used"]) == []


# -- termination -----------------------------------------------------------------


def test_structural_descent_accepted():
    assert check_structural_recursion(_decl("""
let rec len (l : list) : nat =
  match l with
  | Nil -> O
  | Cons (hd, tl) -> S (len tl)
""")) is None


def test_non_recursive_accepted():
    assert check_structural_recursion(
        _decl("let f (n : nat) : nat = S n")) is None


def test_swap_argument_recursion_accepted_by_size_change():
    # Strict descent alternates between the two parameters; no fixed
    # argument position decreases, but every idempotent size-change loop
    # does.  This is the tree-priqueue ``merge`` shape.
    assert check_structural_recursion(_decl("""
let rec merge (a : tree) (b : tree) : tree =
  match a with
  | Leaf -> b
  | Node (l, v, r) ->
      (match b with
       | Leaf -> a
       | Node (bl, bv, br) -> Node (merge br l, v, merge bl r))
""")) is None


def test_identity_recursion_rejected():
    reason = check_structural_recursion(_decl("let rec spin (n : nat) : nat = spin n"))
    assert reason is not None
    assert "size-change" in reason


def test_growing_recursion_rejected():
    assert check_structural_recursion(
        _decl("let rec grow (n : nat) : nat = grow (S n)")) is not None


def test_pure_swap_rejected():
    assert check_structural_recursion(
        _decl("let rec f (a : nat) (b : nat) : nat = f b a")) is not None


def test_partial_application_unprovable():
    reason = check_structural_recursion(_decl("""
let rec f (n : nat) (m : nat) : nat =
  match n with
  | O -> O
  | S k -> (f k) m
"""))
    # Uncurried application of (f k) m is still a full call syntactically;
    # a genuinely partial use is passing f around.
    decl = _decl("""
let rec g (n : nat) : nat =
  match n with
  | O -> O
  | S k -> apply_twice g k
""")
    assert check_structural_recursion(decl) is not None


def test_rotated_tuple_argument_accepted():
    # Rebuilding a tuple from strictly-smaller pieces of the same parameter
    # (the rotate-a-queue idiom) counts as a strict decrease.
    assert check_structural_recursion(_decl("""
let rec drain (q : list * nat) : nat =
  match q with
  | (Nil, n) -> n
  | (Cons (hd, tl), n) -> drain (tl, n)
""")) is None


# -- module-level scan -----------------------------------------------------------


def test_mutual_recursion_reported_not_analyzed():
    decls = parse_program("""
let rec even (n : nat) : bool =
  match n with
  | O -> True
  | S m -> odd m
let rec odd (n : nat) : bool =
  match n with
  | O -> False
  | S m -> even m
""")
    diagnostics = scan_module_declarations(decls, roots=["even", "odd"])
    han004 = [d for d in diagnostics if d.code == "HAN004"]
    assert {d.decl for d in han004} == {"even", "odd"}
    assert all("mutual recursion" in d.message for d in han004)
