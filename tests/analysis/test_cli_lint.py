"""CLI surface tests for ``repro lint`` and ``repro fuzz --lint``."""

import pathlib

import pytest

from repro.cli import main

EXAMPLES = str(pathlib.Path(__file__).resolve().parents[2]
               / "examples" / "modules")

CLEAN = """
benchmark "/test/cli-clean"
group testing

abstract type t = nat

operation zero : t
operation get : t -> nat

spec spec : t -> bool

let zero : nat = O
let get (c : nat) : nat = c
let spec (c : nat) : bool = True
"""

DIRTY = CLEAN.replace('benchmark "/test/cli-clean"',
                      'benchmark "/test/cli-dirty"') + """
let orphan (n : nat) : nat = n
"""


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def test_lint_clean_file_exits_zero(tmp_path, capsys):
    path = _write(tmp_path, "clean.hanoi", CLEAN)
    assert main(["lint", path]) == 0
    out = capsys.readouterr().out
    assert "ok" in out
    assert "1 clean, 0 with warnings" in out


def test_lint_dirty_file_warns_but_exits_zero(tmp_path, capsys):
    path = _write(tmp_path, "dirty.hanoi", DIRTY)
    assert main(["lint", path]) == 0
    out = capsys.readouterr().out
    assert "HAN003" in out
    assert "orphan" in out
    assert "1 with warnings" in out


def test_lint_werror_promotes_warnings_to_exit_one(tmp_path, capsys):
    path = _write(tmp_path, "dirty.hanoi", DIRTY)
    assert main(["lint", path, "--werror"]) == 1
    assert "HAN003" in capsys.readouterr().out


def test_lint_werror_leaves_clean_modules_at_zero(tmp_path):
    path = _write(tmp_path, "clean.hanoi", CLEAN)
    assert main(["lint", path, "--werror"]) == 0


def test_lint_json_format_one_object_per_finding(tmp_path, capsys):
    import json

    clean = _write(tmp_path, "clean.hanoi", CLEAN)
    dirty = _write(tmp_path, "dirty.hanoi", DIRTY)
    assert main(["lint", clean, dirty, "--format", "json"]) == 0
    lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
    findings = [json.loads(line) for line in lines]
    assert len(findings) == 1  # json mode prints findings only, no summary
    finding = findings[0]
    assert finding["code"] == "HAN003"
    assert finding["severity"] == "warning"
    assert finding["decl"] == "orphan"
    assert finding["path"].endswith("dirty.hanoi")
    assert isinstance(finding["line"], int)
    assert "orphan" in finding["message"]


def test_lint_json_format_reports_load_errors(tmp_path, capsys):
    import json

    path = _write(tmp_path, "broken.hanoi", "benchmark \"/x\"\nlet bad = ???")
    assert main(["lint", path, "--format", "json"]) == 2
    lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
    codes = {json.loads(line)["code"] for line in lines}
    assert "HAN000" in codes


def test_lint_hash_flag_prints_content_key(tmp_path, capsys):
    path = _write(tmp_path, "clean.hanoi", CLEAN)
    assert main(["lint", path, "--hash"]) == 0
    out = capsys.readouterr().out
    assert "[" in out and "]" in out  # the truncated sha256


def test_lint_directory_expansion(tmp_path, capsys):
    _write(tmp_path, "a.hanoi", CLEAN)
    _write(tmp_path, "b.hanoi", DIRTY)
    assert main(["lint", str(tmp_path), "--werror"]) == 1
    assert "linted 2 module(s)" in capsys.readouterr().out


def test_lint_examples_directory(capsys):
    assert main(["lint", EXAMPLES]) == 0
    assert "0 with warnings" in capsys.readouterr().out


def test_lint_all_builtins(capsys):
    assert main(["lint", "--all-builtins"]) == 0
    out = capsys.readouterr().out
    assert "linted 28 module(s)" in out


def test_lint_single_benchmark(capsys):
    assert main(["lint", "--benchmark", "/coq/unique-list-::-set"]) == 0
    assert "ok" in capsys.readouterr().out


def test_lint_missing_path_fails(tmp_path):
    with pytest.raises(SystemExit):
        main(["lint", str(tmp_path / "nope.hanoi")])


def test_lint_malformed_module_is_han000_exit_two(tmp_path, capsys):
    path = _write(tmp_path, "broken.hanoi", "benchmark \"/x\"\nlet bad = ???")
    assert main(["lint", path]) == 2
    assert "HAN000" in capsys.readouterr().out


def test_fuzz_lint_dirty_module_shrunk_to_reproducer(tmp_path, capsys):
    """A dirty generated module exits nonzero and leaves a .hanoi
    reproducer that still triggers one of the original codes."""
    import argparse
    import pathlib as _pathlib

    from repro.cli import _fuzz_lint
    from repro.spec.loader import load_module_text

    definition = load_module_text(DIRTY, path="dirty.hanoi")

    class FakeModule:
        name = "/gen/dirty-0"

    FakeModule.definition = definition
    args = argparse.Namespace(shrink=True, out=str(tmp_path))
    assert _fuzz_lint([FakeModule()], args) == 1
    out = capsys.readouterr().out
    assert "HAN003" in out
    assert "reproducer" in out
    reproducers = list(_pathlib.Path(tmp_path, "reproducers").glob("*.hanoi"))
    assert len(reproducers) == 1


def test_fuzz_lint_clean_corpus(tmp_path, capsys):
    assert main(["fuzz", "--lint", "--count", "5", "--seed", "3",
                 "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "5" in out and "clean" in out
