"""Unit tests for type-inhabitation reachability pruning."""

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.reachability import (
    constructible_types,
    prune_components,
    split_components,
)
from repro.lang.prelude import PRELUDE_SOURCE
from repro.lang.program import Program
from repro.lang.types import TData, TProd, Type

NAT = TData("nat")
BOOL = TData("bool")


@dataclass(frozen=True)
class FakeComponent:
    """Anything with ``argument_types``/``result_type`` works as a component."""

    name: str
    argument_types: Tuple[Type, ...]
    result_type: Type


def _env(extra: str = ""):
    program = Program()
    program.extend(PRELUDE_SOURCE)
    if extra:
        program.extend(extra)
    return program.types


def _names(components):
    return [c.name for c in components]


def test_constructible_includes_seeds_and_nullary_datatypes():
    env = _env()
    constructible = constructible_types([NAT], env, [])
    # nat has O, bool has True/False, natoption has NoneN, cmp has LT/EQ/GT:
    # all four prelude datatypes have nullary constructors.
    assert {NAT, BOOL, TData("natoption"), TData("cmp")} <= constructible


def test_constructible_grows_through_components():
    env = _env("type wrapped = Wrap of nat")
    mk = FakeComponent("mk", (NAT,), TData("wrapped"))
    assert TData("wrapped") not in constructible_types([NAT], env, [])
    assert TData("wrapped") in constructible_types([NAT], env, [mk])


def test_destructure_closes_seeds_downward():
    env = _env("type pair_holder = Hold of nat * bool")
    holder = TData("pair_holder")
    shallow = constructible_types([holder], env, [], destructure=False)
    deep = constructible_types([holder], env, [], destructure=True)
    assert TProd((NAT, BOOL)) not in shallow
    assert TProd((NAT, BOOL)) in deep


def test_unreachable_result_type_pruned():
    env = _env("type ghost = Mist of nat")
    useful = FakeComponent("size", (NAT,), NAT)
    useless = FakeComponent("haunt", (NAT,), TData("ghost"))
    kept, dropped = split_components([useful, useless], [NAT], env, BOOL)
    # ghost never feeds bool; size feeds nothing either unless nat is needed.
    assert "haunt" in _names(dropped)


def test_chain_toward_goal_kept():
    env = _env("type mid = Mid of nat")
    step1 = FakeComponent("lift", (NAT,), TData("mid"))
    step2 = FakeComponent("test", (TData("mid"),), BOOL)
    kept, dropped = split_components([step1, step2], [NAT], env, BOOL)
    assert _names(kept) == ["lift", "test"]
    assert dropped == []


def test_component_with_unconstructible_argument_pruned():
    env = _env("type rare = Rare of nat")
    # Nothing produces ``rare`` (no nullary ctor, no component), so a
    # component consuming it can never be applied.
    consumer = FakeComponent("use_rare", (TData("rare"),), BOOL)
    kept, dropped = split_components([consumer], [NAT], env, BOOL)
    assert kept == []
    assert _names(dropped) == ["use_rare"]


def test_needed_argument_types_keep_their_producers():
    env = _env()
    a = FakeComponent("a", (NAT,), BOOL)
    b = FakeComponent("b", (NAT,), NAT)
    # Once ``a`` is useful, its nat argument is needed, so ``b`` is too.
    assert _names(prune_components([a, b], [NAT], env, BOOL)) == ["a", "b"]


def test_prune_preserves_order():
    env = _env("type ghost = Mist of nat")
    a = FakeComponent("a", (NAT,), BOOL)
    g = FakeComponent("g", (NAT,), TData("ghost"))
    c = FakeComponent("c", (BOOL,), BOOL)
    kept = prune_components([a, g, c], [NAT], env, BOOL)
    assert _names(kept) == ["a", "c"]


def test_mutually_useful_cycle_requires_goal_path():
    env = _env("type x = MkX of nat\ntype y = MkY of nat")
    # x <-> y feed each other but never the goal.
    x2y = FakeComponent("x2y", (TData("x"),), TData("y"))
    y2x = FakeComponent("y2x", (TData("y"),), TData("x"))
    kept, dropped = split_components([x2y, y2x], [NAT], env, BOOL)
    assert kept == []
    assert len(dropped) == 2
